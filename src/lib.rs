//! # popt — Non-Invasive Progressive Optimization for In-Memory Databases
//!
//! A from-scratch Rust reproduction of Zeuch, Pirk and Freytag,
//! *"Non-Invasive Progressive Optimization for In-Memory Databases"*,
//! PVLDB 9(14), VLDB 2016.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`cpu`] — deterministic simulated CPU with PMU counters (the substrate
//!   standing in for the paper's Intel performance monitoring units);
//! * [`storage`] — column store and TPC-H-style data generation;
//! * [`cost`] — the paper's cost models (Markov branch model, cache access
//!   model, join cache-miss model, unified cycle estimates);
//! * [`solver`] — search-space restriction, start-point selection and the
//!   bounded Nelder–Mead selectivity estimator;
//! * [`obs`] — non-invasive observability: deterministic structured
//!   traces stamped in simulated cycles, a metrics registry, and the
//!   Chrome-trace / decision-log exporters (tracing on or off is
//!   bit-identical — see the README's "Observability" section);
//! * [`core`] — the vectorized execution engine and the progressive
//!   optimizer itself, unified across executors: the multi-selection
//!   scan and mixed selection/join-filter pipelines share one §4.4 loop
//!   (`core::progressive::ProgressiveTarget`), with pipeline stages
//!   ranked by estimated cost per input tuple (Sections 5.5–5.6).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record of every figure.
//!
//! ```
//! // The five-minute tour: run TPC-H Q6 with and without progressive
//! // optimization on a deliberately bad initial predicate order.
//! use popt::core::query::{QueryBuilder, RunMode};
//! use popt::storage::tpch::{TpchConfig, generate_lineitem};
//!
//! let table = generate_lineitem(&TpchConfig::small());
//! let report = QueryBuilder::q6(&table)
//!     .vectors(32)
//!     .run(RunMode::Progressive { reop_interval: 4 })
//!     .unwrap();
//! assert!(report.result.rows_qualified > 0);
//! ```

pub use popt_core as core;
pub use popt_cost as cost;
pub use popt_cpu as cpu;
pub use popt_obs as obs;
pub use popt_solver as solver;
pub use popt_storage as storage;
