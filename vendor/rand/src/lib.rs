//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this vendored crate
//! implements exactly the `rand` 0.8 API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for data generation and deterministic for a given seed, which is
//! all the workspace asks of it. The stream differs from upstream
//! `StdRng` (ChaCha12); nothing in the workspace depends on the exact
//! stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core interface.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            Self {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }
}
