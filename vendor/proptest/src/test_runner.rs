//! Test-case configuration and the deterministic RNG driving sampling.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration, mirroring `proptest::test_runner::Config`.
///
/// Only the fields the workspace touches are modeled; construct with
/// struct-update syntax: `Config { cases: 24, ..Config::default() }`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of randomized cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented,
    /// so this is never read.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    /// 256 cases, overridable via the upstream-compatible
    /// `PROPTEST_CASES` environment variable (used by CI to bound the
    /// suite's runtime). Like upstream, an unparsable or zero value
    /// panics rather than silently falling back — a CI typo must not
    /// quietly void the time bound. An explicit `cases` in
    /// `proptest_config` bypasses the default and therefore also the
    /// variable.
    fn default() -> Self {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(value) => match value.parse() {
                Ok(cases) if cases > 0 => cases,
                _ => panic!("invalid PROPTEST_CASES value {value:?}: expected a positive integer"),
            },
            Err(_) => 256,
        };
        Self {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic per-test RNG: every test function gets its own stream,
/// seeded from its name, so failures reproduce run over run.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed the stream from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label: stable across runs and platforms.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Sample uniformly from any range the `rand` stand-in supports —
    /// range strategies delegate here so the sampling logic lives in one
    /// crate.
    pub fn sample_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        use rand::Rng as _;
        self.inner.gen_range(range)
    }
}
