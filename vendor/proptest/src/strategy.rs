//! Value-generation strategies: ranges and [`any`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values for one [`crate::proptest!`] argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "sample anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy producing any value of `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// Range strategies delegate to the `rand` stand-in's `SampleRange`
// implementations so the sampling logic exists in exactly one crate.
macro_rules! impl_strategy_for_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )+};
}

macro_rules! impl_strategy_for_inclusive_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )+};
}

impl_strategy_for_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);
impl_strategy_for_inclusive_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
