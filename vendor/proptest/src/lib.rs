//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this vendored crate
//! implements the subset of proptest's surface the workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range and [`any`] strategies, and
//! the `prop_assert*` macros.
//!
//! Semantics vs. upstream: cases are sampled deterministically (seeded
//! from the test function's name), and there is no shrinking — a failing
//! case panics with the regular `assert!` message. That keeps failures
//! reproducible without a persistence file.

pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a [`proptest!`] test case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a [`proptest!`] test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` that samples its arguments from the given
/// strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

/// Internal tt-muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _ in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10i64..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn any_values_are_sampled(s in any::<u64>(), b in any::<bool>()) {
            // Both branches of `b` and the full width of `s` are exercised
            // across cases; here we only check the values are usable.
            prop_assert_eq!(s.wrapping_add(0), s);
            prop_assert!(usize::from(b) < 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }
}
