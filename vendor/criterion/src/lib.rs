//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io access, so this vendored crate
//! implements the criterion API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], group tuning knobs, `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short fixed
//! number of timed iterations and prints mean wall-clock time per
//! iteration (plus element throughput when declared). There is no
//! statistical analysis, no HTML report, and no `target/criterion`
//! output — the goal is that `cargo bench` builds, runs, and produces a
//! stable, greppable text summary.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (upstream criterion's
/// `sample_size` is accepted but capped to this, keeping CI smoke cheap).
const MAX_ITERS: u64 = 5;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a name and a parameter, rendered `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine`, running it a small fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: MAX_ITERS,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing tuning and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count (capped for CI friendliness).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, MAX_ITERS);
        self
    }

    /// Accepted for API compatibility; this harness does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; iteration count governs runtime.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Close the group (upstream renders summaries here; we report as we go).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let per_iter = bencher.total.as_secs_f64() / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3} ms/iter{}",
            format!("{}/{}", self.name, id),
            per_iter * 1e3,
            rate
        );
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
