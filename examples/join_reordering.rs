//! Counter-driven join reordering (Sections 5.5–5.6).
//!
//! ```text
//! cargo run --release --example join_reordering
//! ```
//!
//! `lineitem ⋈ orders ⋈ part`: a textbook optimizer joins the smaller
//! `part` table first. The performance counters tell a different story —
//! probes into `orders` are co-clustered (near-sequential) while probes
//! into `part` are random. The sortedness detector compares measured
//! cache misses against the Equation-1 random-access prediction and flips
//! the order.

use popt::core::plan::{Expr, PlanBuilder};
use popt::core::sortedness::{recommend_join_order, JoinObservation};
use popt::cost::join_model::JoinGeometry;
use popt::cpu::{CacheLevelConfig, CpuConfig, SimCpu};
use popt::storage::tpch::{generate_lineitem, generate_orders, generate_part, TpchConfig};

fn scaled_cpu() -> CpuConfig {
    // Proportionally scaled hierarchy so the dimension tables exceed the
    // LLC at example scale (see DESIGN.md on scale substitution).
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}

fn main() {
    let config = TpchConfig::with_rows(1 << 19);
    let lineitem = generate_lineitem(&config);
    let orders = generate_orders(&config);
    let part = generate_part(&config);
    println!(
        "lineitem {} rows; orders {} rows; part {} rows ({}x smaller than orders)",
        lineitem.rows(),
        orders.rows(),
        part.rows(),
        orders.rows() / part.rows()
    );

    // One fixed logical plan through the query frontend (orders join at
    // plan index 0, part at 1); the two static executions differ only in
    // the evaluation order, never in the plan.
    let build = || {
        PlanBuilder::scan(&lineitem)
            .join(
                &orders,
                "l_orderkey",
                Expr::col("o_totalprice").less_than(250_000),
            )
            .join(
                &part,
                "l_partkey",
                Expr::col("p_retailprice").less_than(1_500),
            )
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to two joins")
    };

    for (label, order) in [
        ("part-first  (textbook)", [1usize, 0]),
        ("orders-first (counters)", [0usize, 1]),
    ] {
        let mut program = build();
        program.reorder(&order).expect("valid order");
        let mut cpu = SimCpu::new(scaled_cpu());
        let stats = program.run_range(&mut cpu, 0, lineitem.rows());
        println!(
            "{label}: {:8.2} ms, {:9} L3 misses, {} rows",
            cpu.millis(),
            stats.counters.l3_misses,
            stats.qualified
        );
    }

    // What the detector concludes from a one-vector sample per join.
    let cpu_cfg = scaled_cpu();
    let observe = |fk: &str, dim: &popt::storage::Table, col: &str, name: &str| {
        let program = PlanBuilder::scan(&lineitem)
            .join(dim, fk, Expr::col(col).less_than(i64::MAX / 2))
            .build()
            .optimize()
            .compile()
            .expect("probe join lowers");
        let mut cpu = SimCpu::new(cpu_cfg.clone());
        let stats = program.run_range(&mut cpu, 0, 65_536);
        JoinObservation {
            name: name.into(),
            geometry: JoinGeometry {
                relation_tuples: dim.rows() as u64,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: cpu_cfg.llc().lines(),
            },
            accesses: stats.tuples,
            measured_misses: stats.counters.l3_misses,
        }
    };
    let obs = vec![
        observe("l_orderkey", &orders, "o_totalprice", "orders"),
        observe("l_partkey", &part, "p_retailprice", "part"),
    ];
    for o in &obs {
        println!(
            "probe {}: {:.3} misses/access (random model predicts {:.3}) -> {:?}",
            o.name,
            o.miss_rate(),
            o.predicted_random_miss_rate(),
            o.pattern()
        );
    }
    let order = recommend_join_order(&obs);
    println!("detector recommendation: join {} first", obs[order[0]].name);
}
