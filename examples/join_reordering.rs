//! Counter-driven join reordering (Sections 5.5–5.6).
//!
//! ```text
//! cargo run --release --example join_reordering
//! ```
//!
//! `lineitem ⋈ orders ⋈ part`: a textbook optimizer joins the smaller
//! `part` table first. The performance counters tell a different story —
//! probes into `orders` are co-clustered (near-sequential) while probes
//! into `part` are random. The sortedness detector compares measured
//! cache misses against the Equation-1 random-access prediction and flips
//! the order.

use popt::core::exec::pipeline::{FilterOp, Pipeline};
use popt::core::predicate::CompareOp;
use popt::core::sortedness::{recommend_join_order, JoinObservation};
use popt::cost::join_model::JoinGeometry;
use popt::cpu::{CacheLevelConfig, CpuConfig, SimCpu};
use popt::storage::tpch::{generate_lineitem, generate_orders, generate_part, TpchConfig};

fn scaled_cpu() -> CpuConfig {
    // Proportionally scaled hierarchy so the dimension tables exceed the
    // LLC at example scale (see DESIGN.md on scale substitution).
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}

fn main() {
    let config = TpchConfig::with_rows(1 << 19);
    let lineitem = generate_lineitem(&config);
    let orders = generate_orders(&config);
    let part = generate_part(&config);
    println!(
        "lineitem {} rows; orders {} rows; part {} rows ({}x smaller than orders)",
        lineitem.rows(),
        orders.rows(),
        part.rows(),
        orders.rows() / part.rows()
    );

    let build = |orders_first: bool| {
        let jo = FilterOp::join_filter(
            &lineitem,
            "l_orderkey",
            &orders,
            "o_totalprice",
            CompareOp::Lt,
            250_000,
            0,
            100,
        )
        .expect("orders join");
        let jp = FilterOp::join_filter(
            &lineitem,
            "l_partkey",
            &part,
            "p_retailprice",
            CompareOp::Lt,
            1_500,
            1,
            101,
        )
        .expect("part join");
        let ops = if orders_first {
            vec![jo, jp]
        } else {
            vec![jp, jo]
        };
        Pipeline::new(ops, lineitem.rows()).expect("pipeline")
    };

    for (label, orders_first) in [
        ("part-first  (textbook)", false),
        ("orders-first (counters)", true),
    ] {
        let pipeline = build(orders_first);
        let mut cpu = SimCpu::new(scaled_cpu());
        let stats = pipeline.run_range(&mut cpu, 0, lineitem.rows());
        println!(
            "{label}: {:8.2} ms, {:9} L3 misses, {} rows",
            cpu.millis(),
            stats.counters.l3_misses,
            stats.qualified
        );
    }

    // What the detector concludes from a one-vector sample per join.
    let cpu_cfg = scaled_cpu();
    let observe = |fk: &str, dim: &popt::storage::Table, col: &str, name: &str| {
        let join =
            FilterOp::join_filter(&lineitem, fk, dim, col, CompareOp::Lt, i64::MAX / 2, 0, 100)
                .expect("probe join");
        let pipeline = Pipeline::new(vec![join], lineitem.rows()).expect("probe");
        let mut cpu = SimCpu::new(cpu_cfg.clone());
        let stats = pipeline.run_range(&mut cpu, 0, 65_536);
        JoinObservation {
            name: name.into(),
            geometry: JoinGeometry {
                relation_tuples: dim.rows() as u64,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: cpu_cfg.llc().lines(),
            },
            accesses: stats.tuples,
            measured_misses: stats.counters.l3_misses,
        }
    };
    let obs = vec![
        observe("l_orderkey", &orders, "o_totalprice", "orders"),
        observe("l_partkey", &part, "p_retailprice", "part"),
    ];
    for o in &obs {
        println!(
            "probe {}: {:.3} misses/access (random model predicts {:.3}) -> {:?}",
            o.name,
            o.miss_rate(),
            o.predicted_random_miss_rate(),
            o.pattern()
        );
    }
    let order = recommend_join_order(&obs);
    println!("detector recommendation: join {} first", obs[order[0]].name);
}
