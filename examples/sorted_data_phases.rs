//! Mid-query plan changes on sorted data (the Section 5.4 effect).
//!
//! ```text
//! cargo run --release --example sorted_data_phases
//! ```
//!
//! On a shipdate-sorted `lineitem`, Q6's optimal predicate order changes
//! *during* the scan: before the date window the lower bound kills every
//! tuple, inside the window both date bounds are useless, after it the
//! upper bound kills everything. No static plan is optimal everywhere —
//! the progressive optimizer switches orders as the scan crosses the
//! phase boundaries.

use popt::core::query::{QueryBuilder, RunMode};
use popt::storage::distribution::Layout;
use popt::storage::tpch::{generate_lineitem, TpchConfig};

fn main() {
    let table = generate_lineitem(&TpchConfig::with_rows(1 << 19).shipdate_layout(Layout::Sorted));

    // Start from a bad static order: date bounds last.
    let bad = vec![4, 3, 2, 0, 1];
    let baseline = QueryBuilder::q6(&table)
        .initial_peo(bad.clone())
        .vector_tuples(4096)
        .run(RunMode::Baseline)
        .expect("baseline");
    let progressive = QueryBuilder::q6(&table)
        .initial_peo(bad)
        .vector_tuples(4096)
        .run(RunMode::Progressive { reop_interval: 5 })
        .expect("progressive");

    println!(
        "sorted shipdate, {} vectors: baseline {:.2} ms, progressive {:.2} ms ({:.2}x)",
        baseline.vectors,
        baseline.millis,
        progressive.millis,
        baseline.millis / progressive.millis
    );
    assert_eq!(baseline.result, progressive.result);

    println!("\nplan switches while scanning (predicates 0/1 are the shipdate bounds):");
    for s in &progressive.switches {
        let phase = s.vector * 4096 * 100 / table.rows();
        println!(
            "  at vector {:3} (~{:2}% of the table): {:?} -> {:?}{}",
            s.vector,
            phase,
            s.from,
            s.to,
            if s.reverted { "  (reverted)" } else { "" }
        );
    }
    println!(
        "\nfinal order {:?}; the upper shipdate bound (predicate 1) leads once the scan \
         passes the window",
        progressive.final_peo
    );
}
