//! Non-invasive selectivity inference, step by step.
//!
//! ```text
//! cargo run --release --example counter_inference
//! ```
//!
//! Executes one vector of a three-predicate selection, reads the PMU
//! counters the way the paper does (no instrumentation in the loop), and
//! inverts the cost models to recover each predicate's selectivity —
//! then compares against the exact ground truth the optimizer never saw.

use popt::core::exec::scan::CompiledSelection;
use popt::core::plan::SelectionPlan;
use popt::core::predicate::{CompareOp, Predicate};
use popt::cost::markov::ChainSpec;
use popt::cpu::{CpuConfig, SimCpu};
use popt::solver::{estimate_selectivities, EstimatorConfig};
use popt::storage::tpch::{generate_lineitem, TpchConfig};

fn main() {
    let table = generate_lineitem(&TpchConfig::with_rows(1 << 18));
    let plan = SelectionPlan::new(
        vec![
            Predicate::new("l_quantity", CompareOp::Lt, 24),
            Predicate::new("l_discount", CompareOp::Le, 3),
            Predicate::new("l_shipdate", CompareOp::Ge, 1800),
        ],
        vec!["l_extendedprice".into()],
    )
    .expect("plan");

    // Execute one vector from the middle of the table and sample the
    // counters, non-invasively.
    let peo = plan.identity_peo();
    let compiled = CompiledSelection::compile(&table, &plan, &peo).expect("compiles");
    let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
    let vector = 65_536.min(table.rows());
    let start = (table.rows() - vector) / 2;

    // Ground truth *for that vector* — the paper's point is that local
    // selectivities (not the global statistics an optimizer keeps) are
    // what determine the right order for the data at hand. The optimizer
    // never sees these numbers.
    let truth: Vec<f64> = plan
        .predicates
        .iter()
        .map(|p| {
            let col = table.column(&p.column).expect("column exists");
            let hits = (start..start + vector)
                .filter(|&i| p.eval(col.get(i)))
                .count();
            hits as f64 / vector as f64
        })
        .collect();

    let stats = compiled.run_range(&mut cpu, start, start + vector);
    let sampled = stats.sampled_counters();
    println!("sampled counters for one {vector}-tuple vector:");
    println!("  branches not taken : {}", sampled.bnt);
    println!("  mispredicted taken : {}", sampled.mp_taken);
    println!("  mispredicted n-tak : {}", sampled.mp_not_taken);
    println!("  L3 accesses        : {}", sampled.l3_accesses);
    println!("  output (2n - bT)   : {}", sampled.n_output);

    // Invert the cost models.
    let geom = compiled.plan_geometry(sampled.n_input, ChainSpec::SIX, 64);
    let estimate = estimate_selectivities(&geom, &sampled, &EstimatorConfig::default());

    println!("\npredicate                      estimated   true");
    for ((pred, est), truth) in plan
        .predicates
        .iter()
        .zip(&estimate.selectivities)
        .zip(&truth)
    {
        println!("{:28} {:9.3}   {:.3}", pred.display(), est, truth);
    }
    println!(
        "\nestimator: {} starts, {} objective evaluations, residual {:.4}",
        estimate.starts_used, estimate.evaluations, estimate.objective
    );
}
