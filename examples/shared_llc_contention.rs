//! Shared-LLC contention: two co-running queries degrading each other.
//!
//! ```text
//! cargo run --release --example shared_llc_contention
//! ```
//!
//! A latency-sensitive pipeline (small probed dimension) is served
//! alongside a probe-heavy background pipeline (large dimension), first
//! on a pool of private per-core LLCs — the optimistic historical model
//! where co-runners cannot touch each other's cache — and then on a
//! single shared socket, where the deterministic capacity partition
//! gives each core a slice of ONE last-level cache. The background
//! query's hot set no longer fits next to the foreground's, the
//! foreground query's probes start missing, and its latency inflates
//! far past what priority scheduling alone could explain. Results are
//! asserted bit-identical in both modes: contention moves cycles, never
//! answers.

use popt::core::plan::{Expr, PlanBuilder};
use popt::core::serve::{Priority, QueryServer, QuerySpec, ServeConfig, ServeReport};
use popt::cpu::{CacheLevelConfig, CpuConfig, CpuPool, LlcMode};
use popt::storage::{AddressSpace, ColumnData, Table};

const ROWS: usize = 1 << 15;

/// A small socket (8 KiB L1 / 32 KiB L2 / 128 KiB LLC) so the demo's
/// tables are example-sized instead of gigabytes.
fn socket() -> CpuConfig {
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.name = "demo socket (128 KiB shared LLC)";
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33
}

/// Fact table with a random FK into `dim_rows` tuples plus a value
/// column; the dimension size decides how much LLC the query wants.
fn tables(dim_rows: usize, seed: u64) -> (Table, Table) {
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift(&mut state) % dim_rows as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    fact.add_column(
        "val",
        ColumnData::I32(
            (0..ROWS)
                .map(|_| (xorshift(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_rows)
                .map(|_| (xorshift(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// Serve the given selection+join plans (built through the query
/// frontend) as equal-priority co-runners and return the report.
fn serve(queries: &[(&str, (&Table, &Table))], mode: LlcMode) -> ServeReport {
    let mut server = QueryServer::new(ServeConfig::default());
    for (label, (fact, dim)) in queries {
        let plan = PlanBuilder::scan(fact)
            .filter_costed(Expr::col("val").less_than(500), 50)
            .join(dim, "fk", Expr::col("payload").less_than(500))
            .build();
        server.admit(QuerySpec::from_plan(*label, plan, Priority::Normal, 0).expect("plan lowers"));
    }
    let mut pool = CpuPool::with_mode(socket(), 2, mode);
    server.run(&mut pool).expect("batch serves")
}

fn main() {
    // Query A: 24 KiB dimension — fits even a contended slice.
    let a = tables(6 * 1024, 0xF00D);
    // Query B: 96 KiB dimension — wants most of the socket for itself:
    // resident when a core owns the full 128 KiB LLC, thrashing once the
    // socket is split two ways.
    let b = tables(24 * 1024, 0xBEEF);
    let queries = [
        ("A (24 KiB dim)", (&a.0, &a.1)),
        ("B (96 KiB dim)", (&b.0, &b.1)),
    ];

    // The same co-running batch under both memory models. A query's
    // *own* execution cycles (its morsels, on whichever core ran them)
    // are the contention signal: scheduler slots lent to the co-runner
    // stretch latency in any mode, but only the cache can make a query's
    // own work burn more cycles.
    println!("two equal-priority queries co-running on a 2-core pool:");
    let private = serve(&queries, LlcMode::Private);
    let shared = serve(&queries, LlcMode::Shared);
    let mut degradation = [0.0f64; 2];
    for (q, (label, _)) in queries.iter().enumerate() {
        let (p, s) = (&private.queries[q], &shared.queries[q]);
        assert_eq!(p.qualified, s.qualified, "results never move");
        assert_eq!(p.sum, s.sum, "aggregates never move");
        degradation[q] = (s.exec_cycles as f64 / p.exec_cycles as f64 - 1.0) * 100.0;
        println!(
            "  {label}: {:>9} own cycles with private LLCs, {:>9} on one shared \
             socket  ({:+.1}%)",
            p.exec_cycles, s.exec_cycles, degradation[q]
        );
    }
    println!(
        "\nwith private per-core LLCs each query keeps a full 128 KiB cache and \
         the co-runner is invisible to it; on one shared socket the partition \
         leaves each core a 64 KiB slice of the batch's one LLC — A's dimension \
         still fits ({:+.1}%), B's no longer does and its probes fall out to \
         memory ({:+.1}%) — while every result stays bit-identical.",
        degradation[0], degradation[1]
    );
    assert!(
        degradation[1] > 20.0,
        "the shared socket must degrade the LLC-hungry co-runner measurably \
         (got {:+.1}%)",
        degradation[1]
    );
    assert!(
        degradation[0] < degradation[1],
        "the slice-resident query must suffer less than the LLC-hungry one"
    );
}
