//! Quickstart: run TPC-H Q6 with and without progressive optimization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a laptop-scale `lineitem`, starts Q6 from the *worst*
//! predicate order (least selective predicate first) and shows how the
//! counter-driven optimizer converges to the good order mid-query.

use popt::core::query::{QueryBuilder, RunMode};
use popt::storage::tpch::{generate_lineitem, TpchConfig};

fn main() {
    let table = generate_lineitem(&TpchConfig::with_rows(1 << 19));
    println!(
        "lineitem: {} rows, {:.1} MiB across {} columns",
        table.rows(),
        table.bytes() as f64 / (1024.0 * 1024.0),
        table.columns().len()
    );

    // Plan order [4,3,2,1,0] evaluates quantity (46% selective) first and
    // the shipdate window (the sharp filter) last — a classic bad plan
    // born from a wrong cardinality estimate.
    let bad_order = vec![4, 3, 2, 1, 0];

    let baseline = QueryBuilder::q6(&table)
        .initial_peo(bad_order.clone())
        .run(RunMode::Baseline)
        .expect("baseline run");
    println!(
        "\nbaseline  (fixed bad PEO): {:8.2} ms  -> {} rows, sum {}",
        baseline.millis, baseline.result.rows_qualified, baseline.result.sum
    );

    let progressive = QueryBuilder::q6(&table)
        .initial_peo(bad_order)
        .run(RunMode::Progressive { reop_interval: 5 })
        .expect("progressive run");
    println!(
        "progressive (same start) : {:8.2} ms  -> {} rows, sum {}",
        progressive.millis, progressive.result.rows_qualified, progressive.result.sum
    );

    assert_eq!(
        baseline.result, progressive.result,
        "same answer either way"
    );
    println!(
        "\nspeedup: {:.2}x; estimator ran {} times; final PEO {:?}",
        baseline.millis / progressive.millis,
        progressive.estimates,
        progressive.final_peo
    );
    for s in &progressive.switches {
        println!(
            "  vector {:3}: {:?} -> {:?}{}",
            s.vector,
            s.from,
            s.to,
            if s.reverted { "  (reverted)" } else { "" }
        );
    }
}
