//! # popt-cpu — a deterministic simulated CPU with a performance monitoring unit
//!
//! The paper drives progressive query optimization from hardware performance
//! counters (branches taken / not taken, mispredictions split by direction,
//! L3 cache accesses). Real PMUs are neither portable nor deterministic, so
//! this crate provides the substrate the rest of the system runs on: a
//! software model of the microarchitectural structures that *generate* those
//! counters.
//!
//! The model contains exactly the mechanisms the paper's cost models reason
//! about:
//!
//! * a **branch predictor** built from n-state saturating counters (the
//!   automaton whose stationary distribution is the paper's Markov chain,
//!   Section 3.2), optionally indexed by global history (gshare style) so
//!   that sorted inputs become predictable — the effect Section 5.4 exploits;
//! * a **set-associative, LRU, three-level cache hierarchy** with an
//!   adjacent-line prefetcher, producing the "L3 accesses = demand + prefetch
//!   requests" semantics of Section 2.2.2 and the double-counted random
//!   misses of the paper's modified Pirk model (Section 3.1);
//! * a **cycle accounting model** (misprediction penalty plus per-level
//!   memory latencies, with cheaper sequential-stream fills) that converts
//!   executed work into simulated milliseconds for the runtime figures;
//! * a **[`CpuPool`] of independent cores** (each with its own cache
//!   hierarchy and free-running PMU bank) for morsel-driven parallel
//!   execution — the parallel region's wall clock is its busiest core.
//!   The pool can be split into **sockets**, each with its own shared-LLC
//!   partition, and a [`NumaPlacement`] homes address ranges so that
//!   remote-socket misses pay a deterministic latency surcharge.
//!
//! Everything is deterministic: the same event stream produces the same
//! counter values on every run, which makes the reproduction testable.
//!
//! ## Quick example
//!
//! ```
//! use popt_cpu::{SimCpu, CpuConfig, BranchSite};
//!
//! let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
//! let site = BranchSite(0);
//! for i in 0..1000u64 {
//!     cpu.load(0, i * 4, 4);          // stream 0: sequential 4-byte loads
//!     cpu.branch(site, i % 10 == 0);  // 10% taken
//! }
//! let c = cpu.counters();
//! assert_eq!(c.branches_taken + c.branches_not_taken, 1000);
//! assert!(cpu.cycles() > 0);
//! ```

pub mod batch;
pub mod branch;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod numa;
pub mod pmu;
pub mod pool;

pub use batch::BatchCpu;
pub use branch::{BranchPredictor, BranchSite, SaturatingAutomaton};
pub use cache::{CacheHierarchy, CacheLevel, LevelStats};
pub use config::{CacheLevelConfig, CpuConfig, PredictorConfig, TimingConfig};
pub use cpu::SimCpu;
pub use numa::{HomeSegment, NumaPlacement};
pub use pmu::{CounterDelta, Counters, Pmu};
pub use pool::{partition_llc_ways, CpuPool, LlcMode};
