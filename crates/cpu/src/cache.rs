//! Set-associative, LRU cache hierarchy with an adjacent-line prefetcher.
//!
//! The paper exploits the number of **L3 accesses**, defined in
//! Section 2.2.2 as demand requests arriving from the upper levels *plus*
//! prefetch requests. The hierarchy here reproduces that semantics
//! mechanically:
//!
//! * a demand access walks L1 → L2 → L3 → memory, filling on the way back;
//! * every demand L2 miss triggers the **adjacent-line (spatial)
//!   prefetcher**, which fetches the buddy cache line of the missing line
//!   into L2 — the mechanism behind the paper's "double count the number of
//!   random misses" modification of the Pirk cost model (Section 3.1): a
//!   random access pays for the line it needs *and* the speculatively
//!   fetched neighbour that is never used;
//! * L3 accesses = demand L2-misses + prefetch requests, and both kinds can
//!   miss L3 and travel to memory.
//!
//! For cycle accounting, sequential fills (detected per access stream by the
//! caller, see [`crate::cpu::SimCpu`]) are charged a bandwidth-bound cost
//! rather than the full random-access memory latency.

use crate::config::{CacheLevelConfig, CpuConfig};

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups at this level (demand and prefetch).
    pub accesses: u64,
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Lookups that missed and were forwarded down.
    pub misses: u64,
}

/// One set-associative cache level with true-LRU replacement.
///
/// Lines are tracked by line number (address divided by line size). All
/// sets live in one flat pre-sized allocation (`set_count × configured
/// ways` slots plus one occupancy byte per set) built once at
/// construction; LRU repositioning and eviction are in-place rotates of
/// a ≤ 16-element slice, so the steady state never allocates or shifts
/// a `Vec`.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Flat slot storage: set `s` owns `lines[s*stride .. s*stride+len(s)]`,
    /// LRU first, MRU last.
    lines: Box<[u64]>,
    /// Occupied slots per set (`<= ways`).
    occupancy: Box<[u8]>,
    /// Configured ways = slot stride per set (fixed; `ways` may shrink).
    stride: usize,
    /// `set_count - 1` when the set count is a power of two, else 0.
    set_mask: u64,
    set_count: u64,
    ways: usize,
    /// Running statistics, split by requester.
    pub demand: LevelStats,
    /// Statistics for prefetch-initiated lookups.
    pub prefetch: LevelStats,
}

impl CacheLevel {
    /// Build an empty level from its configuration. Non-power-of-two set
    /// counts (e.g. a 15 MiB sliced L3) index by modulo instead of mask.
    pub fn new(config: &CacheLevelConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache level needs at least one set");
        let ways = config.ways as usize;
        assert!(
            (1..=255).contains(&ways),
            "ways must fit the occupancy byte"
        );
        Self {
            // Empty slots hold the sentinel `u64::MAX` (never a real line
            // number: lines are `addr >> line_shift`), so lookups can scan
            // the full fixed stride branchlessly instead of an
            // occupancy-bounded prefix.
            lines: vec![u64::MAX; sets as usize * ways].into_boxed_slice(),
            occupancy: vec![0u8; sets as usize].into_boxed_slice(),
            stride: ways,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            set_count: sets,
            ways,
            demand: LevelStats::default(),
            prefetch: LevelStats::default(),
        }
    }

    /// Current associativity limit of the level (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn set_count(&self) -> u64 {
        self.set_count
    }

    /// Restrict (or re-widen) the level to `ways` ways per set — the
    /// way-partitioning mechanism behind the socket model's capacity
    /// contention (Intel CAT style). Shrinking trims each set's LRU tail
    /// immediately, so residency never exceeds the new allocation; the
    /// trim is a pure function of current contents, keeping the
    /// simulation deterministic.
    ///
    /// # Panics
    /// Panics if `ways` is zero — every occupant keeps at least one way.
    pub fn set_ways(&mut self, ways: usize) {
        assert!(ways >= 1, "a cache occupant keeps at least one way");
        if ways < self.ways {
            for set in 0..self.set_count as usize {
                let n = self.occupancy[set] as usize;
                if n > ways {
                    // Keep the `ways` MRU entries (the slice tail).
                    let base = set * self.stride;
                    self.lines.copy_within(base + n - ways..base + n, base);
                    // Vacated slots go back to the sentinel so the
                    // full-stride scans stay exact.
                    self.lines[base + ways..base + n].fill(u64::MAX);
                    self.occupancy[set] = ways as u8;
                }
            }
        }
        self.ways = ways;
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != 0 {
            (line & self.set_mask) as usize
        } else {
            (line % self.set_count) as usize
        }
    }

    /// Occupants of one set, LRU first (introspection for tests and the
    /// batched span path; no statistics side effects).
    #[inline]
    pub fn set_lines(&self, set: usize) -> &[u64] {
        let base = set * self.stride;
        &self.lines[base..base + self.occupancy[set] as usize]
    }

    /// Look up `line`; on hit, refresh LRU position. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64, is_prefetch: bool) -> bool {
        let set_idx = self.set_of(line);
        let base = set_idx * self.stride;
        let set = &mut self.lines[base..base + self.occupancy[set_idx] as usize];
        let stats = if is_prefetch {
            &mut self.prefetch
        } else {
            &mut self.demand
        };
        stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&l| l == line) {
            stats.hits += 1;
            // Move to MRU position: rotate the tail left by one.
            set[pos..].rotate_left(1);
            true
        } else {
            stats.misses += 1;
            false
        }
    }

    /// Insert `line` as MRU, evicting the LRU line if the set is full.
    #[inline]
    pub fn fill(&mut self, line: u64) {
        let set_idx = self.set_of(line);
        let base = set_idx * self.stride;
        let n = self.occupancy[set_idx] as usize;
        debug_assert!(
            !self.lines[base..base + n].contains(&line),
            "fill of already-resident line"
        );
        if n == self.ways {
            // Evict LRU (front): rotate left and overwrite the tail slot.
            let set = &mut self.lines[base..base + n];
            set.rotate_left(1);
            set[n - 1] = line;
        } else {
            self.lines[base + n] = line;
            self.occupancy[set_idx] = (n + 1) as u8;
        }
    }

    /// Whether `line` is resident (no statistics side effects).
    pub fn contains(&self, line: u64) -> bool {
        self.set_lines(self.set_of(line)).contains(&line)
    }

    /// Total lookups (demand + prefetch).
    pub fn total_accesses(&self) -> u64 {
        self.demand.accesses + self.prefetch.accesses
    }

    /// Total misses (demand + prefetch).
    pub fn total_misses(&self) -> u64 {
        self.demand.misses + self.prefetch.misses
    }

    /// Drop all resident lines and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(u64::MAX);
        self.occupancy.fill(0);
        self.demand = LevelStats::default();
        self.prefetch = LevelStats::default();
    }

    #[inline(always)]
    fn scan_n<const N: usize>(&self, base: usize, line: u64) -> usize {
        let set: &[u64; N] = self.lines[base..base + N]
            .try_into()
            .expect("stride-sized slice");
        let mut pos = usize::MAX;
        for (i, &l) in set.iter().enumerate() {
            if l == line {
                pos = i;
            }
        }
        pos
    }

    /// Refresh the LRU position of the occupant at `base + pos` (a
    /// position returned by [`CacheLevel::scan`]).
    #[inline(always)]
    fn promote(&mut self, set_idx: usize, base: usize, pos: usize) {
        let occ = self.occupancy[set_idx] as usize;
        self.lines[base + pos..base + occ].rotate_left(1);
    }

    /// [`CacheLevel::fill`] with the set index and slot base pre-computed.
    /// [`CacheLevel::fill_at`] with the stride known at compile time —
    /// the monomorphized walk's fill. Falls back to runtime lengths when
    /// way-partitioning has shrunk `ways` below the stride.
    #[inline(always)]
    fn fill_at_c<const N: usize>(&mut self, set_idx: usize, base: usize, line: u64) {
        debug_assert_eq!(self.stride, N);
        let n = self.occupancy[set_idx] as usize;
        if n == self.ways {
            if n == N {
                self.evict_fill_n::<N>(base, line);
            } else {
                let set = &mut self.lines[base..base + n];
                set.rotate_left(1);
                set[n - 1] = line;
            }
        } else {
            self.lines[base + n] = line;
            self.occupancy[set_idx] = (n + 1) as u8;
        }
    }

    #[inline(always)]
    fn evict_fill_n<const N: usize>(&mut self, base: usize, line: u64) {
        self.lines.copy_within(base + 1..base + N, base);
        self.lines[base + N - 1] = line;
    }

    /// Whether any line in `lo..=hi` is resident (no statistics side
    /// effects). Used by the batched span path to prove a span *clean*
    /// (all compulsory misses) before applying closed-form accounting.
    pub(crate) fn any_resident_in_range(&self, lo: u64, hi: u64) -> bool {
        if hi - lo + 1 >= self.set_count {
            // Every set can hold range lines: scan occupants once.
            for set in 0..self.set_count as usize {
                if self.set_lines(set).iter().any(|&l| l >= lo && l <= hi) {
                    return true;
                }
            }
            false
        } else {
            (lo..=hi).any(|l| self.contains(l))
        }
    }

    /// Fill every line of `lo..=hi` in ascending order, as if
    /// [`CacheLevel::fill`] were called per line — but with one batched
    /// LRU rebuild per set instead of a rotate per line. Statistics are
    /// untouched (the caller accounts them in closed form).
    ///
    /// Precondition (checked by the caller via
    /// [`CacheLevel::any_resident_in_range`]): none of the lines is
    /// currently resident. Per-line fills then never *hit*, so the final
    /// per-set content is the LRU-tail of `old occupants ++ new lines in
    /// ascending order` — the suffix rule this method applies directly.
    pub(crate) fn fill_range_ascending(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi);
        if hi - lo + 1 < self.set_count {
            // Fewer lines than sets: at most one line per set — the
            // per-line path is already one operation per set.
            for line in lo..=hi {
                self.fill(line);
            }
            return;
        }
        let s_count = self.set_count;
        let rem = lo % s_count;
        for set in 0..s_count {
            // First line >= lo that maps to this set.
            let first_s = lo + (set + s_count - rem) % s_count;
            if first_s > hi {
                continue;
            }
            let k = ((hi - first_s) / s_count + 1) as usize;
            let set_idx = set as usize;
            let base = set_idx * self.stride;
            let ways = self.ways;
            if k >= ways {
                // The new lines alone fill the set: keep the last `ways`.
                let last_s = first_s + (k as u64 - 1) * s_count;
                for t in 0..ways {
                    self.lines[base + t] = last_s - ((ways - 1 - t) as u64) * s_count;
                }
                self.occupancy[set_idx] = ways as u8;
            } else {
                let n_old = self.occupancy[set_idx] as usize;
                let keep_old = (ways - k).min(n_old);
                self.lines
                    .copy_within(base + n_old - keep_old..base + n_old, base);
                for t in 0..k {
                    self.lines[base + keep_old + t] = first_s + t as u64 * s_count;
                }
                self.occupancy[set_idx] = (keep_old + k) as u8;
            }
        }
    }
}

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the level with this index (0 = L1).
    Level(usize),
    /// Missed every level; served by main memory.
    Memory,
}

/// Result of one demand line access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Which structure served the demand request.
    pub served_by: ServedBy,
    /// Whether the adjacent-line prefetcher issued a request.
    pub prefetch_issued: bool,
    /// Whether that prefetch had to go to memory.
    pub prefetch_memory: bool,
}

/// The multi-level hierarchy, split into the **private levels** (L1/L2 —
/// per-core by construction on real sockets) and the core's slice of the
/// **last-level cache**. On a private-LLC pool the slice is the full
/// configured LLC; on a shared socket the pool shrinks it to the core's
/// deterministically partitioned share (see `popt_cpu::pool`), so the
/// slice is what this core's occupancy of the socket LLC looks like
/// without any cross-thread mutable cache state.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// Private upper levels (L1, L2, …) — never contended.
    private: Vec<CacheLevel>,
    /// This core's slice of the last-level cache.
    llc: CacheLevel,
    /// The socket's full LLC associativity, for re-widening a slice.
    llc_configured_ways: usize,
    adjacent_line_prefetch: bool,
    /// Demand requests that reached main memory.
    pub memory_demand: u64,
    /// Prefetch requests that reached main memory.
    pub memory_prefetch: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `config`: all levels but the last
    /// become the private stack, the last becomes the (initially
    /// full-capacity) LLC slice.
    pub fn new(config: &CpuConfig) -> Self {
        assert!(!config.levels.is_empty());
        let (last, upper) = config.levels.split_last().expect("at least one level");
        Self {
            private: upper.iter().map(CacheLevel::new).collect(),
            llc: CacheLevel::new(last),
            llc_configured_ways: last.ways as usize,
            adjacent_line_prefetch: config.adjacent_line_prefetch,
            memory_demand: 0,
            memory_prefetch: 0,
        }
    }

    /// Borrow a level (0 = L1; `depth() - 1` = the LLC slice).
    pub fn level(&self, idx: usize) -> &CacheLevel {
        if idx < self.private.len() {
            &self.private[idx]
        } else {
            assert_eq!(idx, self.private.len(), "level index out of range");
            &self.llc
        }
    }

    /// Number of configured levels (private stack + LLC).
    pub fn depth(&self) -> usize {
        self.private.len() + 1
    }

    /// Borrow this core's LLC slice.
    pub fn llc(&self) -> &CacheLevel {
        &self.llc
    }

    /// Restrict this core's LLC slice to `ways` ways (clamped into
    /// `1..=configured`). Called by the pool when a shared socket's
    /// capacity partition changes; private levels are never touched.
    pub fn set_llc_ways(&mut self, ways: usize) {
        self.llc.set_ways(ways.clamp(1, self.llc_configured_ways));
    }

    /// Current associativity of the LLC slice.
    pub fn llc_ways(&self) -> usize {
        self.llc.ways()
    }

    /// The socket's full LLC associativity.
    pub fn llc_configured_ways(&self) -> usize {
        self.llc_configured_ways
    }

    /// Perform a demand access for `line`, filling every level on the way
    /// back and (on an L2 demand miss) triggering the adjacent-line
    /// prefetcher for the buddy line.
    pub fn demand_access(&mut self, line: u64) -> AccessResult {
        if self.private.len() == 2 {
            // Monomorphize the frequent way-count shapes so every scan and
            // fill in the walk has a compile-time trip count (the shape is
            // fixed per hierarchy, so this dispatch predicts perfectly).
            match (
                self.private[0].stride,
                self.private[1].stride,
                self.llc.stride,
            ) {
                (8, 8, 16) => self.demand_access_2p_c::<8, 8, 16>(line),
                (8, 8, 20) => self.demand_access_2p_c::<8, 8, 20>(line),
                _ => self.demand_access_general(line),
            }
        } else {
            self.demand_access_general(line)
        }
    }

    /// [`CacheHierarchy::demand_access_2p`] monomorphized over the three
    /// way counts — identical logic with const-size scans and fills.
    fn demand_access_2p_c<const W1: usize, const W2: usize, const W3: usize>(
        &mut self,
        line: u64,
    ) -> AccessResult {
        const NO_PREFETCH: AccessResult = AccessResult {
            served_by: ServedBy::Level(0),
            prefetch_issued: false,
            prefetch_memory: false,
        };
        let [l1, l2]: &mut [CacheLevel; 2] = (&mut self.private[..])
            .try_into()
            .expect("two private levels");
        let llc = &mut self.llc;
        let set1 = l1.set_of(line);
        let base1 = set1 * W1;
        let pos1 = l1.scan_n::<W1>(base1, line);
        l1.demand.accesses += 1;
        if pos1 != usize::MAX {
            l1.demand.hits += 1;
            l1.promote(set1, base1, pos1);
            return NO_PREFETCH;
        }
        l1.demand.misses += 1;
        let set2 = l2.set_of(line);
        let base2 = set2 * W2;
        let pos2 = l2.scan_n::<W2>(base2, line);
        l2.demand.accesses += 1;
        if pos2 != usize::MAX {
            l2.demand.hits += 1;
            l2.promote(set2, base2, pos2);
            l1.fill_at_c::<W1>(set1, base1, line);
            return AccessResult {
                served_by: ServedBy::Level(1),
                ..NO_PREFETCH
            };
        }
        l2.demand.misses += 1;
        let set3 = llc.set_of(line);
        let base3 = set3 * W3;
        let pos3 = llc.scan_n::<W3>(base3, line);
        llc.demand.accesses += 1;
        let served_by = if pos3 != usize::MAX {
            llc.demand.hits += 1;
            llc.promote(set3, base3, pos3);
            ServedBy::Level(2)
        } else {
            llc.demand.misses += 1;
            self.memory_demand += 1;
            llc.fill_at_c::<W3>(set3, base3, line);
            ServedBy::Memory
        };
        l1.fill_at_c::<W1>(set1, base1, line);
        l2.fill_at_c::<W2>(set2, base2, line);
        let mut prefetch_issued = false;
        let mut prefetch_memory = false;
        if self.adjacent_line_prefetch {
            let buddy = line ^ 1;
            let b2_set = l2.set_of(buddy);
            let b2_base = b2_set * W2;
            if l2.scan_n::<W2>(b2_base, buddy) == usize::MAX {
                prefetch_issued = true;
                let b3_set = llc.set_of(buddy);
                let b3_base = b3_set * W3;
                let b3_pos = llc.scan_n::<W3>(b3_base, buddy);
                llc.prefetch.accesses += 1;
                if b3_pos != usize::MAX {
                    llc.prefetch.hits += 1;
                    llc.promote(b3_set, b3_base, b3_pos);
                } else {
                    llc.prefetch.misses += 1;
                    self.memory_prefetch += 1;
                    prefetch_memory = true;
                    llc.fill_at_c::<W3>(b3_base / W3, b3_base, buddy);
                }
                l2.fill_at_c::<W2>(b2_set, b2_base, buddy);
            }
        }
        AccessResult {
            served_by,
            prefetch_issued,
            prefetch_memory,
        }
    }

    /// Reference walk for arbitrary hierarchy depths.
    fn demand_access_general(&mut self, line: u64) -> AccessResult {
        let mut hit_level = None;
        for (i, level) in self.private.iter_mut().enumerate() {
            if level.access(line, false) {
                hit_level = Some(i);
                break;
            }
        }
        if hit_level.is_none() && self.llc.access(line, false) {
            hit_level = Some(self.private.len());
        }
        let served_by = match hit_level {
            Some(i) => ServedBy::Level(i),
            None => {
                self.memory_demand += 1;
                ServedBy::Memory
            }
        };
        // Fill the line into every level above the hit.
        let fill_upto = match served_by {
            ServedBy::Level(i) => i,
            ServedBy::Memory => self.depth(),
        };
        for level in self.private.iter_mut().take(fill_upto) {
            level.fill(line);
        }
        if fill_upto > self.private.len() {
            self.llc.fill(line);
        }

        // Adjacent-line prefetch: on a demand miss that had to leave the
        // private stack (i.e. the request reached the LLC), fetch the
        // buddy line of the 128-byte aligned pair into L2 and the LLC.
        let reached_llc = matches!(served_by, ServedBy::Memory)
            || matches!(served_by, ServedBy::Level(i) if i >= self.private.len());
        let mut prefetch_issued = false;
        let mut prefetch_memory = false;
        if self.adjacent_line_prefetch && reached_llc && self.private.len() >= 2 {
            let buddy = line ^ 1;
            // Only issue if the buddy is not already in L2.
            let l2 = self.private.len() - 1;
            if !self.private[l2].contains(buddy) {
                prefetch_issued = true;
                // The prefetch looks up the LLC (counted as an L3 access).
                let hit = self.llc.access(buddy, true);
                if !hit {
                    self.memory_prefetch += 1;
                    prefetch_memory = true;
                    self.llc.fill(buddy);
                }
                // Install in L2 so a later sequential demand hits there.
                if !self.private[l2].contains(buddy) {
                    self.private[l2].fill(buddy);
                }
            }
        }
        AccessResult {
            served_by,
            prefetch_issued,
            prefetch_memory,
        }
    }

    /// Whether the closed-form dense-span accounting applies to this
    /// hierarchy shape: exactly L1/L2 + LLC (the buddy-prefetch parity
    /// argument is specific to a 3-deep stack), prefetcher on, and at
    /// least two sets per level (adjacent lines must land in different
    /// sets so per-set arrival order stays ascending).
    pub(crate) fn dense_span_eligible(&self) -> bool {
        self.private.len() == 2
            && self.adjacent_line_prefetch
            && self.private.iter().all(|l| l.set_count() >= 2)
            && self.llc.set_count() >= 2
    }

    /// Whether no line of `lo..=hi` is resident at any level.
    pub(crate) fn span_is_clean(&self, lo: u64, hi: u64) -> bool {
        !self.private.iter().any(|l| l.any_resident_in_range(lo, hi))
            && !self.llc.any_resident_in_range(lo, hi)
    }

    /// Apply a **clean dense sequential span** `first..=last` in closed
    /// form: the exact statistics and final cache state that per-line
    /// [`CacheHierarchy::demand_access`] calls would produce, computed at
    /// set/level granularity. Preconditions: [`Self::dense_span_eligible`]
    /// and [`Self::span_is_clean`] over the *extended* range (the span
    /// plus the boundary buddy lines).
    ///
    /// The parity argument: on a clean span, every 128-byte pair's low
    /// line demand-misses to memory and prefetches its buddy (also a
    /// memory trip); the buddy's own demand access then hits L2 where the
    /// prefetch installed it. A span entered on an odd line additionally
    /// initiates one pair from its high half (fetching the below-span
    /// buddy). So each line is either an *initiator* (memory demand +
    /// memory prefetch) or an *L2 hit*; every level's per-set final
    /// content is the LRU suffix of its ascending arrivals.
    ///
    /// Returns `(initiators, l2_hits)` — prefetch count equals
    /// `initiators`.
    pub(crate) fn apply_dense_span(&mut self, first: u64, last: u64) -> (u64, u64) {
        debug_assert!(self.dense_span_eligible());
        let n = last - first + 1;
        let ext_lo = first - (first & 1);
        let ext_hi = last + 1 - (last & 1);
        debug_assert!(self.span_is_clean(ext_lo, ext_hi));
        let first_even = first + (first & 1);
        let evens = if first_even > last {
            0
        } else {
            (last - first_even) / 2 + 1
        };
        let initiators = evens + (first & 1);
        let hits = n - initiators;

        let l1 = &mut self.private[0];
        l1.demand.accesses += n;
        l1.demand.misses += n;
        l1.fill_range_ascending(first, last);

        let l2 = &mut self.private[1];
        l2.demand.accesses += n;
        l2.demand.hits += hits;
        l2.demand.misses += initiators;
        l2.fill_range_ascending(ext_lo, ext_hi);

        self.llc.demand.accesses += initiators;
        self.llc.demand.misses += initiators;
        self.llc.prefetch.accesses += initiators;
        self.llc.prefetch.misses += initiators;
        self.llc.fill_range_ascending(ext_lo, ext_hi);

        self.memory_demand += initiators;
        self.memory_prefetch += initiators;
        (initiators, hits)
    }

    /// L3 accesses in the paper's sense: demand requests from above plus
    /// prefetch requests (Section 2.2.2). Zero if fewer than three levels
    /// (a hierarchy that shallow has no L3).
    pub fn l3_accesses(&self) -> u64 {
        if self.depth() >= 3 {
            self.llc.total_accesses()
        } else {
            0
        }
    }

    /// L3 misses (demand + prefetch requests that went to memory).
    pub fn l3_misses(&self) -> u64 {
        if self.depth() >= 3 {
            self.llc.total_misses()
        } else {
            0
        }
    }

    /// Clear residency and statistics of all levels. The LLC slice's way
    /// allocation is a *socket* property (set by the pool's partition),
    /// not run state, so it survives a reset.
    pub fn reset(&mut self) {
        for l in &mut self.private {
            l.reset();
        }
        self.llc.reset();
        self.memory_demand = 0;
        self.memory_prefetch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&CpuConfig::tiny_test())
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut h = tiny();
        h.demand_access(42);
        let r = h.demand_access(42);
        assert_eq!(r.served_by, ServedBy::Level(0));
        assert_eq!(h.level(0).demand.hits, 1);
    }

    #[test]
    fn cold_access_goes_to_memory() {
        let mut h = tiny();
        let r = h.demand_access(42);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(h.memory_demand, 1);
    }

    #[test]
    fn lru_eviction_in_single_set() {
        // tiny L1: 1024 B / 64 B = 16 lines, 2 ways -> 8 sets. Lines that
        // collide in set 0: 0, 8, 16, ...
        let mut h = tiny();
        h.demand_access(0);
        h.demand_access(8);
        h.demand_access(16); // evicts line 0 from L1
        assert!(!h.level(0).contains(0));
        assert!(h.level(0).contains(8));
        assert!(h.level(0).contains(16));
        // line 0 is still in L2/L3.
        assert!(h.level(1).contains(0) || h.level(2).contains(0));
    }

    #[test]
    fn lru_refresh_on_hit_prevents_eviction() {
        let mut h = tiny();
        h.demand_access(0);
        h.demand_access(8);
        h.demand_access(0); // refresh line 0 to MRU
        h.demand_access(16); // should evict 8, not 0
        assert!(h.level(0).contains(0));
        assert!(!h.level(0).contains(8));
    }

    #[test]
    fn adjacent_line_prefetch_counts_as_l3_access() {
        let mut h = tiny();
        let r = h.demand_access(100);
        assert!(r.prefetch_issued);
        // 1 demand lookup + 1 prefetch lookup at L3.
        assert_eq!(h.l3_accesses(), 2);
        assert_eq!(h.memory_prefetch, 1);
    }

    #[test]
    fn sequential_buddy_access_hits_l2_no_extra_l3_access() {
        let mut h = tiny();
        h.demand_access(100); // prefetches buddy 101 into L2
        let before = h.l3_accesses();
        let r = h.demand_access(101);
        assert_eq!(r.served_by, ServedBy::Level(1));
        assert_eq!(h.l3_accesses(), before, "buddy hit must not touch L3");
    }

    #[test]
    fn dense_scan_l3_accesses_equal_line_count() {
        // Scanning every line of a large range: each 128B pair costs one
        // demand + one prefetch L3 access => L3 accesses == lines touched.
        let mut h = tiny();
        let lines = 4096u64;
        for l in 0..lines {
            h.demand_access(l);
        }
        assert_eq!(h.l3_accesses(), lines);
    }

    #[test]
    fn sparse_scan_l3_accesses_double_line_count() {
        // Touching every 8th line: every touch is a random miss; the buddy
        // prefetch is wasted => ~2 L3 accesses per touched line. This is
        // the "double counted random misses" of Section 3.1.
        let mut h = tiny();
        let mut touched = 0u64;
        for l in (0..32_768u64).step_by(8) {
            h.demand_access(l);
            touched += 1;
        }
        assert_eq!(h.l3_accesses(), 2 * touched);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = tiny();
        h.demand_access(1);
        h.demand_access(2);
        h.reset();
        assert_eq!(h.l3_accesses(), 0);
        assert_eq!(h.memory_demand, 0);
        let r = h.demand_access(1);
        assert_eq!(r.served_by, ServedBy::Memory);
    }

    #[test]
    fn shrinking_llc_ways_trims_lru_and_caps_residency() {
        // tiny L3: 16384 B / 64 B = 256 lines, 4 ways -> 64 sets. Lines
        // colliding in set 0: 0, 64, 128, 192, 256.
        let mut h = tiny();
        for l in [0u64, 64, 128, 192] {
            h.demand_access(l * 2); // *2 defeats the buddy prefetch pairing
        }
        // All four resident in the LLC set (L1/L2 too small to matter for
        // contains checks below — check the LLC directly).
        let llc = h.llc();
        assert_eq!(llc.ways(), 4);
        // Shrink to 1 way: the three LRU lines of every set are trimmed.
        h.set_llc_ways(1);
        assert_eq!(h.llc_ways(), 1);
        assert_eq!(h.llc_configured_ways(), 4);
        let resident: usize = [0u64, 64, 128, 192]
            .iter()
            .filter(|&&l| h.llc().contains(l * 2))
            .count();
        assert_eq!(resident, 1, "one way holds exactly the MRU line");
        assert!(h.llc().contains(192 * 2), "the MRU line survives the trim");
        // Re-widening never exceeds the configured ways.
        h.set_llc_ways(100);
        assert_eq!(h.llc_ways(), 4);
    }

    #[test]
    fn one_way_slice_thrashes_where_full_slice_holds() {
        // A working set that fits the full LLC but not a 1-way slice:
        // re-scanning it hits with full ways and misses with one way.
        let scan = |h: &mut CacheHierarchy| {
            let mut memory = 0u64;
            for round in 0..4 {
                for l in (0..128u64).map(|l| l * 2) {
                    let r = h.demand_access(l);
                    if round > 0 && r.served_by == ServedBy::Memory {
                        memory += 1;
                    }
                }
            }
            memory
        };
        let mut full = tiny();
        let full_misses = scan(&mut full);
        let mut sliced = tiny();
        sliced.set_llc_ways(1);
        let sliced_misses = scan(&mut sliced);
        assert!(
            sliced_misses > full_misses,
            "1-way slice {sliced_misses} !> full {full_misses}"
        );
    }

    #[test]
    fn reset_preserves_the_way_allocation() {
        let mut h = tiny();
        h.set_llc_ways(2);
        h.demand_access(7);
        h.reset();
        assert_eq!(h.llc_ways(), 2, "partition is socket state, not run state");
        assert_eq!(h.l3_accesses(), 0);
    }

    #[test]
    fn flat_storage_matches_reference_lru_eviction_order() {
        // Drive one CacheLevel and a naive Vec-per-set reference model with
        // the same access/fill sequence and assert the per-set LRU order
        // (and therefore the eviction order) is unchanged by the flat
        // rotate-based storage.
        let cfg = CacheLevelConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 4,
            hit_latency_cycles: 1,
        };
        let mut level = CacheLevel::new(&cfg);
        let sets = level.set_count() as usize;
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets];
        let set_of = |line: u64| (line % sets as u64) as usize;
        // Deterministic mixed workload: strided sweeps + re-touches that
        // exercise hit-reposition, miss, fill and full-set eviction.
        let mut seq: Vec<u64> = Vec::new();
        for round in 0..6u64 {
            for l in (0..40u64).step_by(3) {
                seq.push(l.wrapping_mul(round + 1) % 64);
            }
            seq.push(round % 8); // refresh a low line to MRU
        }
        for &line in &seq {
            let hit = level.access(line, false);
            let set = &mut reference[set_of(line)];
            let ref_hit = if let Some(pos) = set.iter().position(|&l| l == line) {
                let l = set.remove(pos);
                set.push(l);
                true
            } else {
                false
            };
            assert_eq!(hit, ref_hit, "hit/miss diverged on line {line}");
            if !hit {
                if set.len() == 4 {
                    set.remove(0);
                }
                set.push(line);
                level.fill(line);
            }
        }
        for (s, set) in reference.iter().enumerate() {
            assert_eq!(level.set_lines(s), set.as_slice(), "set {s} order");
        }
        // Shrinking ways keeps the MRU tail, exactly like trimming the
        // reference model's front.
        level.set_ways(2);
        for (s, set) in reference.iter().enumerate() {
            let keep = &set[set.len().saturating_sub(2)..];
            assert_eq!(level.set_lines(s), keep, "set {s} after trim");
        }
    }

    #[test]
    fn working_set_within_l1_only_compulsory_misses() {
        let mut h = tiny();
        // 8 lines spread over distinct sets fit in a 16-line L1.
        for round in 0..10 {
            for l in 0..8u64 {
                let r = h.demand_access(l);
                if round > 0 {
                    assert_eq!(r.served_by, ServedBy::Level(0), "line {l} round {round}");
                }
            }
        }
        // Even lines demand-miss to memory; odd lines are covered by the
        // buddy prefetch of their even neighbour.
        assert_eq!(h.memory_demand, 4);
        assert_eq!(h.memory_prefetch, 4);
    }
}
