//! Set-associative, LRU cache hierarchy with an adjacent-line prefetcher.
//!
//! The paper exploits the number of **L3 accesses**, defined in
//! Section 2.2.2 as demand requests arriving from the upper levels *plus*
//! prefetch requests. The hierarchy here reproduces that semantics
//! mechanically:
//!
//! * a demand access walks L1 → L2 → L3 → memory, filling on the way back;
//! * every demand L2 miss triggers the **adjacent-line (spatial)
//!   prefetcher**, which fetches the buddy cache line of the missing line
//!   into L2 — the mechanism behind the paper's "double count the number of
//!   random misses" modification of the Pirk cost model (Section 3.1): a
//!   random access pays for the line it needs *and* the speculatively
//!   fetched neighbour that is never used;
//! * L3 accesses = demand L2-misses + prefetch requests, and both kinds can
//!   miss L3 and travel to memory.
//!
//! For cycle accounting, sequential fills (detected per access stream by the
//! caller, see [`crate::cpu::SimCpu`]) are charged a bandwidth-bound cost
//! rather than the full random-access memory latency.

use crate::config::{CacheLevelConfig, CpuConfig};

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups at this level (demand and prefetch).
    pub accesses: u64,
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Lookups that missed and were forwarded down.
    pub misses: u64,
}

/// One set-associative cache level with true-LRU replacement.
///
/// Lines are tracked by line number (address divided by line size); the
/// per-set LRU order is maintained as a small ordered vector, which is
/// efficient for the 8–16 way configurations that real L1/L2/L3 use.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    sets: Vec<Vec<u64>>, // per set: resident line numbers, most recent last
    /// `sets.len() - 1` when the set count is a power of two, else 0.
    set_mask: u64,
    set_count: u64,
    ways: usize,
    /// Running statistics, split by requester.
    pub demand: LevelStats,
    /// Statistics for prefetch-initiated lookups.
    pub prefetch: LevelStats,
}

impl CacheLevel {
    /// Build an empty level from its configuration. Non-power-of-two set
    /// counts (e.g. a 15 MiB sliced L3) index by modulo instead of mask.
    pub fn new(config: &CacheLevelConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache level needs at least one set");
        Self {
            sets: vec![Vec::with_capacity(config.ways as usize); sets as usize],
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            set_count: sets,
            ways: config.ways as usize,
            demand: LevelStats::default(),
            prefetch: LevelStats::default(),
        }
    }

    /// Current associativity limit of the level (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Restrict (or re-widen) the level to `ways` ways per set — the
    /// way-partitioning mechanism behind the socket model's capacity
    /// contention (Intel CAT style). Shrinking trims each set's LRU tail
    /// immediately, so residency never exceeds the new allocation; the
    /// trim is a pure function of current contents, keeping the
    /// simulation deterministic.
    ///
    /// # Panics
    /// Panics if `ways` is zero — every occupant keeps at least one way.
    pub fn set_ways(&mut self, ways: usize) {
        assert!(ways >= 1, "a cache occupant keeps at least one way");
        if ways < self.ways {
            for set in &mut self.sets {
                while set.len() > ways {
                    set.remove(0); // LRU is at the front
                }
            }
        }
        self.ways = ways;
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != 0 {
            (line & self.set_mask) as usize
        } else {
            (line % self.set_count) as usize
        }
    }

    /// Look up `line`; on hit, refresh LRU position. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64, is_prefetch: bool) -> bool {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let stats = if is_prefetch {
            &mut self.prefetch
        } else {
            &mut self.demand
        };
        stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&l| l == line) {
            stats.hits += 1;
            // Move to MRU position.
            let l = set.remove(pos);
            set.push(l);
            true
        } else {
            stats.misses += 1;
            false
        }
    }

    /// Insert `line` as MRU, evicting the LRU line if the set is full.
    #[inline]
    pub fn fill(&mut self, line: u64) {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        debug_assert!(!set.contains(&line), "fill of already-resident line");
        if set.len() == self.ways {
            set.remove(0);
        }
        set.push(line);
    }

    /// Whether `line` is resident (no statistics side effects).
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Total lookups (demand + prefetch).
    pub fn total_accesses(&self) -> u64 {
        self.demand.accesses + self.prefetch.accesses
    }

    /// Total misses (demand + prefetch).
    pub fn total_misses(&self) -> u64 {
        self.demand.misses + self.prefetch.misses
    }

    /// Drop all resident lines and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.demand = LevelStats::default();
        self.prefetch = LevelStats::default();
    }
}

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the level with this index (0 = L1).
    Level(usize),
    /// Missed every level; served by main memory.
    Memory,
}

/// Result of one demand line access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Which structure served the demand request.
    pub served_by: ServedBy,
    /// Whether the adjacent-line prefetcher issued a request.
    pub prefetch_issued: bool,
    /// Whether that prefetch had to go to memory.
    pub prefetch_memory: bool,
}

/// The multi-level hierarchy, split into the **private levels** (L1/L2 —
/// per-core by construction on real sockets) and the core's slice of the
/// **last-level cache**. On a private-LLC pool the slice is the full
/// configured LLC; on a shared socket the pool shrinks it to the core's
/// deterministically partitioned share (see `popt_cpu::pool`), so the
/// slice is what this core's occupancy of the socket LLC looks like
/// without any cross-thread mutable cache state.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// Private upper levels (L1, L2, …) — never contended.
    private: Vec<CacheLevel>,
    /// This core's slice of the last-level cache.
    llc: CacheLevel,
    /// The socket's full LLC associativity, for re-widening a slice.
    llc_configured_ways: usize,
    adjacent_line_prefetch: bool,
    /// Demand requests that reached main memory.
    pub memory_demand: u64,
    /// Prefetch requests that reached main memory.
    pub memory_prefetch: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `config`: all levels but the last
    /// become the private stack, the last becomes the (initially
    /// full-capacity) LLC slice.
    pub fn new(config: &CpuConfig) -> Self {
        assert!(!config.levels.is_empty());
        let (last, upper) = config.levels.split_last().expect("at least one level");
        Self {
            private: upper.iter().map(CacheLevel::new).collect(),
            llc: CacheLevel::new(last),
            llc_configured_ways: last.ways as usize,
            adjacent_line_prefetch: config.adjacent_line_prefetch,
            memory_demand: 0,
            memory_prefetch: 0,
        }
    }

    /// Borrow a level (0 = L1; `depth() - 1` = the LLC slice).
    pub fn level(&self, idx: usize) -> &CacheLevel {
        if idx < self.private.len() {
            &self.private[idx]
        } else {
            assert_eq!(idx, self.private.len(), "level index out of range");
            &self.llc
        }
    }

    /// Number of configured levels (private stack + LLC).
    pub fn depth(&self) -> usize {
        self.private.len() + 1
    }

    /// Borrow this core's LLC slice.
    pub fn llc(&self) -> &CacheLevel {
        &self.llc
    }

    /// Restrict this core's LLC slice to `ways` ways (clamped into
    /// `1..=configured`). Called by the pool when a shared socket's
    /// capacity partition changes; private levels are never touched.
    pub fn set_llc_ways(&mut self, ways: usize) {
        self.llc.set_ways(ways.clamp(1, self.llc_configured_ways));
    }

    /// Current associativity of the LLC slice.
    pub fn llc_ways(&self) -> usize {
        self.llc.ways()
    }

    /// The socket's full LLC associativity.
    pub fn llc_configured_ways(&self) -> usize {
        self.llc_configured_ways
    }

    /// Perform a demand access for `line`, filling every level on the way
    /// back and (on an L2 demand miss) triggering the adjacent-line
    /// prefetcher for the buddy line.
    pub fn demand_access(&mut self, line: u64) -> AccessResult {
        let mut hit_level = None;
        for (i, level) in self.private.iter_mut().enumerate() {
            if level.access(line, false) {
                hit_level = Some(i);
                break;
            }
        }
        if hit_level.is_none() && self.llc.access(line, false) {
            hit_level = Some(self.private.len());
        }
        let served_by = match hit_level {
            Some(i) => ServedBy::Level(i),
            None => {
                self.memory_demand += 1;
                ServedBy::Memory
            }
        };
        // Fill the line into every level above the hit.
        let fill_upto = match served_by {
            ServedBy::Level(i) => i,
            ServedBy::Memory => self.depth(),
        };
        for level in self.private.iter_mut().take(fill_upto) {
            level.fill(line);
        }
        if fill_upto > self.private.len() {
            self.llc.fill(line);
        }

        // Adjacent-line prefetch: on a demand miss that had to leave the
        // private stack (i.e. the request reached the LLC), fetch the
        // buddy line of the 128-byte aligned pair into L2 and the LLC.
        let reached_llc = matches!(served_by, ServedBy::Memory)
            || matches!(served_by, ServedBy::Level(i) if i >= self.private.len());
        let mut prefetch_issued = false;
        let mut prefetch_memory = false;
        if self.adjacent_line_prefetch && reached_llc && self.private.len() >= 2 {
            let buddy = line ^ 1;
            // Only issue if the buddy is not already in L2.
            let l2 = self.private.len() - 1;
            if !self.private[l2].contains(buddy) {
                prefetch_issued = true;
                // The prefetch looks up the LLC (counted as an L3 access).
                let hit = self.llc.access(buddy, true);
                if !hit {
                    self.memory_prefetch += 1;
                    prefetch_memory = true;
                    self.llc.fill(buddy);
                }
                // Install in L2 so a later sequential demand hits there.
                if !self.private[l2].contains(buddy) {
                    self.private[l2].fill(buddy);
                }
            }
        }
        AccessResult {
            served_by,
            prefetch_issued,
            prefetch_memory,
        }
    }

    /// L3 accesses in the paper's sense: demand requests from above plus
    /// prefetch requests (Section 2.2.2). Zero if fewer than three levels
    /// (a hierarchy that shallow has no L3).
    pub fn l3_accesses(&self) -> u64 {
        if self.depth() >= 3 {
            self.llc.total_accesses()
        } else {
            0
        }
    }

    /// L3 misses (demand + prefetch requests that went to memory).
    pub fn l3_misses(&self) -> u64 {
        if self.depth() >= 3 {
            self.llc.total_misses()
        } else {
            0
        }
    }

    /// Clear residency and statistics of all levels. The LLC slice's way
    /// allocation is a *socket* property (set by the pool's partition),
    /// not run state, so it survives a reset.
    pub fn reset(&mut self) {
        for l in &mut self.private {
            l.reset();
        }
        self.llc.reset();
        self.memory_demand = 0;
        self.memory_prefetch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&CpuConfig::tiny_test())
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut h = tiny();
        h.demand_access(42);
        let r = h.demand_access(42);
        assert_eq!(r.served_by, ServedBy::Level(0));
        assert_eq!(h.level(0).demand.hits, 1);
    }

    #[test]
    fn cold_access_goes_to_memory() {
        let mut h = tiny();
        let r = h.demand_access(42);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(h.memory_demand, 1);
    }

    #[test]
    fn lru_eviction_in_single_set() {
        // tiny L1: 1024 B / 64 B = 16 lines, 2 ways -> 8 sets. Lines that
        // collide in set 0: 0, 8, 16, ...
        let mut h = tiny();
        h.demand_access(0);
        h.demand_access(8);
        h.demand_access(16); // evicts line 0 from L1
        assert!(!h.level(0).contains(0));
        assert!(h.level(0).contains(8));
        assert!(h.level(0).contains(16));
        // line 0 is still in L2/L3.
        assert!(h.level(1).contains(0) || h.level(2).contains(0));
    }

    #[test]
    fn lru_refresh_on_hit_prevents_eviction() {
        let mut h = tiny();
        h.demand_access(0);
        h.demand_access(8);
        h.demand_access(0); // refresh line 0 to MRU
        h.demand_access(16); // should evict 8, not 0
        assert!(h.level(0).contains(0));
        assert!(!h.level(0).contains(8));
    }

    #[test]
    fn adjacent_line_prefetch_counts_as_l3_access() {
        let mut h = tiny();
        let r = h.demand_access(100);
        assert!(r.prefetch_issued);
        // 1 demand lookup + 1 prefetch lookup at L3.
        assert_eq!(h.l3_accesses(), 2);
        assert_eq!(h.memory_prefetch, 1);
    }

    #[test]
    fn sequential_buddy_access_hits_l2_no_extra_l3_access() {
        let mut h = tiny();
        h.demand_access(100); // prefetches buddy 101 into L2
        let before = h.l3_accesses();
        let r = h.demand_access(101);
        assert_eq!(r.served_by, ServedBy::Level(1));
        assert_eq!(h.l3_accesses(), before, "buddy hit must not touch L3");
    }

    #[test]
    fn dense_scan_l3_accesses_equal_line_count() {
        // Scanning every line of a large range: each 128B pair costs one
        // demand + one prefetch L3 access => L3 accesses == lines touched.
        let mut h = tiny();
        let lines = 4096u64;
        for l in 0..lines {
            h.demand_access(l);
        }
        assert_eq!(h.l3_accesses(), lines);
    }

    #[test]
    fn sparse_scan_l3_accesses_double_line_count() {
        // Touching every 8th line: every touch is a random miss; the buddy
        // prefetch is wasted => ~2 L3 accesses per touched line. This is
        // the "double counted random misses" of Section 3.1.
        let mut h = tiny();
        let mut touched = 0u64;
        for l in (0..32_768u64).step_by(8) {
            h.demand_access(l);
            touched += 1;
        }
        assert_eq!(h.l3_accesses(), 2 * touched);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = tiny();
        h.demand_access(1);
        h.demand_access(2);
        h.reset();
        assert_eq!(h.l3_accesses(), 0);
        assert_eq!(h.memory_demand, 0);
        let r = h.demand_access(1);
        assert_eq!(r.served_by, ServedBy::Memory);
    }

    #[test]
    fn shrinking_llc_ways_trims_lru_and_caps_residency() {
        // tiny L3: 16384 B / 64 B = 256 lines, 4 ways -> 64 sets. Lines
        // colliding in set 0: 0, 64, 128, 192, 256.
        let mut h = tiny();
        for l in [0u64, 64, 128, 192] {
            h.demand_access(l * 2); // *2 defeats the buddy prefetch pairing
        }
        // All four resident in the LLC set (L1/L2 too small to matter for
        // contains checks below — check the LLC directly).
        let llc = h.llc();
        assert_eq!(llc.ways(), 4);
        // Shrink to 1 way: the three LRU lines of every set are trimmed.
        h.set_llc_ways(1);
        assert_eq!(h.llc_ways(), 1);
        assert_eq!(h.llc_configured_ways(), 4);
        let resident: usize = [0u64, 64, 128, 192]
            .iter()
            .filter(|&&l| h.llc().contains(l * 2))
            .count();
        assert_eq!(resident, 1, "one way holds exactly the MRU line");
        assert!(h.llc().contains(192 * 2), "the MRU line survives the trim");
        // Re-widening never exceeds the configured ways.
        h.set_llc_ways(100);
        assert_eq!(h.llc_ways(), 4);
    }

    #[test]
    fn one_way_slice_thrashes_where_full_slice_holds() {
        // A working set that fits the full LLC but not a 1-way slice:
        // re-scanning it hits with full ways and misses with one way.
        let scan = |h: &mut CacheHierarchy| {
            let mut memory = 0u64;
            for round in 0..4 {
                for l in (0..128u64).map(|l| l * 2) {
                    let r = h.demand_access(l);
                    if round > 0 && r.served_by == ServedBy::Memory {
                        memory += 1;
                    }
                }
            }
            memory
        };
        let mut full = tiny();
        let full_misses = scan(&mut full);
        let mut sliced = tiny();
        sliced.set_llc_ways(1);
        let sliced_misses = scan(&mut sliced);
        assert!(
            sliced_misses > full_misses,
            "1-way slice {sliced_misses} !> full {full_misses}"
        );
    }

    #[test]
    fn reset_preserves_the_way_allocation() {
        let mut h = tiny();
        h.set_llc_ways(2);
        h.demand_access(7);
        h.reset();
        assert_eq!(h.llc_ways(), 2, "partition is socket state, not run state");
        assert_eq!(h.l3_accesses(), 0);
    }

    #[test]
    fn working_set_within_l1_only_compulsory_misses() {
        let mut h = tiny();
        // 8 lines spread over distinct sets fit in a 16-line L1.
        for round in 0..10 {
            for l in 0..8u64 {
                let r = h.demand_access(l);
                if round > 0 {
                    assert_eq!(r.served_by, ServedBy::Level(0), "line {l} round {round}");
                }
            }
        }
        // Even lines demand-miss to memory; odd lines are covered by the
        // buddy prefetch of their even neighbour.
        assert_eq!(h.memory_demand, 4);
        assert_eq!(h.memory_prefetch, 4);
    }
}
