//! The simulated CPU core: ties predictor, caches, PMU and cycle accounting
//! together behind an event-driven API.
//!
//! A query executor drives the core with three kinds of events:
//!
//! * [`SimCpu::instr`] — retire `n` generic instructions;
//! * [`SimCpu::branch`] — execute a conditional branch at a static site;
//! * [`SimCpu::load`] / [`SimCpu::store`] — touch memory on a named access
//!   *stream* (one stream per column), which enables the per-line fast path
//!   and sequentiality detection.
//!
//! ## Cycle model
//!
//! `cycles = instructions × CPI + mispredict_penalty × mispredictions +
//! Σ hit_latency(level) + memory latencies`, where a memory-served line on a
//! *sequential* stream (line == previous line + 1) is charged the
//! bandwidth-bound `memory_sequential_cycles` instead of the full random
//! latency — modelling a hardware streamer hiding latency on dense scans.

use crate::branch::{BranchPredictor, BranchSite};
use crate::cache::{CacheHierarchy, ServedBy};
use crate::config::CpuConfig;
use crate::numa::NumaPlacement;
use crate::pmu::{Counters, Pmu};

/// Identifier of a memory access stream (typically: one column).
pub type StreamId = usize;

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StreamState {
    /// Line number of the most recent access, plus one (0 = no access yet),
    /// so that the default state never aliases line 0.
    pub(crate) last_line_plus_one: u64,
}

/// The simulated CPU. See the [module documentation](self) for the event
/// model and [`CpuConfig`] for the microarchitectural parameters.
#[derive(Debug, Clone)]
pub struct SimCpu {
    pub(crate) config: CpuConfig,
    pub(crate) hierarchy: CacheHierarchy,
    pub(crate) predictor: BranchPredictor,
    pub(crate) pmu: Pmu,
    pub(crate) streams: Vec<StreamState>,
    pub(crate) line_shift: u32,
    /// Cycles this core sat idle waiting for admissible work (a serving
    /// scheduler with no runnable query advances the core's wall-clock
    /// position without executing anything). Kept outside the PMU bank:
    /// idle time is not attributable to any instruction stream, so it
    /// never contaminates the counter samples the estimator fits.
    idle_cycles: u64,
    /// The socket this core belongs to (0 on a single-socket pool).
    pub(crate) socket: usize,
    /// Address-range → home-socket map shared by the pool. Like the LLC
    /// way allocation, it is socket state: it survives [`SimCpu::reset`].
    pub(crate) placement: NumaPlacement,
    /// Demand misses served by a remote socket's memory. Kept outside
    /// the [`Counters`] bank: the solver's counter model is
    /// socket-agnostic and must not see a new dimension.
    pub(crate) remote_accesses: u64,
}

impl SimCpu {
    /// Build a CPU from its configuration.
    pub fn new(config: CpuConfig) -> Self {
        let line = config.line_bytes();
        assert!(line.is_power_of_two(), "line size must be a power of two");
        Self {
            hierarchy: CacheHierarchy::new(&config),
            predictor: BranchPredictor::new(config.predictor),
            pmu: Pmu::new(),
            streams: Vec::new(),
            line_shift: line.trailing_zeros(),
            idle_cycles: 0,
            socket: 0,
            placement: NumaPlacement::single(),
            remote_accesses: 0,
            config,
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Retire `n` generic instructions.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.pmu.counters_mut().instructions += n;
    }

    /// Execute a conditional branch: predict, compare with the actual
    /// outcome, update counters and charge the misprediction penalty.
    #[inline]
    pub fn branch(&mut self, site: BranchSite, taken: bool) {
        let p = self.predictor.execute(site, taken);
        let c = self.pmu.counters_mut();
        c.branches += 1;
        if taken {
            c.branches_taken += 1;
            if !p.correct {
                c.mp_taken += 1;
            }
        } else {
            c.branches_not_taken += 1;
            if !p.correct {
                c.mp_not_taken += 1;
            }
        }
        if !p.correct {
            c.cycles += self.config.timing.mispredict_penalty_cycles;
        }
    }

    /// Load `bytes` at `addr` on `stream`.
    ///
    /// Accesses within the cache line most recently touched by the same
    /// stream short-circuit as L1 element hits (a scan never loses its
    /// current line between adjacent elements); crossing into a new line
    /// performs a full hierarchy access.
    #[inline]
    pub fn load(&mut self, stream: StreamId, addr: u64, bytes: u32) {
        let first_line = addr >> self.line_shift;
        let last_line = (addr + u64::from(bytes) - 1) >> self.line_shift;
        for line in first_line..=last_line {
            self.touch_line(stream, line);
        }
    }

    /// Store `bytes` at `addr` on `stream`. Write-allocate: identical cache
    /// behaviour to a load (read-for-ownership).
    #[inline]
    pub fn store(&mut self, stream: StreamId, addr: u64, bytes: u32) {
        self.load(stream, addr, bytes);
    }

    /// Load an arbitrarily long byte span at `addr` on `stream`,
    /// accounted strictly line by line. This is the **scalar oracle** the
    /// batched [`crate::batch::BatchCpu::load_span`] is proptest-pinned
    /// against.
    pub fn load_span(&mut self, stream: StreamId, addr: u64, bytes: u64) {
        assert!(bytes >= 1, "empty span");
        let first_line = addr >> self.line_shift;
        let last_line = (addr + bytes - 1) >> self.line_shift;
        for line in first_line..=last_line {
            self.touch_line(stream, line);
        }
    }

    /// Open a batched accounting scope: events issued through the
    /// returned [`crate::batch::BatchCpu`] accumulate PMU counters and
    /// remote-access counts locally and flush in bulk when the guard
    /// drops. While the guard lives, the borrow checker guarantees no
    /// mid-batch reads of this core's counters.
    pub fn batch(&mut self) -> crate::batch::BatchCpu<'_> {
        crate::batch::BatchCpu::new(self)
    }

    #[inline]
    fn touch_line(&mut self, stream: StreamId, line: u64) {
        if stream >= self.streams.len() {
            self.streams.resize(stream + 1, StreamState::default());
        }
        let st = &mut self.streams[stream];
        if st.last_line_plus_one == line + 1 {
            // Same line as the previous access on this stream.
            self.pmu.counters_mut().l1_element_hits += 1;
            return;
        }
        let sequential = st.last_line_plus_one == line; // previous == line-1
        st.last_line_plus_one = line + 1;

        let result = self.hierarchy.demand_access(line);
        let timing = self.config.timing;
        let c = self.pmu.counters_mut();
        c.l1_accesses += 1;
        match result.served_by {
            ServedBy::Level(0) => {
                c.l1_hits += 1;
                c.cycles += self.config.levels[0].hit_latency_cycles;
            }
            ServedBy::Level(i) => {
                c.l2_accesses += 1;
                if i >= 2 {
                    c.l3_accesses += 1;
                }
                c.cycles += self.config.levels[i].hit_latency_cycles;
            }
            ServedBy::Memory => {
                c.l2_accesses += 1;
                c.l3_accesses += 1;
                c.l3_misses += 1;
                c.memory_accesses += 1;
                c.cycles += if sequential {
                    timing.memory_sequential_cycles
                } else {
                    timing.memory_random_cycles
                };
                // NUMA hop: a line homed on another socket pays the
                // remote surcharge — in full when latency-bound
                // (random), a quarter when the streamer hides it
                // (sequential). Prefetch fills below stay unsurcharged:
                // they already model overlap with execution.
                if self.placement.sockets() > 1
                    && self
                        .placement
                        .socket_of_addr(line << self.line_shift, 1 << self.line_shift)
                        != self.socket
                {
                    self.remote_accesses += 1;
                    c.cycles += if sequential {
                        timing.memory_remote_extra_cycles / 4
                    } else {
                        timing.memory_remote_extra_cycles
                    };
                }
            }
        }
        if result.prefetch_issued {
            c.prefetch_requests += 1;
            c.l3_accesses += 1;
            if result.prefetch_memory {
                c.l3_misses += 1;
                // Prefetch fills overlap with execution; charge a small
                // bus-occupancy cost rather than the full latency.
                c.cycles += timing.memory_sequential_cycles / 4;
            }
        }
    }

    /// Total simulated cycles so far (work + stalls + penalties).
    pub fn cycles(&self) -> u64 {
        let raw = self.pmu.peek();
        let base =
            (raw.instructions as f64 * self.config.timing.cycles_per_instruction).round() as u64;
        raw.cycles + base
    }

    /// Simulated wall-clock milliseconds at the configured frequency.
    pub fn millis(&self) -> f64 {
        self.cycles() as f64 / (self.config.timing.frequency_ghz * 1e6)
    }

    /// Let the core sit idle for `cycles`: its wall-clock position
    /// advances, its counters do not. Serving schedulers call this when
    /// no admitted query has runnable work for this core.
    pub fn idle(&mut self, cycles: u64) {
        self.idle_cycles += cycles;
    }

    /// Total idle cycles accumulated via [`SimCpu::idle`].
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Wall-clock position of the core: busy cycles plus idle gaps.
    pub fn horizon_cycles(&self) -> u64 {
        self.cycles() + self.idle_cycles
    }

    /// Snapshot of the counter bank with the cycle counter finalized
    /// (instruction-base cycles folded in). Free — no sampling cost.
    pub fn counters(&self) -> Counters {
        let mut c = *self.pmu.peek();
        c.cycles = self.cycles();
        c
    }

    /// Take a PMU sample: like [`Self::counters`] but charges the fixed
    /// counter-readout cost (Section 5.7's "virtually no costs").
    pub fn sample(&mut self) -> Counters {
        let _ = self.pmu.sample(); // charges SAMPLE_COST_CYCLES into stalls
        self.counters()
    }

    /// Number of PMU samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.pmu.samples
    }

    /// Borrow the cache hierarchy (tests, figure harness).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Restrict this core's LLC slice to `ways` ways (clamped into
    /// `1..=configured`). Called by a shared-socket pool when its
    /// capacity partition changes.
    pub fn set_llc_ways(&mut self, ways: usize) {
        self.hierarchy.set_llc_ways(ways);
    }

    /// Effective capacity in bytes of this core's LLC slice: the
    /// configured capacity scaled by the way allocation. Equals the full
    /// configured LLC on a private (uncontended) core — the figure every
    /// cost estimate for work on this core should price against.
    pub fn llc_effective_bytes(&self) -> u64 {
        let llc = self.config.llc();
        llc.capacity_bytes * self.hierarchy.llc_ways() as u64 / u64::from(llc.ways)
    }

    /// The socket this core belongs to.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// Assign this core to `socket` (pool topology construction).
    pub fn set_socket(&mut self, socket: usize) {
        self.socket = socket;
    }

    /// The address-homing map this core prices remote accesses against.
    pub fn placement(&self) -> &NumaPlacement {
        &self.placement
    }

    /// Install the pool's address-homing map on this core.
    pub fn set_placement(&mut self, placement: NumaPlacement) {
        self.placement = placement;
    }

    /// Demand misses served by a remote socket's memory so far.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_accesses
    }

    /// Forget all cached lines, predictor state, stream state, counters
    /// and idle time. Socket identity and placement survive: they are
    /// topology, not execution state.
    pub fn reset(&mut self) {
        self.hierarchy.reset();
        self.predictor.reset();
        self.pmu.reset();
        self.streams.clear();
        self.idle_cycles = 0;
        self.remote_accesses = 0;
    }

    /// Forget stream adjacency (e.g. between vectors of a restarted scan)
    /// without losing cache/predictor state.
    pub fn reset_streams(&mut self) {
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> SimCpu {
        SimCpu::new(CpuConfig::tiny_test())
    }

    #[test]
    fn branch_counters_partition() {
        let mut c = cpu();
        let s = BranchSite(0);
        for i in 0..100 {
            c.branch(s, i % 3 == 0);
        }
        let k = c.counters();
        assert_eq!(k.branches, 100);
        assert_eq!(k.branches_taken + k.branches_not_taken, 100);
        assert_eq!(k.branches_taken, 34);
    }

    #[test]
    fn within_line_accesses_are_element_hits() {
        let mut c = cpu();
        // 16 i32 elements in one 64-byte line.
        for i in 0..16u64 {
            c.load(0, i * 4, 4);
        }
        let k = c.counters();
        assert_eq!(k.l1_accesses, 1);
        assert_eq!(k.l1_element_hits, 15);
    }

    #[test]
    fn straddling_load_touches_two_lines() {
        let mut c = cpu();
        c.load(0, 60, 8); // bytes 60..68 cross the 64-byte boundary
        assert_eq!(c.counters().l1_accesses, 2);
    }

    #[test]
    fn sequential_scan_cheaper_than_random() {
        let mut seq = cpu();
        for line in 0..1000u64 {
            seq.load(0, line * 64, 4);
        }
        let mut rnd = cpu();
        // Same number of distinct lines, but strided to defeat adjacency.
        for i in 0..1000u64 {
            rnd.load(0, (i * 17 % 1000) * 64 * 8, 4);
        }
        assert!(
            seq.cycles() < rnd.cycles(),
            "seq {} !< rnd {}",
            seq.cycles(),
            rnd.cycles()
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let mut predictable = cpu();
        let mut unpredictable = cpu();
        let s = BranchSite(0);
        for i in 0..10_000u64 {
            predictable.branch(s, true);
            // 50% pseudo-random: worst case for the predictor.
            let bit = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) & 1;
            unpredictable.branch(s, bit == 1);
        }
        assert!(unpredictable.cycles() > predictable.cycles());
    }

    #[test]
    fn counters_cycles_match_cycles_fn() {
        let mut c = cpu();
        c.instr(1000);
        c.load(0, 0, 4);
        assert_eq!(c.counters().cycles, c.cycles());
    }

    #[test]
    fn sample_charges_readout_cost() {
        let mut c = cpu();
        let before = c.cycles();
        let _ = c.sample();
        assert_eq!(c.cycles() - before, Pmu::SAMPLE_COST_CYCLES);
        assert_eq!(c.samples_taken(), 1);
    }

    #[test]
    fn pmu_l3_counters_match_hierarchy() {
        let mut c = cpu();
        for i in 0..500u64 {
            c.load(0, i * 256, 4); // every 4th line: sparse
        }
        let k = c.counters();
        assert_eq!(k.l3_accesses, c.hierarchy().l3_accesses());
        assert_eq!(k.l3_misses, c.hierarchy().l3_misses());
    }

    #[test]
    fn reset_zeroes_state() {
        let mut c = cpu();
        c.instr(10);
        c.load(0, 0, 4);
        c.branch(BranchSite(0), true);
        c.reset();
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.counters(), Counters::default());
    }

    #[test]
    fn idle_advances_horizon_but_not_counters() {
        let mut c = cpu();
        c.instr(100);
        let busy = c.cycles();
        c.idle(5_000);
        assert_eq!(c.cycles(), busy, "idle must not count as work");
        assert_eq!(c.idle_cycles(), 5_000);
        assert_eq!(c.horizon_cycles(), busy + 5_000);
        c.reset();
        assert_eq!(c.idle_cycles(), 0);
        assert_eq!(c.horizon_cycles(), 0);
    }

    #[test]
    fn millis_scales_with_frequency() {
        let mut c = cpu();
        c.instr(2_600_000_000); // at CPI 0.5 and 2.6 GHz: 0.5 s = 500 ms
        assert!((c.millis() - 500.0).abs() < 1.0);
    }

    #[test]
    fn remote_lines_cost_extra_and_are_counted() {
        use crate::numa::NumaPlacement;
        let run = |socket: usize| {
            let mut c = cpu();
            let mut p = NumaPlacement::interleaved(2);
            p.register(0, 1 << 24, 0); // everything homed on socket 0
            c.set_placement(p);
            c.set_socket(socket);
            // Strided (random) misses through the homed region.
            for i in 0..1000u64 {
                c.load(0, (i * 17 % 1000) * 64 * 8, 4);
            }
            (c.cycles(), c.remote_accesses(), c.counters())
        };
        let (local_cycles, local_remote, local_counters) = run(0);
        let (remote_cycles, remote_remote, remote_counters) = run(1);
        assert_eq!(local_remote, 0);
        assert!(remote_remote > 0);
        assert!(
            remote_cycles > local_cycles,
            "remote {remote_cycles} !> local {local_cycles}"
        );
        // The surcharge lands only in cycles: every architectural
        // counter the estimator sees is socket-invariant.
        assert_eq!(local_counters.l3_misses, remote_counters.l3_misses);
        assert_eq!(
            local_counters.memory_accesses,
            remote_counters.memory_accesses
        );
        // Single-socket placement is inert, and reset clears the count
        // but keeps topology.
        let mut c = cpu();
        c.set_socket(1);
        c.load(0, 0, 4);
        assert_eq!(c.remote_accesses(), 0, "1-socket placement never remote");
        c.set_placement(NumaPlacement::interleaved(2));
        c.load(0, 64 * 1024, 4);
        c.reset();
        assert_eq!(c.remote_accesses(), 0);
        assert_eq!(c.socket(), 1);
        assert_eq!(c.placement().sockets(), 2);
    }

    #[test]
    fn two_streams_do_not_share_line_state() {
        let mut c = cpu();
        c.load(0, 0, 4);
        c.load(1, 0, 4); // same address, different stream: full access
        let k = c.counters();
        assert_eq!(k.l1_accesses, 2);
        assert_eq!(k.l1_hits, 1); // second access hits in L1 proper
    }
}
