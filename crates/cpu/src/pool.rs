//! A pool of independent simulated cores for morsel-driven parallel
//! execution.
//!
//! Each core is a full [`SimCpu`]: its own cache hierarchy, branch
//! predictor, stream state and free-running PMU bank. Cores share
//! *nothing* — the only shared resource in the parallel execution model
//! is the storage layer's simulated address space, which is immutable
//! during a query. That mirrors the hardware the paper measures on
//! (per-core PMU banks sampled independently) and keeps the simulation
//! deterministic per core: a worker's counter values depend only on the
//! morsels it executed, not on thread scheduling.
//!
//! The pool's timing view is the one a wall clock would see: the
//! parallel region is as slow as its busiest core ([`CpuPool::max_cycles`]),
//! while [`CpuPool::total_cycles`] is the aggregate work — their ratio is
//! the scaling figure's speedup denominator.

use crate::config::CpuConfig;
use crate::cpu::SimCpu;
use crate::pmu::{CounterDelta, Counters};

/// A fixed-size pool of independent simulated cores.
#[derive(Debug, Clone)]
pub struct CpuPool {
    cores: Vec<SimCpu>,
}

impl CpuPool {
    /// Build a pool of `cores` identical cores from one configuration.
    ///
    /// # Panics
    /// Panics if `cores` is zero — a pool with no cores cannot execute
    /// anything.
    pub fn new(config: CpuConfig, cores: usize) -> Self {
        assert!(cores >= 1, "a CPU pool needs at least one core");
        Self {
            cores: (0..cores).map(|_| SimCpu::new(config.clone())).collect(),
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the pool has no cores (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The configuration the cores were built with.
    pub fn config(&self) -> &CpuConfig {
        self.cores[0].config()
    }

    /// Shared view of every core.
    pub fn cores(&self) -> &[SimCpu] {
        &self.cores
    }

    /// Exclusive view of every core — workers borrow one core each via
    /// `iter_mut`.
    pub fn cores_mut(&mut self) -> &mut [SimCpu] {
        &mut self.cores
    }

    /// Cycles of the busiest core: the wall-clock length of a parallel
    /// region that started with a fresh pool.
    pub fn max_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::cycles).max().unwrap_or(0)
    }

    /// Aggregate cycles across all cores (total work, not wall clock).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::cycles).sum()
    }

    /// Wall-clock milliseconds of the busiest core.
    pub fn max_millis(&self) -> f64 {
        self.max_cycles() as f64 / (self.config().timing.frequency_ghz * 1e6)
    }

    /// Aggregate idle cycles across all cores (gaps a serving scheduler
    /// spent waiting for admissible work, charged via [`SimCpu::idle`]).
    pub fn idle_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::idle_cycles).sum()
    }

    /// Wall-clock length of an *interleaved* serving region as the cores
    /// themselves recorded it: the furthest position any core reached in
    /// executed plus idle cycles. Equals [`CpuPool::max_cycles`] when no
    /// core ever idled. Synthetic charges a caller folds into its own
    /// wall clock (e.g. the serving report's estimator-cycle charges)
    /// are not visible to the cores, so under reoptimization the serving
    /// report's `wall_cycles`/`occupancy` — which include them — are the
    /// serving-accurate figures; these methods stay the hardware view.
    pub fn horizon_cycles(&self) -> u64 {
        self.cores
            .iter()
            .map(SimCpu::horizon_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Occupancy of the pool over the horizon: busy cycles as a fraction
    /// of the total core-cycles available (`horizon × cores`). `1.0` for
    /// a pool that has done nothing at all — an empty region wastes no
    /// capacity.
    pub fn occupancy(&self) -> f64 {
        let horizon = self.horizon_cycles();
        if horizon == 0 {
            return 1.0;
        }
        self.total_cycles() as f64 / (horizon * self.cores.len() as u64) as f64
    }

    /// Counter bank summed across all cores.
    pub fn counters(&self) -> CounterDelta {
        let mut total = CounterDelta::default();
        for core in &self.cores {
            total.accumulate(&CounterDelta(core.counters()));
        }
        total
    }

    /// Per-core counter snapshots, in core order.
    pub fn per_core_counters(&self) -> Vec<Counters> {
        self.cores.iter().map(SimCpu::counters).collect()
    }

    /// Reset every core: caches, predictors, streams and counters.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchSite;

    #[test]
    fn pool_cores_are_independent() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        let cores = pool.cores_mut();
        // Same address on both cores: each hierarchy misses independently.
        cores[0].load(0, 0, 4);
        cores[1].load(0, 0, 4);
        assert_eq!(cores[0].counters().l1_accesses, 1);
        assert_eq!(cores[1].counters().l1_accesses, 1);
        assert_eq!(cores[0].counters().l1_hits, 0);
        assert_eq!(cores[1].counters().l1_hits, 0, "no shared cache state");
    }

    #[test]
    fn max_and_total_cycles() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 3);
        pool.cores_mut()[0].instr(1000);
        pool.cores_mut()[2].instr(4000);
        let per_core: Vec<u64> = pool.cores().iter().map(SimCpu::cycles).collect();
        assert_eq!(pool.max_cycles(), per_core[2]);
        assert_eq!(pool.total_cycles(), per_core.iter().sum::<u64>());
        assert!(pool.max_millis() > 0.0);
    }

    #[test]
    fn counters_aggregate_across_cores() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        pool.cores_mut()[0].branch(BranchSite(0), true);
        pool.cores_mut()[1].branch(BranchSite(0), false);
        let total = pool.counters();
        assert_eq!(total.branches, 2);
        assert_eq!(total.branches_taken, 1);
        assert_eq!(total.branches_not_taken, 1);
    }

    #[test]
    fn occupancy_accounts_idle_gaps() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        assert_eq!(pool.occupancy(), 1.0, "empty pool wastes nothing");
        // Core 0: 1000 instructions of work. Core 1: same work plus an
        // idle gap of equal length — the horizon stretches, occupancy
        // drops below 1.
        pool.cores_mut()[0].instr(1000);
        pool.cores_mut()[1].instr(1000);
        let busy = pool.cores()[0].cycles();
        assert_eq!(pool.horizon_cycles(), busy);
        assert!((pool.occupancy() - 1.0).abs() < 1e-12);
        pool.cores_mut()[1].idle(busy);
        assert_eq!(pool.idle_cycles(), busy);
        assert_eq!(pool.horizon_cycles(), 2 * busy);
        assert!(
            (pool.occupancy() - 0.5).abs() < 1e-12,
            "{}",
            pool.occupancy()
        );
    }

    #[test]
    fn reset_zeroes_every_core() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        pool.cores_mut()[1].instr(10);
        pool.reset();
        assert_eq!(pool.total_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_pool_is_rejected() {
        let _ = CpuPool::new(CpuConfig::tiny_test(), 0);
    }
}
