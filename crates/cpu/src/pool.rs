//! A pool of simulated cores for morsel-driven parallel execution, with
//! an optional **socket model** for the shared last-level cache.
//!
//! Each core is a full [`SimCpu`]: its own private L1/L2, branch
//! predictor, stream state and free-running PMU bank. What cores share
//! depends on the pool's [`LlcMode`]:
//!
//! * [`LlcMode::Private`] — every core keeps the full configured LLC, as
//!   if each sat on its own socket. Right for one query on one core;
//!   optimistic for co-running work (N private LLCs beat one socket).
//! * [`LlcMode::Shared`] — the configured LLC is the *socket's*, and
//!   co-running cores contend for it. Because workers are real threads,
//!   contention is modelled **deterministically** by way-partitioning
//!   rather than by a shared mutable cache: callers declare each core's
//!   hot-set footprint at region boundaries
//!   ([`CpuPool::declare_footprints`]), the pool computes every core's
//!   capacity share with [`partition_llc_ways`] (a pure function of the
//!   declared footprints), and each core's hierarchy is restricted to
//!   its slice. Per-core simulated cycles therefore depend only on the
//!   declared co-runner set — never on host thread scheduling — and
//!   query *results* never depend on cache state at all.
//!
//! The pool's timing view is the one a wall clock would see: the
//! parallel region is as slow as its busiest core ([`CpuPool::max_cycles`]),
//! while [`CpuPool::total_cycles`] is the aggregate work — their ratio is
//! the scaling figure's speedup denominator.

use crate::config::CpuConfig;
use crate::cpu::SimCpu;
use crate::numa::NumaPlacement;
use crate::pmu::{CounterDelta, Counters};

/// How a pool models the last-level cache across its cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlcMode {
    /// Every core keeps the full configured LLC (N independent sockets).
    #[default]
    Private,
    /// One socket: cores contend for the configured LLC capacity via the
    /// deterministic footprint partition.
    Shared,
}

/// Deterministic capacity partition of a shared LLC: split `total_ways`
/// across cores in proportion to their declared hot-set footprints
/// (bytes), by largest-remainder apportionment.
///
/// * A core with footprint zero is not contending; it keeps the full
///   `total_ways` (it runs nothing, so its slice is inert).
/// * A **single** active core keeps the full capacity — an uncontended
///   socket is exactly the private model.
/// * Every active core keeps at least one way, even when that overcommits
///   `total_ways` (more co-runners than ways): the minimum-occupancy
///   floor bounds the pessimism for heavily oversubscribed sockets.
/// * Apportionment is integer arithmetic with ties broken by core index,
///   so the partition is a pure function of the footprint vector.
pub fn partition_llc_ways(total_ways: u32, footprints: &[u64]) -> Vec<u32> {
    assert!(total_ways >= 1, "an LLC has at least one way");
    let mut ways = vec![total_ways; footprints.len()];
    let active: Vec<usize> = (0..footprints.len())
        .filter(|&i| footprints[i] > 0)
        .collect();
    if active.len() <= 1 {
        return ways; // idle pool or lone occupant: full capacity
    }
    let sum: u128 = active.iter().map(|&i| u128::from(footprints[i])).sum();
    // Largest-remainder apportionment over the active cores.
    let mut base: Vec<(usize, u32)> = Vec::with_capacity(active.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(active.len());
    let mut allocated = 0u32;
    for &i in &active {
        let scaled = u128::from(total_ways) * u128::from(footprints[i]);
        let b = (scaled / sum) as u32;
        base.push((i, b));
        remainders.push((scaled % sum, i));
        allocated += b;
    }
    // Hand out the leftover ways by descending remainder (ties: lowest
    // core index first) — deterministic and exact.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total_ways - allocated;
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        let slot = base.iter_mut().find(|(j, _)| *j == i).expect("active core");
        slot.1 += 1;
        leftover -= 1;
    }
    // Minimum-occupancy floor: raise zero allocations to one way, paid
    // for by the largest allocations while any can still give.
    while let Some(zero) = base.iter().position(|&(_, w)| w == 0) {
        if let Some(donor) = base
            .iter()
            .enumerate()
            .filter(|(_, &(_, w))| w > 1)
            .max_by_key(|(k, &(_, w))| (w, usize::MAX - k))
            .map(|(k, _)| k)
        {
            base[donor].1 -= 1;
        }
        base[zero].1 = 1;
    }
    for (i, w) in base {
        ways[i] = w;
    }
    ways
}

/// A fixed-size pool of simulated cores split into one or more sockets.
///
/// With `sockets == 1` (the [`CpuPool::new`] / [`CpuPool::new_shared`] /
/// [`CpuPool::with_mode`] constructors) the pool is exactly the flat
/// single-socket pool of earlier revisions: every access is local and
/// the shared-LLC partition spans all cores. [`CpuPool::with_topology`]
/// splits the cores into contiguous socket blocks (`socket_of(c) =
/// c * sockets / cores`): each socket then carries its *own* LLC
/// partition over its members, and cores pay the remote surcharge for
/// lines whose [`NumaPlacement`] home differs from their socket.
#[derive(Debug, Clone)]
pub struct CpuPool {
    cores: Vec<SimCpu>,
    mode: LlcMode,
    /// Number of sockets the cores are split across (contiguous blocks).
    sockets: usize,
    /// Most recently declared per-core hot-set footprints (bytes).
    footprints: Vec<u64>,
}

impl CpuPool {
    /// Build a pool of `cores` identical cores from one configuration,
    /// with private (per-core) LLCs — the historical model.
    ///
    /// # Panics
    /// Panics if `cores` is zero — a pool with no cores cannot execute
    /// anything.
    pub fn new(config: CpuConfig, cores: usize) -> Self {
        Self::with_mode(config, cores, LlcMode::Private)
    }

    /// Build a single-socket pool whose cores share the configured LLC
    /// under the deterministic capacity partition.
    pub fn new_shared(config: CpuConfig, cores: usize) -> Self {
        Self::with_mode(config, cores, LlcMode::Shared)
    }

    /// Build a single-socket pool with an explicit [`LlcMode`].
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn with_mode(config: CpuConfig, cores: usize, mode: LlcMode) -> Self {
        Self::with_topology(config, cores, mode, 1)
    }

    /// Build a pool of `cores` split across `sockets` contiguous socket
    /// blocks. With more than one socket every core starts on the
    /// line-interleaved [`NumaPlacement`] (the OS-default round-robin);
    /// use [`CpuPool::set_placement`] to home specific ranges.
    ///
    /// # Panics
    /// Panics if `cores` is zero or `sockets` is not in `1..=cores`.
    pub fn with_topology(config: CpuConfig, cores: usize, mode: LlcMode, sockets: usize) -> Self {
        assert!(cores >= 1, "a CPU pool needs at least one core");
        assert!(
            (1..=cores).contains(&sockets),
            "sockets must be in 1..=cores"
        );
        let mut pool = Self {
            cores: (0..cores).map(|_| SimCpu::new(config.clone())).collect(),
            mode,
            sockets,
            footprints: vec![0; cores],
        };
        if sockets > 1 {
            let placement = NumaPlacement::interleaved(sockets);
            for (c, core) in pool.cores.iter_mut().enumerate() {
                core.set_socket(c * sockets / cores);
                core.set_placement(placement.clone());
            }
        }
        pool
    }

    /// The pool's LLC model.
    pub fn llc_mode(&self) -> LlcMode {
        self.mode
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Socket of core `c`: cores are split into contiguous blocks, so
    /// `socket_of(c) = c * sockets / cores` (block sizes differ by at
    /// most one). A pure function of the topology — never of scheduling.
    pub fn socket_of(&self, core: usize) -> usize {
        core * self.sockets / self.cores.len()
    }

    /// Cores belonging to `socket`, in core order.
    pub fn socket_members(&self, socket: usize) -> Vec<usize> {
        (0..self.cores.len())
            .filter(|&c| self.socket_of(c) == socket)
            .collect()
    }

    /// Install one [`NumaPlacement`] on every core (the placement is the
    /// machine's memory map, shared by all cores).
    ///
    /// # Panics
    /// Panics if the placement's socket count differs from the pool's.
    pub fn set_placement(&mut self, placement: &NumaPlacement) {
        assert_eq!(
            placement.sockets(),
            self.sockets,
            "placement sockets must match pool sockets"
        );
        for core in &mut self.cores {
            core.set_placement(placement.clone());
        }
    }

    /// Declare each core's hot-set footprint (bytes of data the work it
    /// is about to run wants resident in the LLC) and, in shared mode,
    /// repartition each *socket's* capacity among its members — each
    /// core's slice is restricted to its share before the region starts,
    /// so per-core cycles stay a pure function of the declared co-runner
    /// set. Sockets partition independently: a core only ever contends
    /// with its own socket's members. A no-op on a private pool (every
    /// core already has the full LLC).
    ///
    /// # Panics
    /// Panics if `footprints.len()` differs from the core count.
    pub fn declare_footprints(&mut self, footprints: &[u64]) {
        assert_eq!(footprints.len(), self.cores.len(), "one footprint per core");
        self.footprints = footprints.to_vec();
        if self.mode != LlcMode::Shared {
            return;
        }
        let total_ways = self.config().llc().ways;
        for s in 0..self.sockets {
            let members = self.socket_members(s);
            let local: Vec<u64> = members.iter().map(|&c| footprints[c]).collect();
            let shares = partition_llc_ways(total_ways, &local);
            for (&c, ways) in members.iter().zip(shares) {
                self.cores[c].set_llc_ways(ways as usize);
            }
        }
    }

    /// Effective LLC capacity in bytes of one core's slice.
    pub fn effective_llc_bytes(&self, core: usize) -> u64 {
        self.cores[core].llc_effective_bytes()
    }

    /// The smallest LLC slice across the pool — the conservative capacity
    /// a pool-wide cost estimate should price against.
    pub fn min_effective_llc_bytes(&self) -> u64 {
        self.cores
            .iter()
            .map(SimCpu::llc_effective_bytes)
            .min()
            .expect("a pool has at least one core")
    }

    /// The smallest LLC slice among `socket`'s members — the capacity a
    /// per-socket cost estimate prices against.
    pub fn min_effective_llc_bytes_socket(&self, socket: usize) -> u64 {
        self.socket_members(socket)
            .into_iter()
            .map(|c| self.cores[c].llc_effective_bytes())
            .min()
            .expect("every socket has at least one core")
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the pool has no cores (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The configuration the cores were built with.
    pub fn config(&self) -> &CpuConfig {
        self.cores[0].config()
    }

    /// Shared view of every core.
    pub fn cores(&self) -> &[SimCpu] {
        &self.cores
    }

    /// Exclusive view of every core — workers borrow one core each via
    /// `iter_mut`.
    pub fn cores_mut(&mut self) -> &mut [SimCpu] {
        &mut self.cores
    }

    /// Cycles of the busiest core: the wall-clock length of a parallel
    /// region that started with a fresh pool.
    pub fn max_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::cycles).max().unwrap_or(0)
    }

    /// Aggregate cycles across all cores (total work, not wall clock).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::cycles).sum()
    }

    /// Wall-clock milliseconds of the busiest core.
    pub fn max_millis(&self) -> f64 {
        self.max_cycles() as f64 / (self.config().timing.frequency_ghz * 1e6)
    }

    /// Aggregate idle cycles across all cores (gaps a serving scheduler
    /// spent waiting for admissible work, charged via [`SimCpu::idle`]).
    pub fn idle_cycles(&self) -> u64 {
        self.cores.iter().map(SimCpu::idle_cycles).sum()
    }

    /// Wall-clock length of an *interleaved* serving region as the cores
    /// themselves recorded it: the furthest position any core reached in
    /// executed plus idle cycles. Equals [`CpuPool::max_cycles`] when no
    /// core ever idled. Synthetic charges a caller folds into its own
    /// wall clock (e.g. the serving report's estimator-cycle charges)
    /// are not visible to the cores, so under reoptimization the serving
    /// report's `wall_cycles`/`occupancy` — which include them — are the
    /// serving-accurate figures; these methods stay the hardware view.
    pub fn horizon_cycles(&self) -> u64 {
        self.cores
            .iter()
            .map(SimCpu::horizon_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Occupancy of the pool over the horizon: busy cycles as a fraction
    /// of the total core-cycles available (`horizon × cores`). `1.0` for
    /// a pool that has done nothing at all — an empty region wastes no
    /// capacity.
    pub fn occupancy(&self) -> f64 {
        let horizon = self.horizon_cycles();
        if horizon == 0 {
            return 1.0;
        }
        self.total_cycles() as f64 / (horizon * self.cores.len() as u64) as f64
    }

    /// Total remote-socket memory accesses across all cores (zero on a
    /// single-socket pool).
    pub fn remote_accesses(&self) -> u64 {
        self.cores.iter().map(SimCpu::remote_accesses).sum()
    }

    /// Remote accesses as a percentage of all memory-served accesses
    /// pool-wide (`0.0` when nothing reached memory).
    pub fn remote_access_pct(&self) -> f64 {
        let mem = self.counters().0.memory_accesses;
        if mem == 0 {
            return 0.0;
        }
        self.remote_accesses() as f64 / mem as f64 * 100.0
    }

    /// Counter bank summed across all cores.
    pub fn counters(&self) -> CounterDelta {
        let mut total = CounterDelta::default();
        for core in &self.cores {
            total.accumulate(&CounterDelta(core.counters()));
        }
        total
    }

    /// Per-core counter snapshots, in core order.
    pub fn per_core_counters(&self) -> Vec<Counters> {
        self.cores.iter().map(SimCpu::counters).collect()
    }

    /// Reset every core: caches, predictors, streams and counters.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchSite;

    #[test]
    fn pool_cores_are_independent() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        let cores = pool.cores_mut();
        // Same address on both cores: each hierarchy misses independently.
        cores[0].load(0, 0, 4);
        cores[1].load(0, 0, 4);
        assert_eq!(cores[0].counters().l1_accesses, 1);
        assert_eq!(cores[1].counters().l1_accesses, 1);
        assert_eq!(cores[0].counters().l1_hits, 0);
        assert_eq!(cores[1].counters().l1_hits, 0, "no shared cache state");
    }

    #[test]
    fn max_and_total_cycles() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 3);
        pool.cores_mut()[0].instr(1000);
        pool.cores_mut()[2].instr(4000);
        let per_core: Vec<u64> = pool.cores().iter().map(SimCpu::cycles).collect();
        assert_eq!(pool.max_cycles(), per_core[2]);
        assert_eq!(pool.total_cycles(), per_core.iter().sum::<u64>());
        assert!(pool.max_millis() > 0.0);
    }

    #[test]
    fn counters_aggregate_across_cores() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        pool.cores_mut()[0].branch(BranchSite(0), true);
        pool.cores_mut()[1].branch(BranchSite(0), false);
        let total = pool.counters();
        assert_eq!(total.branches, 2);
        assert_eq!(total.branches_taken, 1);
        assert_eq!(total.branches_not_taken, 1);
    }

    #[test]
    fn occupancy_accounts_idle_gaps() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        assert_eq!(pool.occupancy(), 1.0, "empty pool wastes nothing");
        // Core 0: 1000 instructions of work. Core 1: same work plus an
        // idle gap of equal length — the horizon stretches, occupancy
        // drops below 1.
        pool.cores_mut()[0].instr(1000);
        pool.cores_mut()[1].instr(1000);
        let busy = pool.cores()[0].cycles();
        assert_eq!(pool.horizon_cycles(), busy);
        assert!((pool.occupancy() - 1.0).abs() < 1e-12);
        pool.cores_mut()[1].idle(busy);
        assert_eq!(pool.idle_cycles(), busy);
        assert_eq!(pool.horizon_cycles(), 2 * busy);
        assert!(
            (pool.occupancy() - 0.5).abs() < 1e-12,
            "{}",
            pool.occupancy()
        );
    }

    #[test]
    fn reset_zeroes_every_core() {
        let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
        pool.cores_mut()[1].instr(10);
        pool.reset();
        assert_eq!(pool.total_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_pool_is_rejected() {
        let _ = CpuPool::new(CpuConfig::tiny_test(), 0);
    }

    #[test]
    fn partition_gives_lone_and_idle_cores_full_capacity() {
        // Idle pool: nothing contends.
        assert_eq!(partition_llc_ways(16, &[0, 0, 0]), vec![16, 16, 16]);
        // A single active core keeps the whole socket (the 1-core =
        // full-capacity edge case), idle peers stay inert at full ways.
        assert_eq!(partition_llc_ways(16, &[0, 4096, 0]), vec![16, 16, 16]);
        assert_eq!(partition_llc_ways(16, &[1 << 30]), vec![16]);
    }

    #[test]
    fn partition_splits_equal_footprints_evenly() {
        assert_eq!(partition_llc_ways(16, &[100, 100, 100, 100]), vec![4; 4]);
        assert_eq!(partition_llc_ways(16, &[7, 7]), vec![8, 8]);
        // Non-divisible ways: largest remainder, ties to the lowest index.
        assert_eq!(partition_llc_ways(16, &[1, 1, 1]), vec![6, 5, 5]);
    }

    #[test]
    fn partition_is_proportional_to_footprints() {
        // 3:1 footprints over 16 ways -> 12:4.
        assert_eq!(partition_llc_ways(16, &[3 << 20, 1 << 20]), vec![12, 4]);
        // A dominant co-runner squeezes the small one, but never to zero.
        let shares = partition_llc_ways(16, &[1 << 30, 4096]);
        assert_eq!(shares[1], 1, "minimum-occupancy floor");
        assert_eq!(shares[0], 15, "the donor pays for the floor");
    }

    #[test]
    fn partition_overcommits_at_one_way_when_oversubscribed() {
        // More active cores than ways: everyone keeps the one-way floor.
        let shares = partition_llc_ways(2, &[5, 5, 5, 5]);
        assert_eq!(shares, vec![1, 1, 1, 1]);
    }

    #[test]
    fn shared_pool_partitions_slices_and_private_pool_does_not() {
        let cfg = CpuConfig::tiny_test(); // 16 KiB LLC, 4 ways
        let full = cfg.llc().capacity_bytes;
        let mut private = CpuPool::new(cfg.clone(), 2);
        private.declare_footprints(&[1 << 20, 1 << 20]);
        assert_eq!(private.llc_mode(), LlcMode::Private);
        assert_eq!(private.effective_llc_bytes(0), full);
        assert_eq!(private.min_effective_llc_bytes(), full);

        let mut shared = CpuPool::new_shared(cfg, 2);
        assert_eq!(shared.llc_mode(), LlcMode::Shared);
        assert_eq!(shared.effective_llc_bytes(0), full, "unclaimed = full");
        shared.declare_footprints(&[1 << 20, 1 << 20]);
        assert_eq!(shared.effective_llc_bytes(0), full / 2);
        assert_eq!(shared.effective_llc_bytes(1), full / 2);
        assert_eq!(shared.min_effective_llc_bytes(), full / 2);
        // Re-declaring with a lone occupant re-widens back to the socket.
        shared.declare_footprints(&[1 << 20, 0]);
        assert_eq!(shared.effective_llc_bytes(0), full);
    }

    #[test]
    fn topology_splits_cores_into_contiguous_blocks() {
        let pool = CpuPool::with_topology(CpuConfig::tiny_test(), 4, LlcMode::Shared, 2);
        assert_eq!(pool.sockets(), 2);
        assert_eq!(pool.socket_of(0), 0);
        assert_eq!(pool.socket_of(1), 0);
        assert_eq!(pool.socket_of(2), 1);
        assert_eq!(pool.socket_of(3), 1);
        assert_eq!(pool.socket_members(0), vec![0, 1]);
        assert_eq!(pool.socket_members(1), vec![2, 3]);
        // Odd split: block sizes differ by at most one.
        let odd = CpuPool::with_topology(CpuConfig::tiny_test(), 3, LlcMode::Private, 2);
        assert_eq!(odd.socket_members(0), vec![0, 1]);
        assert_eq!(odd.socket_members(1), vec![2]);
        // Single-socket constructors stay flat and placement-free.
        let flat = CpuPool::new_shared(CpuConfig::tiny_test(), 4);
        assert_eq!(flat.sockets(), 1);
        assert_eq!(flat.cores()[3].placement().sockets(), 1);
    }

    #[test]
    #[should_panic(expected = "sockets must be in 1..=cores")]
    fn more_sockets_than_cores_is_rejected() {
        let _ = CpuPool::with_topology(CpuConfig::tiny_test(), 2, LlcMode::Shared, 3);
    }

    #[test]
    fn sockets_partition_llc_independently() {
        // 4 cores on 2 sockets, shared LLC: socket 0 has two contenders
        // (half the ways each), socket 1 a lone occupant (full capacity).
        let cfg = CpuConfig::tiny_test();
        let full = cfg.llc().capacity_bytes;
        let mut pool = CpuPool::with_topology(cfg, 4, LlcMode::Shared, 2);
        pool.declare_footprints(&[1 << 20, 1 << 20, 1 << 20, 0]);
        assert_eq!(pool.effective_llc_bytes(0), full / 2);
        assert_eq!(pool.effective_llc_bytes(1), full / 2);
        assert_eq!(pool.effective_llc_bytes(2), full, "lone on its socket");
        assert_eq!(pool.min_effective_llc_bytes_socket(0), full / 2);
        assert_eq!(pool.min_effective_llc_bytes_socket(1), full);
        assert_eq!(pool.min_effective_llc_bytes(), full / 2);
    }

    #[test]
    fn pool_counts_remote_accesses_under_a_pinned_placement() {
        let cfg = CpuConfig::tiny_test();
        let mut pool = CpuPool::with_topology(cfg, 2, LlcMode::Private, 2);
        let mut placement = NumaPlacement::interleaved(2);
        placement.register(0, 1 << 20, 0); // whole range homed on socket 0
        pool.set_placement(&placement);
        // Both cores stride through the socket-0 range: core 0 is local,
        // core 1 (socket 1) is 100% remote.
        for c in 0..2 {
            let core = &mut pool.cores_mut()[c];
            for i in 0..200u64 {
                core.load(0, (i * 7 % 200) * 512, 4);
            }
        }
        assert_eq!(pool.cores()[0].remote_accesses(), 0);
        assert!(pool.cores()[1].remote_accesses() > 0);
        assert!(pool.remote_access_pct() > 0.0);
        assert!(pool.cores()[1].cycles() > pool.cores()[0].cycles());
    }

    #[test]
    fn contended_core_pays_more_for_the_same_accesses() {
        // The same working set re-scanned on an uncontended core vs a core
        // whose slice was halved: the contended core must stall more.
        // 128 even lines (128-byte stride): 4 lines per even LLC set —
        // exactly the tiny config's 4 ways, so the set fits the full
        // slice and cyclically thrashes a halved one. Buddy prefetches
        // target odd lines, i.e. odd sets, and cannot disturb the
        // resident working set.
        let cfg = CpuConfig::tiny_test();
        let run = |pool: &mut CpuPool| {
            let core = &mut pool.cores_mut()[0];
            for _round in 0..4u64 {
                for l in 0..128u64 {
                    core.load(0, l * 128, 4);
                }
            }
            core.cycles()
        };
        let mut private = CpuPool::new(cfg.clone(), 2);
        private.declare_footprints(&[128 * 64, 128 * 64]);
        let uncontended = run(&mut private);
        let mut shared = CpuPool::new_shared(cfg, 2);
        shared.declare_footprints(&[128 * 64, 128 * 64]);
        let contended = run(&mut shared);
        assert!(
            contended > uncontended,
            "contended {contended} !> uncontended {uncontended}"
        );
    }
}
