//! Static configuration of the simulated microarchitecture.
//!
//! Presets mirror the machines of the paper's evaluation: the Ivy-Bridge
//! Xeon E5-2630 v2 testbed (Section 5.1) plus the Nehalem / Sandy-Bridge /
//! Broadwell / AMD comparison points of Figures 3 and 6. On the simulator
//! the microarchitectures differ in their *predictor automaton* (state
//! count, history) and cache geometry — exactly the degrees of freedom the
//! paper's models are sensitive to.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes (e.g. `32 * 1024` for a 32 KiB L1).
    pub capacity_bytes: u64,
    /// Cache line size in bytes. All levels must share one line size.
    pub line_bytes: u64,
    /// Associativity (ways per set). Must divide `capacity_bytes / line_bytes`.
    pub ways: u32,
    /// Extra cycles charged when a demand access *hits* at this level.
    pub hit_latency_cycles: u64,
}

impl CacheLevelConfig {
    /// Number of cache lines this level can hold (the `#i` of Equation 1).
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / u64::from(self.ways)
    }
}

/// Configuration of the branch prediction unit.
///
/// The predictor is a table of n-state saturating counters. With
/// `history_bits == 0` it degenerates to one automaton per branch site —
/// the exact process modelled by the paper's Markov chain. With history
/// bits it behaves like a gshare predictor: on i.i.d. inputs each history
/// bucket sees the same Bernoulli stream (so the Markov model still holds
/// statistically), while on sorted/run-structured inputs it predicts almost
/// perfectly, which is the behaviour Section 5.4 relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Total automaton states (2–16 supported; the paper studies 2–8).
    pub states: u8,
    /// States that predict *not taken* (the rest predict taken).
    /// `states / 2` is the even split of the paper's 2/4/6/8-state chains;
    /// `states / 2 + 1` gives the `+1NT` variants of Figure 3.
    pub not_taken_states: u8,
    /// Global history length in bits (0 = pure per-site automaton).
    pub history_bits: u8,
    /// log2 of the prediction table size.
    pub table_bits: u8,
}

impl PredictorConfig {
    /// An n-state automaton with an even (or `+1T`/`+1NT`) split and no
    /// history — the configuration the Markov model of Section 3.2
    /// describes exactly.
    pub fn automaton(states: u8, not_taken_states: u8) -> Self {
        Self {
            states,
            not_taken_states,
            history_bits: 0,
            table_bits: 12,
        }
    }
}

/// Cycle-accounting constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Average cycles per retired instruction absent stalls (superscalar
    /// cores retire several instructions per cycle).
    pub cycles_per_instruction: f64,
    /// Pipeline flush penalty per mispredicted branch.
    pub mispredict_penalty_cycles: u64,
    /// Extra cycles for a demand miss that is served by main memory with a
    /// *random* access pattern.
    pub memory_random_cycles: u64,
    /// Extra cycles for a demand miss served by memory while the access
    /// stream is sequential (prefetch/bandwidth bound rather than latency
    /// bound).
    pub memory_sequential_cycles: u64,
    /// Surcharge for a demand miss served by a *remote* socket's memory
    /// (the NUMA hop). Charged in full on random misses; sequential
    /// (bandwidth-bound) streams pay a quarter, mirroring how the
    /// prefetcher hides most of the extra latency on linear scans.
    pub memory_remote_extra_cycles: u64,
    /// Core frequency, used to convert cycles to wall-clock milliseconds.
    pub frequency_ghz: f64,
}

/// Full description of a simulated CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Human-readable microarchitecture name (shows up in figure output).
    pub name: &'static str,
    /// Cache levels ordered from L1 to last-level.
    pub levels: Vec<CacheLevelConfig>,
    /// Branch prediction unit.
    pub predictor: PredictorConfig,
    /// Cycle accounting constants.
    pub timing: TimingConfig,
    /// Whether the adjacent-line (spatial) prefetcher is enabled.
    pub adjacent_line_prefetch: bool,
}

impl CpuConfig {
    fn base(
        name: &'static str,
        l3_bytes: u64,
        predictor: PredictorConfig,
        frequency_ghz: f64,
    ) -> Self {
        let line = 64;
        Self {
            name,
            levels: vec![
                CacheLevelConfig {
                    capacity_bytes: 32 * 1024,
                    line_bytes: line,
                    ways: 8,
                    hit_latency_cycles: 0,
                },
                CacheLevelConfig {
                    capacity_bytes: 256 * 1024,
                    line_bytes: line,
                    ways: 8,
                    hit_latency_cycles: 10,
                },
                CacheLevelConfig {
                    capacity_bytes: l3_bytes,
                    line_bytes: line,
                    ways: 16,
                    hit_latency_cycles: 30,
                },
            ],
            predictor,
            timing: TimingConfig {
                cycles_per_instruction: 0.5,
                mispredict_penalty_cycles: 15,
                memory_random_cycles: 180,
                memory_sequential_cycles: 24,
                memory_remote_extra_cycles: 90,
                frequency_ghz,
            },
            adjacent_line_prefetch: true,
        }
    }

    /// The paper's testbed: Intel Xeon E5-2630 v2 (Ivy Bridge EP), 2.6 GHz,
    /// 32 KiB L1d / 256 KiB L2 per core, 15 MiB shared L3 (Section 5.1).
    pub fn xeon_e5_2630_v2() -> Self {
        Self::base(
            "Xeon E5-2630 v2 (Ivy Bridge EP)",
            15 * 1024 * 1024,
            PredictorConfig {
                states: 6,
                not_taken_states: 3,
                history_bits: 8,
                table_bits: 12,
            },
            2.6,
        )
    }

    /// Ivy Bridge client analogue: six-state automaton — the configuration
    /// the paper's six-state Markov chain matches "almost exactly" (Fig. 3).
    pub fn ivy_bridge() -> Self {
        Self::base(
            "Ivy Bridge",
            8 * 1024 * 1024,
            PredictorConfig {
                states: 6,
                not_taken_states: 3,
                history_bits: 8,
                table_bits: 12,
            },
            2.6,
        )
    }

    /// Sandy Bridge analogue — same branching behaviour as Ivy Bridge
    /// (Zeuch et al. [23] report no change across Sandy/Ivy/Haswell).
    pub fn sandy_bridge() -> Self {
        let mut c = Self::base(
            "Sandy Bridge",
            8 * 1024 * 1024,
            PredictorConfig {
                states: 6,
                not_taken_states: 3,
                history_bits: 8,
                table_bits: 12,
            },
            2.6,
        );
        c.timing.mispredict_penalty_cycles = 17;
        c
    }

    /// Broadwell analogue — six-state behaviour with a slightly larger
    /// prediction table.
    pub fn broadwell() -> Self {
        Self::base(
            "Broadwell",
            8 * 1024 * 1024,
            PredictorConfig {
                states: 6,
                not_taken_states: 3,
                history_bits: 10,
                table_bits: 13,
            },
            2.6,
        )
    }

    /// Nehalem analogue: the oldest microarchitecture in Figure 6, which
    /// "partially differs" from the six-state prediction — modelled with a
    /// classic 2-bit (four-state) automaton and short history.
    pub fn nehalem() -> Self {
        Self::base(
            "Nehalem",
            8 * 1024 * 1024,
            PredictorConfig {
                states: 4,
                not_taken_states: 2,
                history_bits: 4,
                table_bits: 12,
            },
            2.6,
        )
    }

    /// AMD analogue: the paper observes the most precise predictions with a
    /// four-state chain on AMD CPUs.
    pub fn amd() -> Self {
        Self::base(
            "AMD (4-state)",
            8 * 1024 * 1024,
            PredictorConfig {
                states: 4,
                not_taken_states: 2,
                history_bits: 0,
                table_bits: 12,
            },
            2.6,
        )
    }

    /// A small configuration for fast unit tests (tiny caches, no history).
    pub fn tiny_test() -> Self {
        let line = 64;
        Self {
            name: "tiny-test",
            levels: vec![
                CacheLevelConfig {
                    capacity_bytes: 1024,
                    line_bytes: line,
                    ways: 2,
                    hit_latency_cycles: 0,
                },
                CacheLevelConfig {
                    capacity_bytes: 4096,
                    line_bytes: line,
                    ways: 4,
                    hit_latency_cycles: 10,
                },
                CacheLevelConfig {
                    capacity_bytes: 16384,
                    line_bytes: line,
                    ways: 4,
                    hit_latency_cycles: 30,
                },
            ],
            predictor: PredictorConfig::automaton(6, 3),
            timing: TimingConfig {
                cycles_per_instruction: 0.5,
                mispredict_penalty_cycles: 15,
                memory_random_cycles: 180,
                memory_sequential_cycles: 24,
                memory_remote_extra_cycles: 90,
                frequency_ghz: 2.6,
            },
            adjacent_line_prefetch: true,
        }
    }

    /// Line size shared by all levels.
    pub fn line_bytes(&self) -> u64 {
        self.levels[0].line_bytes
    }

    /// The last-level cache configuration.
    pub fn llc(&self) -> &CacheLevelConfig {
        self.levels.last().expect("at least one cache level")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometry_matches_testbed() {
        let c = CpuConfig::xeon_e5_2630_v2();
        assert_eq!(c.levels.len(), 3);
        assert_eq!(c.levels[0].capacity_bytes, 32 * 1024);
        assert_eq!(c.levels[1].capacity_bytes, 256 * 1024);
        assert_eq!(c.levels[2].capacity_bytes, 15 * 1024 * 1024);
        assert_eq!(c.line_bytes(), 64);
        assert!((c.timing.frequency_ghz - 2.6).abs() < 1e-9);
    }

    #[test]
    fn level_line_and_set_counts() {
        let l = CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        };
        assert_eq!(l.lines(), 512);
        assert_eq!(l.sets(), 64);
    }

    #[test]
    fn automaton_preset_has_no_history() {
        let p = PredictorConfig::automaton(6, 3);
        assert_eq!(p.history_bits, 0);
        assert_eq!(p.states, 6);
        assert_eq!(p.not_taken_states, 3);
    }

    #[test]
    fn microarch_presets_differ_in_predictor() {
        assert_ne!(
            CpuConfig::nehalem().predictor,
            CpuConfig::ivy_bridge().predictor
        );
        assert_eq!(CpuConfig::amd().predictor.states, 4);
        assert_eq!(CpuConfig::ivy_bridge().predictor.states, 6);
    }
}
