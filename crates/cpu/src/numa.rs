//! Socket topology and memory homing: which socket owns a cache line.
//!
//! A [`NumaPlacement`] maps simulated address ranges to their *home*
//! socket. Cores carry their own socket id; a demand miss served by
//! memory whose home differs from the executing core's socket pays the
//! remote surcharge (`TimingConfig::memory_remote_extra_cycles`).
//!
//! Determinism argument: the placement is immutable while a region
//! executes and is a pure function of (address, registered regions,
//! socket count) — never of host thread timing — so per-core simulated
//! cycles on an N-socket pool reproduce on any machine, exactly like the
//! LLC way partition. Address ranges not covered by any registered
//! region default to line-interleaved homing (`line % sockets`), the
//! OS-default round-robin page placement.

/// One registered home region: `[start, end)` in simulated byte
/// addresses, owned by `socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    start: u64,
    end: u64,
    socket: usize,
}

/// A maximal contiguous byte range homed on one socket (see
/// [`NumaPlacement::segment_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeSegment {
    /// Inclusive start byte address.
    pub start: u64,
    /// Exclusive end byte address.
    pub end: u64,
    /// Home socket of every line in the range.
    pub socket: usize,
}

/// Address-range → home-socket map for an N-socket pool.
///
/// With `sockets <= 1` every access is local and the placement is inert
/// — a 1-socket pool is bit-identical to the flat (pre-NUMA) pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaPlacement {
    sockets: usize,
    regions: Vec<Region>,
}

impl Default for NumaPlacement {
    fn default() -> Self {
        Self::single()
    }
}

impl NumaPlacement {
    /// The single-socket placement: nothing is ever remote.
    pub fn single() -> Self {
        Self {
            sockets: 1,
            regions: Vec::new(),
        }
    }

    /// An N-socket placement with no registered regions: every line is
    /// homed by interleave (`line % sockets`).
    pub fn interleaved(sockets: usize) -> Self {
        assert!(sockets >= 1, "at least one socket");
        Self {
            sockets,
            regions: Vec::new(),
        }
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Home the byte range `[start, start + bytes)` on `socket`. Later
    /// registrations win on overlap (they are consulted first), so a
    /// caller can pin a sub-range out of a larger region.
    pub fn register(&mut self, start: u64, bytes: u64, socket: usize) {
        assert!(socket < self.sockets, "socket out of range");
        self.regions.push(Region {
            start,
            end: start + bytes,
            socket,
        });
    }

    /// Home socket of the byte address `addr`: the most recently
    /// registered covering region, else line-interleaved.
    pub fn socket_of_addr(&self, addr: u64, line_bytes: u64) -> usize {
        for r in self.regions.iter().rev() {
            if addr >= r.start && addr < r.end {
                return r.socket;
            }
        }
        ((addr / line_bytes) % self.sockets as u64) as usize
    }

    /// The maximal contiguous byte range around `addr` that is homed on a
    /// single socket — the granularity at which the batched fast path
    /// prices remote surcharges (one segment lookup per contiguous
    /// home-range instead of one region scan per line).
    ///
    /// Invariant (pinned by tests): for every line-aligned address in the
    /// returned `[start, end)`, [`NumaPlacement::socket_of_addr`] equals
    /// the returned socket. A registered-region winner is clipped by any
    /// later-registered (higher-precedence) overlapping region; an
    /// interleaved address yields a single-line segment (homing alternates
    /// per line).
    pub fn segment_of(&self, addr: u64, line_bytes: u64) -> HomeSegment {
        let mut winner = None;
        for (i, r) in self.regions.iter().enumerate().rev() {
            if addr >= r.start && addr < r.end {
                winner = Some((i, *r));
                break;
            }
        }
        match winner {
            Some((i, r)) => {
                let mut start = r.start;
                let mut end = r.end;
                // Later registrations override on overlap: clip the
                // segment so no higher-precedence region intrudes.
                for later in &self.regions[i + 1..] {
                    if later.start > addr {
                        end = end.min(later.start);
                    } else if later.end <= addr {
                        start = start.max(later.end);
                    }
                    // A later region containing `addr` is impossible:
                    // `i` was the last containing region.
                }
                HomeSegment {
                    start,
                    end,
                    socket: r.socket,
                }
            }
            None => {
                let line = addr / line_bytes;
                let start = line * line_bytes;
                let mut end = start + line_bytes;
                // A region starting inside this line would change the
                // homing of later addresses in it.
                for r in &self.regions {
                    if r.start > addr && r.start < end {
                        end = r.start;
                    }
                }
                HomeSegment {
                    start,
                    end,
                    socket: (line % self.sockets as u64) as usize,
                }
            }
        }
    }

    /// Fraction of the byte range `[start, start + bytes)` homed on a
    /// socket *other* than `socket` — the Equation-1 remote fraction of a
    /// probe into that range. Sampled per line, exact for registered
    /// regions and for the default interleave.
    pub fn remote_fraction(&self, start: u64, bytes: u64, socket: usize, line_bytes: u64) -> f64 {
        if self.sockets <= 1 || bytes == 0 {
            return 0.0;
        }
        let first = start / line_bytes;
        let last = (start + bytes - 1) / line_bytes;
        let lines = last - first + 1;
        let mut remote = 0u64;
        for line in first..=last {
            if self.socket_of_addr(line * line_bytes, line_bytes) != socket {
                remote += 1;
            }
        }
        remote as f64 / lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_is_never_remote() {
        let p = NumaPlacement::single();
        assert_eq!(p.sockets(), 1);
        assert_eq!(p.socket_of_addr(0, 64), 0);
        assert_eq!(p.socket_of_addr(123_456, 64), 0);
        assert_eq!(p.remote_fraction(0, 1 << 20, 0, 64), 0.0);
    }

    #[test]
    fn unregistered_lines_interleave() {
        let p = NumaPlacement::interleaved(2);
        assert_eq!(p.socket_of_addr(0, 64), 0);
        assert_eq!(p.socket_of_addr(64, 64), 1);
        assert_eq!(p.socket_of_addr(128, 64), 0);
        let f = p.remote_fraction(0, 64 * 1000, 0, 64);
        assert!((f - 0.5).abs() < 1e-9, "interleave is half remote: {f}");
    }

    #[test]
    fn registered_regions_override_interleave_latest_wins() {
        let mut p = NumaPlacement::interleaved(2);
        p.register(0, 4096, 1);
        assert_eq!(p.socket_of_addr(0, 64), 1);
        assert_eq!(p.socket_of_addr(4095, 64), 1);
        // Past the region: back to interleave.
        assert_eq!(p.socket_of_addr(4096, 64), 0);
        // A later registration of a sub-range wins.
        p.register(0, 1024, 0);
        assert_eq!(p.socket_of_addr(0, 64), 0);
        assert_eq!(p.socket_of_addr(1024, 64), 1);
        assert_eq!(p.remote_fraction(0, 1024, 0, 64), 0.0);
        assert_eq!(p.remote_fraction(1024, 1024, 0, 64), 1.0);
    }
}
