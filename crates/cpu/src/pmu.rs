//! The performance monitoring unit: a bank of free-running counters.
//!
//! Mirrors the counters the paper samples (Section 2.2): conditional
//! branches split into taken / not taken, mispredictions split by actual
//! direction, cache accesses and misses per level, plus retired
//! instructions and core cycles. Counters are free-running; consumers take
//! [`Counters`] snapshots and subtract them — exactly how `perf`-style
//! sampling works, and what the progressive optimizer does per vector.

/// A snapshot of every architectural counter.
///
/// Naming follows the paper: `mp_taken` counts branches that *were taken*
/// but predicted not-taken (the paper's "mispredicted branches taken",
/// `BTakMP`), and `mp_not_taken` the converse (`BNotTakMP`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired instructions (generic work units).
    pub instructions: u64,
    /// Core cycles, including stall and penalty cycles.
    pub cycles: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches whose outcome was "taken".
    pub branches_taken: u64,
    /// Conditional branches whose outcome was "not taken".
    pub branches_not_taken: u64,
    /// Taken branches that were mispredicted (predicted not-taken).
    pub mp_taken: u64,
    /// Not-taken branches that were mispredicted (predicted taken).
    pub mp_not_taken: u64,
    /// L1 data-cache lookups (per cache line in the scan fast path; within-
    /// line element accesses are counted by `l1_element_hits`).
    pub l1_accesses: u64,
    /// L1 lookups that hit.
    pub l1_hits: u64,
    /// Element-granularity accesses that were absorbed by the current line
    /// (always L1 hits in a no-reuse scan, Section 2.2.2).
    pub l1_element_hits: u64,
    /// L2 lookups (demand only).
    pub l2_accesses: u64,
    /// L3 lookups: demand misses from L2 plus prefetch requests
    /// (Section 2.2.2's definition of "L3 accesses").
    pub l3_accesses: u64,
    /// L3 lookups that missed and were served by memory.
    pub l3_misses: u64,
    /// Prefetch requests issued by the adjacent-line prefetcher.
    pub prefetch_requests: u64,
    /// Demand requests served by main memory.
    pub memory_accesses: u64,
}

impl Counters {
    /// Total mispredicted conditional branches.
    pub fn mispredictions(&self) -> u64 {
        self.mp_taken + self.mp_not_taken
    }

    /// Counter-wise difference `self - earlier`, for interval sampling.
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &Counters) -> CounterDelta {
        debug_assert!(self.cycles >= earlier.cycles);
        CounterDelta(Counters {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            branches: self.branches - earlier.branches,
            branches_taken: self.branches_taken - earlier.branches_taken,
            branches_not_taken: self.branches_not_taken - earlier.branches_not_taken,
            mp_taken: self.mp_taken - earlier.mp_taken,
            mp_not_taken: self.mp_not_taken - earlier.mp_not_taken,
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_hits: self.l1_hits - earlier.l1_hits,
            l1_element_hits: self.l1_element_hits - earlier.l1_element_hits,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l3_accesses: self.l3_accesses - earlier.l3_accesses,
            l3_misses: self.l3_misses - earlier.l3_misses,
            prefetch_requests: self.prefetch_requests - earlier.prefetch_requests,
            memory_accesses: self.memory_accesses - earlier.memory_accesses,
        })
    }
}

/// The difference between two [`Counters`] snapshots.
///
/// A thin newtype so interval measurements cannot be confused with
/// free-running totals; dereferences to [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterDelta(pub Counters);

impl std::ops::Deref for CounterDelta {
    type Target = Counters;
    fn deref(&self) -> &Counters {
        &self.0
    }
}

impl CounterDelta {
    /// Accumulate another interval into this one.
    pub fn accumulate(&mut self, other: &CounterDelta) {
        let a = &mut self.0;
        let b = &other.0;
        a.instructions += b.instructions;
        a.cycles += b.cycles;
        a.branches += b.branches;
        a.branches_taken += b.branches_taken;
        a.branches_not_taken += b.branches_not_taken;
        a.mp_taken += b.mp_taken;
        a.mp_not_taken += b.mp_not_taken;
        a.l1_accesses += b.l1_accesses;
        a.l1_hits += b.l1_hits;
        a.l1_element_hits += b.l1_element_hits;
        a.l2_accesses += b.l2_accesses;
        a.l3_accesses += b.l3_accesses;
        a.l3_misses += b.l3_misses;
        a.prefetch_requests += b.prefetch_requests;
        a.memory_accesses += b.memory_accesses;
    }
}

/// The PMU proper: owns the counter bank and models the (tiny) cost of
/// reading it out.
///
/// Section 5.7 contrasts non-invasive counter sampling with an
/// "enumerator-based" approach that instruments the query loop. Reading a
/// PMU costs a handful of `RDPMC`-style instructions *per sample*, not per
/// tuple; [`Pmu::SAMPLE_COST_CYCLES`] models that fixed cost and the
/// overhead experiment (Figure 16) charges it.
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    counters: Counters,
    /// Number of samples taken (for overhead accounting).
    pub samples: u64,
}

impl Pmu {
    /// Cycles charged per counter-bank readout (a few serializing reads).
    pub const SAMPLE_COST_CYCLES: u64 = 200;

    /// Fresh PMU with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the counter bank (used by the CPU core only).
    #[inline]
    pub(crate) fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Read the free-running counters without cost accounting (tests,
    /// introspection).
    pub fn peek(&self) -> &Counters {
        &self.counters
    }

    /// Take a sample: returns the current counter values and charges the
    /// readout cost to the cycle counter.
    pub fn sample(&mut self) -> Counters {
        self.samples += 1;
        self.counters.cycles += Self::SAMPLE_COST_CYCLES;
        self.counters
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        self.counters = Counters::default();
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut pmu = Pmu::new();
        pmu.counters_mut().branches_taken = 10;
        pmu.counters_mut().cycles = 100;
        let a = *pmu.peek();
        pmu.counters_mut().branches_taken = 25;
        pmu.counters_mut().cycles = 180;
        let b = *pmu.peek();
        let d = b.since(&a);
        assert_eq!(d.branches_taken, 15);
        assert_eq!(d.cycles, 80);
    }

    #[test]
    fn sample_charges_fixed_cost() {
        let mut pmu = Pmu::new();
        let c0 = pmu.sample();
        let c1 = pmu.sample();
        assert_eq!(c1.cycles - c0.cycles, Pmu::SAMPLE_COST_CYCLES);
        assert_eq!(pmu.samples, 2);
    }

    #[test]
    fn accumulate_sums_intervals() {
        let mut d1 = CounterDelta::default();
        let c = Counters {
            branches_not_taken: 7,
            l3_accesses: 3,
            ..Default::default()
        };
        let d2 = CounterDelta(c);
        d1.accumulate(&d2);
        d1.accumulate(&d2);
        assert_eq!(d1.branches_not_taken, 14);
        assert_eq!(d1.l3_accesses, 6);
    }

    #[test]
    fn mispredictions_is_sum_of_directions() {
        let c = Counters {
            mp_taken: 4,
            mp_not_taken: 6,
            ..Default::default()
        };
        assert_eq!(c.mispredictions(), 10);
    }
}
