//! Branch prediction unit: n-state saturating counters, optionally indexed
//! by global history.
//!
//! Section 3.2 of the paper models the predictor as a Markov chain over the
//! states of a saturating counter: on a *not taken* outcome the automaton
//! moves one state to the left (towards "strongly not taken"), on a *taken*
//! outcome one state to the right. This module implements that automaton
//! directly; `popt-cost::markov` derives its stationary distribution in
//! closed form, and Figure 3/6 compare the two.

use crate::config::PredictorConfig;

/// Identifier of a static branch instruction in the "compiled" query.
///
/// Each predicate of a multi-selection plan owns one site; the loop
/// back-edge owns another (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchSite(pub u32);

/// One n-state saturating counter.
///
/// States are numbered `0 ..= states-1`. States `< not_taken_states`
/// predict *not taken*; the remainder predict *taken*. A taken outcome
/// saturates towards `states-1`, a not-taken outcome towards `0` — i.e.
/// taken moves "right" and not-taken moves "left" in the paper's Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct SaturatingAutomaton {
    state: u8,
    states: u8,
    not_taken_states: u8,
}

impl SaturatingAutomaton {
    /// Create an automaton with the given state count and not-taken split,
    /// starting from the weakest not-taken state (the state adjacent to the
    /// prediction boundary), so cold branches carry minimal bias.
    pub fn new(states: u8, not_taken_states: u8) -> Self {
        assert!(states >= 2, "an automaton needs at least two states");
        assert!(
            not_taken_states >= 1 && not_taken_states < states,
            "not_taken_states must leave at least one taken state"
        );
        Self {
            state: not_taken_states - 1,
            states,
            not_taken_states,
        }
    }

    /// Current predicted outcome: `true` means "taken".
    #[inline]
    pub fn predict(&self) -> bool {
        self.state >= self.not_taken_states
    }

    /// Record the actual outcome and transition the automaton.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.state + 1 < self.states {
                self.state += 1;
            }
        } else if self.state > 0 {
            self.state -= 1;
        }
    }

    /// Current internal state (for tests and introspection).
    pub fn state(&self) -> u8 {
        self.state
    }
}

/// Outcome classification of one dynamic branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The actual direction of the branch.
    pub taken: bool,
    /// Whether the predictor guessed the direction correctly.
    pub correct: bool,
}

/// A table of saturating automata indexed by branch site and (optionally)
/// global history — a gshare-style predictor.
///
/// With `history_bits == 0` every site maps to a fixed automaton and the
/// predictor *is* the Markov process of Section 3.2. With history, runs in
/// the input (sorted data, Section 5.4) become almost perfectly predictable
/// while i.i.d. inputs keep the Markov behaviour per history bucket.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<SaturatingAutomaton>,
    mask: u32,
    history: u32,
    history_mask: u32,
}

impl BranchPredictor {
    /// Build a predictor from its configuration.
    pub fn new(config: PredictorConfig) -> Self {
        assert!(
            config.table_bits <= 22,
            "prediction table would be excessive"
        );
        let size = 1usize << config.table_bits;
        let history_mask = if config.history_bits == 0 {
            0
        } else {
            (1u32 << config.history_bits.min(31)) - 1
        };
        Self {
            table: vec![SaturatingAutomaton::new(config.states, config.not_taken_states); size],
            mask: (size - 1) as u32,
            history: 0,
            history_mask,
        }
    }

    /// Predict and update for one dynamic branch; returns the outcome
    /// classification used by the PMU.
    #[inline]
    pub fn execute(&mut self, site: BranchSite, taken: bool) -> Prediction {
        Prediction {
            taken,
            correct: self.execute_fast(site, taken),
        }
    }

    /// Branch-free form of [`BranchPredictor::execute`], returning only
    /// whether the prediction was correct. Outcomes are data-dependent in
    /// query loops, so the automaton transition and counter
    /// classification are computed arithmetically — no host branch ever
    /// depends on `taken`. Semantics are identical to the branchy form:
    /// the saturating increments reduce to the same state, and with
    /// `history_bits == 0` the mask keeps the history register pinned at
    /// its initial zero.
    #[inline(always)]
    pub fn execute_fast(&mut self, site: BranchSite, taken: bool) -> bool {
        let mut h = self.history;
        let correct = self.execute_hist(&mut h, site, taken);
        self.history = h;
        correct
    }

    /// [`BranchPredictor::execute_fast`] against a caller-held history
    /// register. Each branch's table index depends on the history written
    /// by the previous branch, so an executor loop that keeps the
    /// register in a local (via [`BranchPredictor::history`] /
    /// [`BranchPredictor::set_history`]) turns that serial dependence
    /// into register arithmetic instead of a store-to-load chain.
    #[inline(always)]
    pub fn execute_hist(&mut self, history: &mut u32, site: BranchSite, taken: bool) -> bool {
        let h = site.0.wrapping_mul(0x9E37_79B1) ^ (*history & self.history_mask);
        let a = &mut self.table[(h & self.mask) as usize];
        let predicted = a.state >= a.not_taken_states;
        let inc = (taken & (a.state + 1 < a.states)) as u8;
        let dec = (!taken & (a.state > 0)) as u8;
        a.state = a.state + inc - dec;
        *history = ((*history << 1) | u32::from(taken)) & self.history_mask;
        predicted == taken
    }

    /// Current global history register (for register-resident loops).
    #[inline]
    pub fn history(&self) -> u32 {
        self.history
    }

    /// Write back a history register obtained from
    /// [`BranchPredictor::history`].
    #[inline]
    pub fn set_history(&mut self, history: u32) {
        self.history = history;
    }

    /// Reset all automata and the history register to their initial state.
    pub fn reset(&mut self) {
        for a in &mut self.table {
            *a = SaturatingAutomaton::new(a.states, a.not_taken_states);
        }
        self.history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automaton_saturates_at_both_ends() {
        let mut a = SaturatingAutomaton::new(6, 3);
        for _ in 0..100 {
            a.update(true);
        }
        assert_eq!(a.state(), 5);
        assert!(a.predict());
        for _ in 0..100 {
            a.update(false);
        }
        assert_eq!(a.state(), 0);
        assert!(!a.predict());
    }

    #[test]
    fn automaton_needs_hysteresis_to_flip() {
        // From strongly-taken, a 6-state automaton needs 3 not-taken
        // outcomes before its prediction flips.
        let mut a = SaturatingAutomaton::new(6, 3);
        for _ in 0..10 {
            a.update(true);
        }
        a.update(false);
        assert!(a.predict());
        a.update(false);
        assert!(a.predict());
        a.update(false);
        assert!(!a.predict());
    }

    #[test]
    #[should_panic(expected = "at least two states")]
    fn automaton_rejects_single_state() {
        let _ = SaturatingAutomaton::new(1, 1);
    }

    #[test]
    fn all_taken_stream_is_perfectly_predicted_after_warmup() {
        let mut p = BranchPredictor::new(PredictorConfig::automaton(6, 3));
        let site = BranchSite(7);
        let mut wrong = 0;
        for i in 0..1000 {
            let r = p.execute(site, true);
            if !r.correct && i > 10 {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0);
    }

    #[test]
    fn alternating_stream_on_pure_automaton_is_hard() {
        // A strict T/NT alternation keeps a history-less automaton hovering
        // around the boundary; at least half the branches mispredict.
        let mut p = BranchPredictor::new(PredictorConfig::automaton(4, 2));
        let site = BranchSite(1);
        let mut wrong = 0u32;
        let n = 10_000;
        for i in 0..n {
            let r = p.execute(site, i % 2 == 0);
            if !r.correct {
                wrong += 1;
            }
        }
        assert!(wrong >= n / 2, "wrong = {wrong}");
    }

    #[test]
    fn history_learns_alternating_pattern() {
        let cfg = PredictorConfig {
            states: 6,
            not_taken_states: 3,
            history_bits: 8,
            table_bits: 12,
        };
        let mut p = BranchPredictor::new(cfg);
        let site = BranchSite(1);
        let mut wrong_tail = 0u32;
        let n = 10_000;
        for i in 0..n {
            let r = p.execute(site, i % 2 == 0);
            if !r.correct && i > n / 2 {
                wrong_tail += 1;
            }
        }
        // After warmup the pattern lives in the history bits.
        assert!(wrong_tail < 100, "wrong_tail = {wrong_tail}");
    }

    #[test]
    fn biased_stream_misprediction_rate_tracks_minority_class() {
        // For p(taken) = 0.9 the automaton predicts taken almost always, so
        // the misprediction rate approaches the not-taken frequency (10%).
        let mut p = BranchPredictor::new(PredictorConfig::automaton(6, 3));
        let site = BranchSite(3);
        let mut state = 0x1234_5678_u64;
        let mut wrong = 0u32;
        let n = 100_000;
        for _ in 0..n {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let taken = (state % 10) != 0; // 90% taken
            if !p.execute(site, taken).correct {
                wrong += 1;
            }
        }
        let rate = f64::from(wrong) / f64::from(n);
        assert!(rate > 0.05 && rate < 0.15, "rate = {rate}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = BranchPredictor::new(PredictorConfig::automaton(6, 3));
        let site = BranchSite(0);
        for _ in 0..100 {
            p.execute(site, true);
        }
        p.reset();
        let fresh = BranchPredictor::new(PredictorConfig::automaton(6, 3));
        // After reset the first prediction matches a fresh predictor's.
        let mut a = p;
        let mut b = fresh;
        assert_eq!(
            a.execute(site, false).correct,
            b.execute(site, false).correct
        );
    }
}
