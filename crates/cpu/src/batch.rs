//! Batched event accounting: the simulator fast path.
//!
//! [`BatchCpu`] is a scoped guard over a [`SimCpu`] that accumulates PMU
//! counters, cycles and remote-access counts in a local bank and flushes
//! them **in bulk** when the guard drops — one set of memory writes per
//! morsel instead of several per tuple. On top of the bulk counter flush
//! it adds two accounting short-cuts, both bit-identical to the scalar
//! per-line path (pinned by `tests/proptest_batch.rs`):
//!
//! * **closed-form dense spans** ([`BatchCpu::load_span`]): a sequential
//!   touch of N contiguous *clean* lines is accounted at set/level
//!   granularity (parity rule for memory trips vs buddy-covered L2 hits,
//!   one batched LRU rebuild per set, prefetcher advanced arithmetically)
//!   instead of N hierarchy walks;
//! * **segment-granular NUMA pricing**: remote surcharges are resolved
//!   per contiguous home-range segment ([`NumaPlacement::segment_of`])
//!   through a two-entry segment cache, not by scanning the region list
//!   per missing line.
//!
//! Executors that own their inner loop (the compiled program/selection
//! `run_range` fast paths in `popt-core`) additionally keep per-stream
//! adjacency state in registers via [`BatchCpu::load_with`] +
//! [`BatchCpu::stream_state`]/[`BatchCpu::set_stream_state`], so the
//! steady-state tuple loop touches no `Vec` at all.
//!
//! The scalar path ([`SimCpu::load`]/[`SimCpu::load_span`] et al.)
//! remains the **oracle**: it is the reference semantics, and every
//! batched shortcut must reproduce its results exactly — counters,
//! cycles, cache state, predictor state and remote counts.

use crate::branch::BranchSite;
use crate::cache::ServedBy;
use crate::cpu::{SimCpu, StreamId, StreamState};
use crate::pmu::Counters;

/// Maximum cache-hierarchy depth the cached latency table covers.
const MAX_LEVELS: usize = 8;

/// Spans shorter than this stay on the per-line path: the closed form's
/// residency pre-check costs a few set scans, which only pays off once a
/// span covers several 128-byte pairs.
const MIN_CLOSED_FORM_LINES: u64 = 4;

/// A batched accounting scope over one [`SimCpu`]. See the
/// [module documentation](self).
///
/// Dropping the guard flushes the accumulated counters into the core's
/// PMU bank; [`BatchCpu::finish`] does the same explicitly. While the
/// guard is alive the core itself is mutably borrowed, so stale
/// mid-batch counter reads are a compile error, not a hazard.
pub struct BatchCpu<'a> {
    cpu: &'a mut SimCpu,
    /// Locally accumulated counter bank (flushed on drop).
    acc: Counters,
    /// Locally accumulated remote demand misses (flushed on drop).
    remote: u64,
    // Hot timing constants, copied out of the config once per batch.
    line_shift: u32,
    mispredict_penalty: u64,
    mem_seq: u64,
    mem_rand: u64,
    remote_extra: u64,
    /// Whether remote pricing is active (`placement.sockets() > 1`).
    numa: bool,
    /// Per-level demand hit latencies.
    lat: [u64; MAX_LEVELS],
    /// Two-entry cache of `(seg_start, seg_end, is_remote)` home-range
    /// segments — scans and probe clusters each keep their own entry hot.
    seg: [(u64, u64, bool); 2],
    seg_next: usize,
}

impl<'a> BatchCpu<'a> {
    pub(crate) fn new(cpu: &'a mut SimCpu) -> Self {
        let timing = cpu.config.timing;
        let mut lat = [0u64; MAX_LEVELS];
        assert!(cpu.config.levels.len() <= MAX_LEVELS, "hierarchy too deep");
        for (i, l) in cpu.config.levels.iter().enumerate() {
            lat[i] = l.hit_latency_cycles;
        }
        let numa = cpu.placement.sockets() > 1;
        let line_shift = cpu.line_shift;
        Self {
            cpu,
            acc: Counters::default(),
            remote: 0,
            line_shift,
            mispredict_penalty: timing.mispredict_penalty_cycles,
            mem_seq: timing.memory_sequential_cycles,
            mem_rand: timing.memory_random_cycles,
            remote_extra: timing.memory_remote_extra_cycles,
            numa,
            lat,
            seg: [(0, 0, false); 2],
            seg_next: 0,
        }
    }

    /// Retire `n` generic instructions.
    #[inline(always)]
    pub fn instr(&mut self, n: u64) {
        self.acc.instructions += n;
    }

    /// Execute a conditional branch — identical semantics to
    /// [`SimCpu::branch`], accumulated locally.
    #[inline(always)]
    pub fn branch(&mut self, site: BranchSite, taken: bool) {
        let correct = self.cpu.predictor.execute_fast(site, taken);
        let c = &mut self.acc;
        let t = u64::from(taken);
        let w = u64::from(!correct);
        c.branches += 1;
        c.branches_taken += t;
        c.branches_not_taken += 1 - t;
        c.mp_taken += w & t;
        c.mp_not_taken += w & (1 - t);
        c.cycles += self.mispredict_penalty * w;
    }

    /// Execute a branch, returning 1 if mispredicted else 0, **without**
    /// touching the counter bank — the register-resident executor form.
    /// The caller accumulates branch totals in plain locals and flushes
    /// them once per morsel via [`BatchCpu::add_branch_block`]; the
    /// predictor itself (table + history) still transitions per event, in
    /// exact program order, so simulated state is identical to
    /// [`BatchCpu::branch`].
    #[inline(always)]
    pub fn branch_quiet(&mut self, site: BranchSite, taken: bool) -> u64 {
        u64::from(!self.cpu.predictor.execute_fast(site, taken))
    }

    /// [`BatchCpu::branch_quiet`] against a caller-held gshare history
    /// register (see [`BranchPredictor::execute_hist`]): the serial
    /// history dependence between consecutive branches stays in a host
    /// register. Obtain the register with [`BatchCpu::history`], write it
    /// back with [`BatchCpu::set_history`].
    #[inline(always)]
    pub fn branch_hist(&mut self, history: &mut u32, site: BranchSite, taken: bool) -> u64 {
        u64::from(!self.cpu.predictor.execute_hist(history, site, taken))
    }

    /// Read the predictor's global history register.
    #[inline]
    pub fn history(&mut self) -> u32 {
        self.cpu.predictor.history()
    }

    /// Write back a history register obtained from [`BatchCpu::history`].
    #[inline]
    pub fn set_history(&mut self, history: u32) {
        self.cpu.predictor.set_history(history);
    }

    /// Bulk-add the branch statistics a [`BatchCpu::branch_quiet`] loop
    /// accumulated: total branches, taken count, and mispredictions split
    /// by direction. Equivalent to the per-event bookkeeping of
    /// [`BatchCpu::branch`] applied `branches` times.
    #[inline]
    pub fn add_branch_block(
        &mut self,
        branches: u64,
        taken: u64,
        mp_taken: u64,
        mp_not_taken: u64,
    ) {
        debug_assert!(taken <= branches && mp_taken <= taken);
        debug_assert!(mp_not_taken <= branches - taken);
        let c = &mut self.acc;
        c.branches += branches;
        c.branches_taken += taken;
        c.branches_not_taken += branches - taken;
        c.mp_taken += mp_taken;
        c.mp_not_taken += mp_not_taken;
        c.cycles += self.mispredict_penalty * (mp_taken + mp_not_taken);
    }

    /// [`BatchCpu::load_with`] that returns 1 instead of counting when
    /// the access is an element hit on the stream's current line — the
    /// register-resident executor form. The caller accumulates the hits
    /// in a local and flushes once via [`BatchCpu::add_element_hits`];
    /// line crossings are accounted directly (and return 0).
    #[inline(always)]
    pub fn load_quiet(&mut self, llpo: &mut u64, addr: u64, bytes: u64) -> u64 {
        debug_assert!(bytes >= 1);
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        if (*llpo == first + 1) & (first == last) {
            1
        } else {
            self.load_with_cold(llpo, first, last);
            0
        }
    }

    /// Bulk-add element hits counted by a [`BatchCpu::load_quiet`] loop.
    #[inline]
    pub fn add_element_hits(&mut self, n: u64) {
        self.acc.l1_element_hits += n;
    }

    /// Load `bytes` at `addr` on `stream` — identical semantics to
    /// [`SimCpu::load`], accumulated locally.
    #[inline]
    pub fn load(&mut self, stream: StreamId, addr: u64, bytes: u32) {
        let mut llpo = self.stream_state(stream);
        self.load_with(&mut llpo, addr, u64::from(bytes));
        self.cpu.streams[stream].last_line_plus_one = llpo;
    }

    /// Store `bytes` at `addr` on `stream` (write-allocate, like
    /// [`SimCpu::store`]).
    #[inline]
    pub fn store(&mut self, stream: StreamId, addr: u64, bytes: u32) {
        self.load(stream, addr, bytes);
    }

    /// Read (creating if needed) the adjacency state of `stream`:
    /// last-touched line number plus one, 0 if untouched. An executor
    /// fast path copies this into a local, drives [`BatchCpu::load_with`]
    /// against it, and writes it back once per morsel via
    /// [`BatchCpu::set_stream_state`].
    #[inline]
    pub fn stream_state(&mut self, stream: StreamId) -> u64 {
        if stream >= self.cpu.streams.len() {
            self.cpu.streams.resize(stream + 1, StreamState::default());
        }
        self.cpu.streams[stream].last_line_plus_one
    }

    /// Write back a stream adjacency state obtained from
    /// [`BatchCpu::stream_state`].
    #[inline]
    pub fn set_stream_state(&mut self, stream: StreamId, last_line_plus_one: u64) {
        debug_assert!(stream < self.cpu.streams.len(), "state never read");
        self.cpu.streams[stream].last_line_plus_one = last_line_plus_one;
    }

    /// [`BatchCpu::load`] against a caller-held stream state — the
    /// register-resident inner-loop form.
    #[inline(always)]
    pub fn load_with(&mut self, llpo: &mut u64, addr: u64, bytes: u64) {
        debug_assert!(bytes >= 1);
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        // The overwhelmingly common case: an element access within the
        // stream's current line. One combined compare keeps the executor
        // loop's hot path to a handful of host instructions.
        if (*llpo == first + 1) & (first == last) {
            self.acc.l1_element_hits += 1;
        } else {
            self.load_with_cold(llpo, first, last);
        }
    }

    /// Out-of-line remainder of [`BatchCpu::load_with`]: line crossings
    /// and non-adjacent accesses.
    #[inline]
    fn load_with_cold(&mut self, llpo: &mut u64, first: u64, last: u64) {
        for line in first..=last {
            if *llpo == line + 1 {
                self.acc.l1_element_hits += 1;
            } else {
                self.touch_line_with(llpo, line);
            }
        }
    }

    /// One full hierarchy access — the scalar `touch_line` semantics
    /// against the local accumulator and the segment cache.
    fn touch_line_with(&mut self, llpo: &mut u64, line: u64) {
        let sequential = *llpo == line;
        *llpo = line + 1;
        let result = self.cpu.hierarchy.demand_access(line);
        let c = &mut self.acc;
        c.l1_accesses += 1;
        match result.served_by {
            ServedBy::Level(0) => {
                c.l1_hits += 1;
                c.cycles += self.lat[0];
            }
            ServedBy::Level(i) => {
                c.l2_accesses += 1;
                if i >= 2 {
                    c.l3_accesses += 1;
                }
                c.cycles += self.lat[i];
            }
            ServedBy::Memory => {
                c.l2_accesses += 1;
                c.l3_accesses += 1;
                c.l3_misses += 1;
                c.memory_accesses += 1;
                c.cycles += if sequential {
                    self.mem_seq
                } else {
                    self.mem_rand
                };
                if self.numa && self.is_remote(line) {
                    self.remote += 1;
                    self.acc.cycles += if sequential {
                        self.remote_extra / 4
                    } else {
                        self.remote_extra
                    };
                }
            }
        }
        if result.prefetch_issued {
            let c = &mut self.acc;
            c.prefetch_requests += 1;
            c.l3_accesses += 1;
            if result.prefetch_memory {
                c.l3_misses += 1;
                c.cycles += self.mem_seq / 4;
            }
        }
    }

    /// Whether `line` is homed on a remote socket, resolved through the
    /// two-entry home-segment cache.
    #[inline]
    fn is_remote(&mut self, line: u64) -> bool {
        let addr = line << self.line_shift;
        for s in &self.seg {
            if addr >= s.0 && addr < s.1 {
                return s.2;
            }
        }
        let line_bytes = 1u64 << self.line_shift;
        let seg = self.cpu.placement.segment_of(addr, line_bytes);
        let remote = seg.socket != self.cpu.socket;
        self.seg[self.seg_next] = (seg.start, seg.end, remote);
        self.seg_next ^= 1;
        remote
    }

    /// Load an arbitrarily long byte span at `addr` on `stream`. Dense
    /// clean spans are accounted in closed form at set/level granularity;
    /// anything else (partially resident span, too-shallow hierarchy,
    /// prefetcher off, tiny span) falls back to the per-line walk.
    /// Bit-identical to [`SimCpu::load_span`] in all cases.
    pub fn load_span(&mut self, stream: StreamId, addr: u64, bytes: u64) {
        assert!(bytes >= 1, "empty span");
        let mut llpo = self.stream_state(stream);
        let mut first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        // Leading element hit: the span may re-enter the current line.
        if llpo == first + 1 {
            self.acc.l1_element_hits += 1;
            first += 1;
        }
        if first > last {
            return; // wholly absorbed by the current line
        }
        self.walk_dense_lines(&mut llpo, first, last);
        self.cpu.streams[stream].last_line_plus_one = llpo;
    }

    /// Touch the dense line range `first..=last` exactly as a sequential
    /// per-line walk would: closed form when the span is clean and the
    /// hierarchy shape allows it, the per-line walk otherwise. Leaves
    /// `*llpo == last + 1` on every path.
    fn walk_dense_lines(&mut self, llpo: &mut u64, first: u64, last: u64) {
        let entering_sequential = *llpo == first;
        let n = last - first + 1;
        let eligible = n >= MIN_CLOSED_FORM_LINES
            && first >= 1 // the odd-start rule needs a below-span buddy line
            && self.cpu.hierarchy.dense_span_eligible();
        if eligible {
            let ext_lo = first - (first & 1);
            let ext_hi = last + 1 - (last & 1);
            if self.cpu.hierarchy.span_is_clean(ext_lo, ext_hi) {
                self.apply_clean_span(first, last, entering_sequential);
                *llpo = last + 1;
                return;
            }
        }
        for line in first..=last {
            self.touch_line_with(llpo, line);
        }
    }

    /// Account `n` sequential element loads (`elem` bytes each, starting
    /// at `addr`) against a caller-held stream state, bit-identically to
    /// `n` individual [`BatchCpu::load_with`] calls, and return how many
    /// of them were element hits (the caller flushes those in bulk via
    /// [`BatchCpu::add_element_hits`]).
    ///
    /// Exactness: with `addr` element-aligned and the element dividing
    /// the line size, no element straddles a line, so the per-element
    /// walk reduces to "one touch at each new line, element hits for the
    /// rest" — `n − touches` hits plus the same ordered sequence of
    /// sequential line touches, which [`BatchCpu::walk_dense_lines`]
    /// applies (in closed form when the span is clean). Misaligned
    /// shapes fall back to the per-element loop.
    pub fn load_elements_seq(&mut self, llpo: &mut u64, addr: u64, elem: u64, n: u64) -> u64 {
        debug_assert!(elem >= 1);
        if n == 0 {
            return 0;
        }
        let line_bytes = 1u64 << self.line_shift;
        if addr % elem != 0 || line_bytes % elem != 0 {
            let mut hits = 0u64;
            for k in 0..n {
                hits += self.load_quiet(llpo, addr + k * elem, elem);
            }
            return hits;
        }
        let mut first = addr >> self.line_shift;
        let last = (addr + n * elem - 1) >> self.line_shift;
        // Elements in the stream's current line are hits and advance
        // nothing; the first new line starts the touch walk.
        if *llpo == first + 1 {
            first += 1;
        }
        if first > last {
            return n; // wholly absorbed by the current line
        }
        let hits = n - (last - first + 1);
        self.walk_dense_lines(llpo, first, last);
        hits
    }

    /// Closed-form accounting of a clean dense span (see
    /// [`crate::cache::CacheHierarchy`]'s `apply_dense_span` for the
    /// parity argument).
    fn apply_clean_span(&mut self, first: u64, last: u64, entering_sequential: bool) {
        let (initiators, hits) = self.cpu.hierarchy.apply_dense_span(first, last);
        let n = initiators + hits;
        let c = &mut self.acc;
        c.l1_accesses += n;
        c.l2_accesses += n;
        // Demand misses and prefetches each make one L3 lookup and one
        // memory trip; prefetch count equals initiator count.
        c.l3_accesses += 2 * initiators;
        c.l3_misses += 2 * initiators;
        c.memory_accesses += initiators;
        c.prefetch_requests += initiators;
        c.cycles +=
            hits * self.lat[1] + initiators * self.mem_seq + initiators * (self.mem_seq / 4);
        // The first line is always an initiator; if the span was entered
        // non-sequentially it pays the random latency instead.
        if !entering_sequential {
            c.cycles += self.mem_rand - self.mem_seq;
        }
        if self.numa {
            self.price_remote_span(first, last, entering_sequential);
        }
    }

    /// Remote surcharges for the initiator lines of a clean dense span,
    /// walked one contiguous home-range segment at a time.
    fn price_remote_span(&mut self, first: u64, last: u64, entering_sequential: bool) {
        let line_bytes = 1u64 << self.line_shift;
        let socket = self.cpu.socket;
        let mut pos = first;
        while pos <= last {
            let seg = self
                .cpu
                .placement
                .segment_of(pos << self.line_shift, line_bytes);
            let seg_last = ((seg.end - 1) >> self.line_shift).min(last);
            if seg.socket != socket {
                // Initiators in `pos..=seg_last`: the even lines, plus
                // the span's first line when it is odd.
                let first_even = pos + (pos & 1);
                let evens = if first_even > seg_last {
                    0
                } else {
                    (seg_last - first_even) / 2 + 1
                };
                let k = evens + u64::from(pos == first && first & 1 == 1);
                self.remote += k;
                self.acc.cycles += k * (self.remote_extra / 4);
                if pos == first && !entering_sequential && k > 0 {
                    // The non-sequential first line pays the full
                    // surcharge, not the streamed quarter.
                    self.acc.cycles += self.remote_extra - self.remote_extra / 4;
                }
            }
            pos = seg_last + 1;
        }
    }

    /// Flush the accumulated counters into the core and end the batch.
    /// Equivalent to dropping the guard; provided for explicitness.
    pub fn finish(self) {}
}

impl Drop for BatchCpu<'_> {
    fn drop(&mut self) {
        let a = &self.acc;
        let c = self.cpu.pmu.counters_mut();
        c.instructions += a.instructions;
        c.cycles += a.cycles;
        c.branches += a.branches;
        c.branches_taken += a.branches_taken;
        c.branches_not_taken += a.branches_not_taken;
        c.mp_taken += a.mp_taken;
        c.mp_not_taken += a.mp_not_taken;
        c.l1_accesses += a.l1_accesses;
        c.l1_hits += a.l1_hits;
        c.l1_element_hits += a.l1_element_hits;
        c.l2_accesses += a.l2_accesses;
        c.l3_accesses += a.l3_accesses;
        c.l3_misses += a.l3_misses;
        c.prefetch_requests += a.prefetch_requests;
        c.memory_accesses += a.memory_accesses;
        self.cpu.remote_accesses += self.remote;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;
    use crate::numa::NumaPlacement;
    use crate::pmu::Counters;

    fn assert_same(a: &SimCpu, b: &SimCpu, what: &str) {
        assert_eq!(a.counters(), b.counters(), "{what}: counters");
        assert_eq!(a.remote_accesses(), b.remote_accesses(), "{what}: remote");
        for lvl in 0..a.hierarchy().depth() {
            let (la, lb) = (a.hierarchy().level(lvl), b.hierarchy().level(lvl));
            assert_eq!(la.demand, lb.demand, "{what}: L{lvl} demand stats");
            assert_eq!(la.prefetch, lb.prefetch, "{what}: L{lvl} prefetch stats");
            for set in 0..la.set_count() as usize {
                assert_eq!(
                    la.set_lines(set),
                    lb.set_lines(set),
                    "{what}: L{lvl} set {set}"
                );
            }
        }
    }

    #[test]
    fn batched_events_flush_to_identical_counters() {
        let mut scalar = SimCpu::new(CpuConfig::tiny_test());
        let mut batched = SimCpu::new(CpuConfig::tiny_test());
        let site = BranchSite(3);
        for i in 0..500u64 {
            scalar.instr(2);
            scalar.load(0, i * 4, 4);
            scalar.branch(site, i % 3 == 0);
        }
        {
            let mut b = batched.batch();
            for i in 0..500u64 {
                b.instr(2);
                b.load(0, i * 4, 4);
                b.branch(site, i % 3 == 0);
            }
        }
        assert_same(&scalar, &batched, "mixed events");
    }

    #[test]
    fn nothing_is_visible_before_the_flush() {
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        {
            let mut b = cpu.batch();
            b.instr(100);
            b.load(0, 0, 4);
        }
        assert!(cpu.counters().instructions == 100, "flushed on drop");
        assert_eq!(cpu.counters(), {
            let mut reference = SimCpu::new(CpuConfig::tiny_test());
            reference.instr(100);
            reference.load(0, 0, 4);
            reference.counters()
        });
    }

    #[test]
    fn clean_dense_span_matches_per_line_oracle() {
        let mut scalar = SimCpu::new(CpuConfig::tiny_test());
        let mut batched = SimCpu::new(CpuConfig::tiny_test());
        // Even and odd entry points, even and odd span ends.
        for (addr, bytes) in [(64u64, 4096u64), (8256, 1000), (64 * 129, 64 * 7)] {
            scalar.load_span(0, addr, bytes);
            batched.batch().load_span(0, addr, bytes);
            assert_same(&scalar, &batched, "span");
        }
    }

    #[test]
    fn load_elements_seq_matches_per_element_loads() {
        // Various starting offsets, element sizes and counts, including a
        // warm pass over the same region (element hits dominate) and a
        // misaligned base (fallback path).
        for (addr, elem, n) in [
            (0u64, 4u64, 1000u64),
            (64 * 7 + 16, 4, 300),
            (64 * 3, 8, 500),
            (128, 64, 40),
            (2, 4, 333), // misaligned: falls back
        ] {
            let mut scalar = SimCpu::new(CpuConfig::tiny_test());
            let mut batched = SimCpu::new(CpuConfig::tiny_test());
            for pass in 0..2 {
                for k in 0..n {
                    scalar.load(0, addr + k * elem, elem as u32);
                }
                let mut b = batched.batch();
                let mut llpo = b.stream_state(0);
                let hits = b.load_elements_seq(&mut llpo, addr, elem, n);
                b.add_element_hits(hits);
                b.set_stream_state(0, llpo);
                drop(b);
                assert_same(
                    &scalar,
                    &batched,
                    &format!("elements addr={addr} elem={elem} n={n} pass={pass}"),
                );
            }
        }
    }

    #[test]
    fn dirty_span_falls_back_and_still_matches() {
        let mut scalar = SimCpu::new(CpuConfig::tiny_test());
        let mut batched = SimCpu::new(CpuConfig::tiny_test());
        // Warm a line in the middle of the span so it is not clean.
        scalar.load(1, 64 * 40, 4);
        batched.load(1, 64 * 40, 4);
        scalar.load_span(0, 64 * 32, 64 * 16);
        batched.batch().load_span(0, 64 * 32, 64 * 16);
        assert_same(&scalar, &batched, "dirty span");
    }

    #[test]
    fn span_remote_surcharge_matches_per_line_oracle() {
        let configure = |socket: usize| {
            let mut c = SimCpu::new(CpuConfig::tiny_test());
            let mut p = NumaPlacement::interleaved(2);
            p.register(0, 64 * 100, 0);
            p.register(64 * 100, 64 * 300, 1);
            c.set_placement(p);
            c.set_socket(socket);
            c
        };
        for socket in [0, 1] {
            let mut scalar = configure(socket);
            let mut batched = configure(socket);
            // Crosses both registered segments and the interleave tail.
            scalar.load_span(0, 64 * 64, 64 * 512);
            batched.batch().load_span(0, 64 * 64, 64 * 512);
            assert_same(&scalar, &batched, "numa span");
        }
    }

    #[test]
    fn guard_keeps_totals_when_interleaved_with_scalar_events() {
        let mut a = SimCpu::new(CpuConfig::tiny_test());
        let mut b = SimCpu::new(CpuConfig::tiny_test());
        a.load(0, 0, 4);
        b.load(0, 0, 4);
        {
            let mut g = b.batch();
            g.load(0, 64, 4);
            g.instr(7);
        }
        a.load(0, 64, 4);
        a.instr(7);
        a.load(0, 128, 4);
        b.load(0, 128, 4);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn empty_batch_is_free() {
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let before: Counters = cpu.counters();
        cpu.batch().finish();
        assert_eq!(cpu.counters(), before);
    }
}
