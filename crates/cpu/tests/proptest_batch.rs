//! Property: the batched accounting layer ([`popt_cpu::BatchCpu`]) is
//! bit-identical to the scalar per-event [`SimCpu`] API for random event
//! tapes — mixed loads (random, sequential, spans), branches, and
//! instruction charges, with and without NUMA remote pricing — and the
//! bulk sequential-element path matches per-element loads from any warm
//! state.
//!
//! Case count is the vendored proptest default (256), pinnable via the
//! upstream-compatible `PROPTEST_CASES` environment variable (CI pins it
//! so the smoke stays bounded).

use proptest::prelude::*;

use popt_cpu::{BranchSite, CpuConfig, NumaPlacement, SimCpu};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn cpu_pair(numa: bool, socket: usize) -> (SimCpu, SimCpu) {
    let build = || {
        let mut c = SimCpu::new(CpuConfig::tiny_test());
        if numa {
            let mut p = NumaPlacement::interleaved(2);
            p.register(0, 64 * 200, 0);
            p.register(64 * 200, 64 * 500, 1);
            c.set_placement(p);
            c.set_socket(socket);
        }
        c
    };
    (build(), build())
}

proptest! {
    /// A random tape of scalar events replayed through the batched
    /// guard (quiet branch/load forms included) leaves identical PMU
    /// counters, cycles, and hierarchy state. State identity is probed
    /// by replaying a second tape after the first comparison.
    #[test]
    fn batched_event_tape_matches_scalar(
        seed in any::<u64>(),
        ops in 50usize..400,
        numa in any::<bool>(),
        socket in 0usize..2,
    ) {
        let (mut scalar, mut batched) = cpu_pair(numa, socket);
        for round in 0..2 {
            let mut s = (seed ^ ((round as u64) << 32)) | 1;
            // Scalar: the per-event oracle API.
            {
                let mut st = s;
                for _ in 0..ops {
                    match xorshift(&mut st) % 6 {
                        0 => {
                            let addr = xorshift(&mut st) % (64 * 600);
                            scalar.load(0, addr, 4);
                        }
                        1 => {
                            // Sequential run on a dedicated stream.
                            let start = xorshift(&mut st) % (64 * 500);
                            for k in 0..xorshift(&mut st) % 32 {
                                scalar.load(1, start + k * 4, 4);
                            }
                        }
                        2 => {
                            let addr = xorshift(&mut st) % (64 * 500);
                            let bytes = 1 + xorshift(&mut st) % (64 * 40);
                            scalar.load_span(2, addr, bytes);
                        }
                        3 => {
                            let site = BranchSite((xorshift(&mut st) % 8) as u32);
                            scalar.branch(site, xorshift(&mut st) % 3 == 0);
                        }
                        4 => scalar.instr(xorshift(&mut st) % 100),
                        _ => {
                            let addr = xorshift(&mut st) % (64 * 600);
                            scalar.store(0, addr, 4);
                        }
                    }
                }
            }
            // Batched: the same tape through the guard, using the quiet
            // register-local forms exactly as the executors do. A store
            // is a write-allocate load, so the `_` arm mirrors arm 0.
            {
                let mut b = batched.batch();
                let mut l0 = b.stream_state(0);
                let mut l1 = b.stream_state(1);
                let mut hist = b.history();
                let mut instrs = 0u64;
                let mut hits = 0u64;
                let mut branches = 0u64;
                let mut taken_n = 0u64;
                let mut mp_taken = 0u64;
                let mut mp_not_taken = 0u64;
                for _ in 0..ops {
                    match xorshift(&mut s) % 6 {
                        0 => {
                            let addr = xorshift(&mut s) % (64 * 600);
                            hits += b.load_quiet(&mut l0, addr, 4);
                        }
                        1 => {
                            let start = xorshift(&mut s) % (64 * 500);
                            let n = xorshift(&mut s) % 32;
                            hits += b.load_elements_seq(&mut l1, start, 4, n);
                        }
                        2 => {
                            let addr = xorshift(&mut s) % (64 * 500);
                            let bytes = 1 + xorshift(&mut s) % (64 * 40);
                            b.load_span(2, addr, bytes);
                        }
                        3 => {
                            let site = BranchSite((xorshift(&mut s) % 8) as u32);
                            let taken = xorshift(&mut s) % 3 == 0;
                            let tk = u64::from(taken);
                            let w = b.branch_hist(&mut hist, site, taken);
                            branches += 1;
                            taken_n += tk;
                            mp_taken += w & tk;
                            mp_not_taken += w & (1 - tk);
                        }
                        4 => instrs += xorshift(&mut s) % 100,
                        _ => {
                            let addr = xorshift(&mut s) % (64 * 600);
                            hits += b.load_quiet(&mut l0, addr, 4);
                        }
                    }
                }
                b.set_history(hist);
                b.instr(instrs);
                b.add_element_hits(hits);
                b.add_branch_block(branches, taken_n, mp_taken, mp_not_taken);
                b.set_stream_state(0, l0);
                b.set_stream_state(1, l1);
            }
            prop_assert_eq!(
                scalar.counters(),
                batched.counters(),
                "round {} numa={} socket={}",
                round,
                numa,
                socket
            );
            prop_assert_eq!(scalar.cycles(), batched.cycles());
        }
    }

    /// Bulk sequential element accounting equals per-element loads for
    /// every alignment, element width, and warm-cache entry state.
    #[test]
    fn bulk_elements_match_per_element_loads(
        seed in any::<u64>(),
        elem_pow in 0u32..4,
        n in 1u64..3000,
        warm in any::<bool>(),
    ) {
        let mut s = seed | 1;
        let elem = 1u64 << elem_pow; // 1, 2, 4, 8 bytes
        let addr = xorshift(&mut s) % (64 * 300);
        let (mut scalar, mut batched) = cpu_pair(false, 0);
        if warm {
            // Leave the stream mid-line so the leading-hit rule engages.
            let w = addr.saturating_sub(elem * 3);
            scalar.load(0, w, elem as u32);
            batched.batch().load(0, w, elem as u32);
        }
        for k in 0..n {
            scalar.load(0, addr + k * elem, elem as u32);
        }
        {
            let mut b = batched.batch();
            let mut llpo = b.stream_state(0);
            let hits = b.load_elements_seq(&mut llpo, addr, elem, n);
            b.add_element_hits(hits);
            b.set_stream_state(0, llpo);
        }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }
}
