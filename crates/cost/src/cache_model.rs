//! The cache access cost model of Section 3.1.
//!
//! Extends the generic model of Pirk et al. [17]: the first predicate of a
//! PEO induces a *single sequential* access pattern over its column; every
//! later predicate induces a *sequential scan with conditional read* whose
//! line-access count depends on the fraction of tuples surviving the
//! previous predicates. The paper modifies the model to **double count
//! random misses**: "a random cache miss induces one cache access for the
//! cache line that was predicted but not used and one cache line access
//! for the actually used cache line".
//!
//! On the `popt-cpu` substrate that prediction mechanism is the
//! adjacent-line prefetcher, which gives the modification a precise form:
//! cache lines come in 128-byte buddy pairs, a demand miss on either line
//! fetches both, so the expected number of L3 accesses per pair is
//! `2 · P(pair touched)` — yielding
//! `L3(d) = L · (1 − (1 − d)^(2v))` for density `d` and `v` values per
//! line, which ≈ `2 · touched` for sparse (random) access and saturates at
//! `L` for dense scans, reproducing the shape of Figure 2.

/// Geometry of one column under a given cache line size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheGeometry {
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Width of one value in bytes.
    pub value_bytes: u32,
}

impl CacheGeometry {
    /// Values per cache line.
    pub fn values_per_line(&self) -> f64 {
        f64::from(self.line_bytes) / f64::from(self.value_bytes)
    }

    /// Cache lines occupied by `n` values.
    pub fn lines(&self, n: u64) -> f64 {
        (n as f64 * f64::from(self.value_bytes) / f64::from(self.line_bytes)).ceil()
    }
}

/// Expected number of *touched* cache lines when a fraction `density` of
/// `n` values is read at (approximately) uniform positions — the
/// sequential-scan-with-conditional-read pattern of Pirk et al.
pub fn touched_lines(geom: &CacheGeometry, n: u64, density: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&density),
        "density out of range: {density}"
    );
    let lines = geom.lines(n);
    let v = geom.values_per_line();
    lines * (1.0 - (1.0 - density).powf(v))
}

/// The paper's modified model: expected **L3 accesses** (demand + buddy
/// prefetch) for the same pattern, double-counting random misses.
pub fn l3_accesses(geom: &CacheGeometry, n: u64, density: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&density),
        "density out of range: {density}"
    );
    let lines = geom.lines(n);
    let v = geom.values_per_line();
    lines * (1.0 - (1.0 - density).powf(2.0 * v))
}

/// The unmodified Pirk et al. estimate (touched lines only, no double
/// counting) — kept for the ablation benches.
pub fn l3_accesses_unmodified(geom: &CacheGeometry, n: u64, density: f64) -> f64 {
    touched_lines(geom, n, density)
}

/// Expected L3 accesses for a whole multi-selection plan: one entry per
/// column in evaluation order with the density at which it is read
/// (`density[0] = 1` for the first predicate's column; the aggregate
/// column reads at the overall selectivity).
pub fn plan_l3_accesses(geom: &CacheGeometry, n: u64, densities: &[f64]) -> f64 {
    densities.iter().map(|&d| l3_accesses(geom, n, d)).sum()
}

/// The remote-access latency class of the two-socket extension: expected
/// stall cycles for one access that misses the LLC, given the
/// probability `remote_fraction` that the line's home is another socket.
///
/// Equation 1 counts *misses*; this prices each one. A local miss costs
/// `base_cycles` (the random or sequential memory latency); a remote
/// miss additionally pays the NUMA hop `remote_extra_cycles`. Because
/// `remote_fraction` is derived from the static `NumaPlacement` (a pure
/// function of address ranges, never of host scheduling), the blended
/// price — and hence every per-socket cost estimate built on it — is
/// deterministic.
pub fn remote_access_cycles(
    base_cycles: f64,
    remote_extra_cycles: f64,
    remote_fraction: f64,
) -> f64 {
    let rf = remote_fraction.clamp(0.0, 1.0);
    base_cycles + rf * remote_extra_cycles
}

/// Fraction of touched lines whose predecessor line was *not* touched —
/// the "random" (non-sequential) share of the access stream, used by the
/// cycle model to blend sequential and random memory latency.
pub fn random_line_fraction(geom: &CacheGeometry, density: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&density),
        "density out of range: {density}"
    );
    let v = geom.values_per_line();
    // P(previous line untouched) under independent per-line touch prob.
    (1.0 - density).powf(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEOM: CacheGeometry = CacheGeometry {
        line_bytes: 64,
        value_bytes: 4,
    };

    #[test]
    fn geometry_basics() {
        assert_eq!(GEOM.values_per_line(), 16.0);
        assert_eq!(GEOM.lines(1600), 100.0);
        assert_eq!(GEOM.lines(1601), 101.0);
    }

    #[test]
    fn full_density_touches_every_line_once() {
        assert_eq!(touched_lines(&GEOM, 16_000, 1.0), 1000.0);
        assert_eq!(l3_accesses(&GEOM, 16_000, 1.0), 1000.0);
    }

    #[test]
    fn zero_density_touches_nothing() {
        assert_eq!(touched_lines(&GEOM, 16_000, 0.0), 0.0);
        assert_eq!(l3_accesses(&GEOM, 16_000, 0.0), 0.0);
    }

    #[test]
    fn sparse_access_double_counts() {
        // At very low density, l3_accesses ≈ 2 × touched lines.
        let d = 0.001;
        let touched = touched_lines(&GEOM, 1_600_000, d);
        let l3 = l3_accesses(&GEOM, 1_600_000, d);
        let ratio = l3 / touched;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn saturates_around_twenty_percent() {
        // Figure 2: "For a selectivity larger than 20%, each cache line is
        // accessed and thus the number of cache line accesses remains
        // constant."
        let at_20 = l3_accesses(&GEOM, 1_600_000, 0.2);
        let at_100 = l3_accesses(&GEOM, 1_600_000, 1.0);
        assert!(at_20 / at_100 > 0.99, "{}", at_20 / at_100);
    }

    #[test]
    fn monotone_in_density() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let d = f64::from(i) / 100.0;
            let l3 = l3_accesses(&GEOM, 100_000, d);
            assert!(l3 >= prev);
            prev = l3;
        }
    }

    #[test]
    fn modified_model_dominates_unmodified() {
        for d in [0.01, 0.05, 0.2, 0.7] {
            assert!(l3_accesses(&GEOM, 100_000, d) >= l3_accesses_unmodified(&GEOM, 100_000, d));
        }
    }

    #[test]
    fn plan_sums_columns() {
        let total = plan_l3_accesses(&GEOM, 16_000, &[1.0, 0.5]);
        let a = l3_accesses(&GEOM, 16_000, 1.0);
        let b = l3_accesses(&GEOM, 16_000, 0.5);
        assert!((total - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn remote_class_interpolates_between_local_and_full_hop() {
        assert_eq!(remote_access_cycles(180.0, 90.0, 0.0), 180.0);
        assert_eq!(remote_access_cycles(180.0, 90.0, 1.0), 270.0);
        assert_eq!(remote_access_cycles(180.0, 90.0, 0.5), 225.0);
        // Out-of-range fractions clamp rather than extrapolate.
        assert_eq!(remote_access_cycles(24.0, 90.0, 2.0), 114.0);
    }

    #[test]
    fn random_fraction_extremes() {
        assert_eq!(random_line_fraction(&GEOM, 1.0), 0.0);
        assert_eq!(random_line_fraction(&GEOM, 0.0), 1.0);
        let mid = random_line_fraction(&GEOM, 0.05);
        assert!(mid > 0.3 && mid < 0.6, "mid = {mid}");
    }
}
