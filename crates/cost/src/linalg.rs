//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting for the small systems the Markov model produces (≤ 17
//! unknowns). Written in-house to keep the dependency surface at zero.

/// Solve `A·x = b` in place; `a` is row-major `n × n`.
///
/// Returns `None` if the matrix is (numerically) singular.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in &a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    for col in 0..n {
        // Partial pivoting: bring the largest |value| into the pivot slot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        let b_col = b[col];
        let (pivot_part, rest) = a.split_at_mut(col + 1);
        let pivot_row_vals = &pivot_part[col];
        for (a_row, b_row) in rest.iter_mut().zip(b.iter_mut().skip(col + 1)) {
            let factor = a_row[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (av, &pv) in a_row[col..].iter_mut().zip(&pivot_row_vals[col..]) {
                *av -= factor * pv;
            }
            *b_row -= factor * b_col;
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero in the (0,0) slot forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn three_by_three() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(a, vec![8.0, -11.0, -3.0]).unwrap();
        for (got, want) in x.iter().zip([2.0, 3.0, -1.0]) {
            assert!((got - want).abs() < 1e-9, "{x:?}");
        }
    }
}
