//! The Markov-chain branch misprediction model of Section 3.2.
//!
//! An n-state saturating branch predictor is a birth–death Markov chain:
//! with probability `p` (the selectivity — a qualifying tuple makes the
//! branch *not taken*, Section 2.1) the automaton steps towards the
//! "strongly not taken" end, with probability `1 − p` towards "strongly
//! taken" (Figure 5). The stationary distribution yields the probability
//! that the predictor sits in a taken- or not-taken-predicting state, and
//! Equations 5a–5f split right and wrong predictions by actual direction.
//!
//! The distribution has the closed form `π_i ∝ ((1−p)/p)^i` (detailed
//! balance of a birth–death chain); [`ChainSpec::stationary_linear`]
//! re-derives it by solving the balance equations (the paper's Equations
//! 4a–4g) with the in-house linear solver, and the tests pin both against
//! each other.

use crate::linalg;

/// An n-state chain with a configurable prediction split.
///
/// `not_taken_states` is the number of leftmost states predicting *not
/// taken*; the paper's `+1NT` variants use `states/2 + 1`, the `+1T`
/// variants `states/2` on an odd state count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSpec {
    /// Total number of states (2–16).
    pub states: u8,
    /// Leftmost states predicting "not taken".
    pub not_taken_states: u8,
}

/// Per-branch probabilities derived from the stationary distribution, all
/// conditioned on one dynamic branch execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchProbabilities {
    /// Probability the predictor predicts "taken" (`BTak` in the paper).
    pub predict_taken: f64,
    /// Probability the predictor predicts "not taken" (`BNotTak`).
    pub predict_not_taken: f64,
    /// Taken branch, predicted not taken (`BTakMP`, Eq. 5a).
    pub mp_taken: f64,
    /// Taken branch, predicted taken (`BTakRP`, Eq. 5b).
    pub rp_taken: f64,
    /// Not-taken branch, predicted taken (`BNotTakMP`, Eq. 5c).
    pub mp_not_taken: f64,
    /// Not-taken branch, predicted not taken (`BNotTakRP`, Eq. 5d).
    pub rp_not_taken: f64,
}

impl BranchProbabilities {
    /// Total misprediction probability (`BMP`; the paper's Eq. 5e contains
    /// the obvious typo `BTakMP + BNotTakRP` — the sum of the two
    /// misprediction events is meant).
    pub fn mp_total(&self) -> f64 {
        self.mp_taken + self.mp_not_taken
    }

    /// Total right-prediction probability (`BRP`).
    pub fn rp_total(&self) -> f64 {
        self.rp_taken + self.rp_not_taken
    }
}

impl ChainSpec {
    /// The six-state chain the paper selects ("we use a six state markov
    /// chain in the remainder of this paper").
    pub const SIX: ChainSpec = ChainSpec {
        states: 6,
        not_taken_states: 3,
    };

    /// The four-state chain that fits AMD CPUs best (Section 3.2).
    pub const FOUR: ChainSpec = ChainSpec {
        states: 4,
        not_taken_states: 2,
    };

    /// An even-split chain with `states` states.
    pub fn even(states: u8) -> Self {
        assert!(
            states >= 2 && states % 2 == 0,
            "even() needs an even state count"
        );
        Self {
            states,
            not_taken_states: states / 2,
        }
    }

    /// An odd chain with the extra state on the *taken* side (`+1T`).
    pub fn plus_one_taken(states: u8) -> Self {
        assert!(
            states >= 3 && states % 2 == 1,
            "+1T needs an odd state count"
        );
        Self {
            states,
            not_taken_states: states / 2,
        }
    }

    /// An odd chain with the extra state on the *not-taken* side (`+1NT`).
    pub fn plus_one_not_taken(states: u8) -> Self {
        assert!(
            states >= 3 && states % 2 == 1,
            "+1NT needs an odd state count"
        );
        Self {
            states,
            not_taken_states: states / 2 + 1,
        }
    }

    /// Label as used in Figure 3's legend.
    pub fn label(&self) -> String {
        let n = self.states;
        let k = self.not_taken_states;
        if u16::from(k) * 2 == u16::from(n) {
            format!("{n} States")
        } else if u16::from(k) * 2 > u16::from(n) {
            format!("{n} States (+1NT)")
        } else {
            format!("{n} States (+1T)")
        }
    }

    fn validate(&self) {
        assert!(
            (2..=16).contains(&self.states),
            "state count {} out of supported range",
            self.states
        );
        assert!(
            self.not_taken_states >= 1 && self.not_taken_states < self.states,
            "prediction split must leave states on both sides"
        );
    }

    /// Stationary distribution over states for selectivity `p` (probability
    /// of "not taken"), in closed form. State 0 is "strongly not taken".
    pub fn stationary(&self, p: f64) -> Vec<f64> {
        self.validate();
        assert!((0.0..=1.0).contains(&p), "selectivity out of range: {p}");
        let n = self.states as usize;
        // Degenerate endpoints: all mass in a corner state.
        if p <= 0.0 {
            let mut v = vec![0.0; n];
            v[n - 1] = 1.0;
            return v;
        }
        if p >= 1.0 {
            let mut v = vec![0.0; n];
            v[0] = 1.0;
            return v;
        }
        // π_{i+1}/π_i = (1-p)/p; normalize the geometric sequence.
        let r = (1.0 - p) / p;
        let mut v = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut cur = 1.0;
        for _ in 0..n {
            v.push(cur);
            acc += cur;
            cur *= r;
        }
        for x in &mut v {
            *x /= acc;
        }
        v
    }

    /// Stationary distribution computed by solving the balance equations
    /// `π·P = π`, `Σπ = 1` (the route of the paper's Equations 4a–4g).
    /// Slower; exists to cross-validate [`ChainSpec::stationary`].
    pub fn stationary_linear(&self, p: f64) -> Vec<f64> {
        self.validate();
        let n = self.states as usize;
        if p <= 0.0 || p >= 1.0 {
            return self.stationary(p);
        }
        // Build (P^T - I) with the last row replaced by the normalization.
        // Each column i scatters into rows left/right/i, so the index loop
        // is the natural shape here.
        let mut a = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            // From state i: not taken (prob p) -> max(i-1, 0);
            //               taken (prob 1-p)  -> min(i+1, n-1).
            let left = i.saturating_sub(1);
            let right = (i + 1).min(n - 1);
            a[left][i] += p;
            a[right][i] += 1.0 - p;
            a[i][i] -= 1.0;
        }
        for x in a[n - 1].iter_mut() {
            *x = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        linalg::solve(a, b).expect("balance system is non-singular for 0<p<1")
    }

    /// Per-branch probabilities (Equations 5a–5f) at selectivity `p`.
    pub fn probabilities(&self, p: f64) -> BranchProbabilities {
        let pi = self.stationary(p);
        let k = self.not_taken_states as usize;
        let predict_not_taken: f64 = pi[..k].iter().sum();
        let predict_taken = 1.0 - predict_not_taken;
        BranchProbabilities {
            predict_taken,
            predict_not_taken,
            mp_taken: (1.0 - p) * predict_not_taken,
            rp_taken: (1.0 - p) * predict_taken,
            mp_not_taken: p * predict_taken,
            rp_not_taken: p * predict_not_taken,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_sums_to_one() {
        for spec in [ChainSpec::SIX, ChainSpec::FOUR, ChainSpec::even(8)] {
            for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let s: f64 = spec.stationary(p).iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "{spec:?} p={p}: {s}");
            }
        }
    }

    #[test]
    fn closed_form_matches_linear_solve() {
        for spec in [
            ChainSpec::SIX,
            ChainSpec::FOUR,
            ChainSpec::even(2),
            ChainSpec::even(8),
            ChainSpec::plus_one_taken(5),
            ChainSpec::plus_one_not_taken(7),
        ] {
            for p in [0.05, 0.3, 0.5, 0.77, 0.99] {
                let a = spec.stationary(p);
                let b = spec.stationary_linear(p);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-9, "{spec:?} p={p}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn symmetric_chain_is_symmetric_at_half() {
        let pi = ChainSpec::SIX.stationary(0.5);
        for &p in pi.iter().take(6) {
            assert!((p - 1.0 / 6.0).abs() < 1e-12);
        }
        let pr = ChainSpec::SIX.probabilities(0.5);
        assert!((pr.predict_taken - 0.5).abs() < 1e-12);
        // Worst case: 25% mispredicted in each direction.
        assert!((pr.mp_total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extreme_selectivities_predict_perfectly() {
        for p in [0.0, 1.0] {
            let pr = ChainSpec::SIX.probabilities(p);
            assert!(pr.mp_total() < 1e-12, "p={p}: {pr:?}");
        }
    }

    #[test]
    fn low_selectivity_mispredicts_the_qualifying_minority() {
        // p = 0.1: predictor sits in taken states; mispredictions are
        // dominated by not-taken (qualifying) branches, close to p itself.
        let pr = ChainSpec::SIX.probabilities(0.1);
        assert!(pr.mp_not_taken > pr.mp_taken * 5.0, "{pr:?}");
        assert!((pr.mp_not_taken - 0.1).abs() < 0.02);
    }

    #[test]
    fn probabilities_are_a_partition() {
        for p in [0.2, 0.5, 0.8] {
            let pr = ChainSpec::SIX.probabilities(p);
            assert!((pr.mp_total() + pr.rp_total() - 1.0).abs() < 1e-12);
            // Taken events sum to 1-p, not-taken events to p.
            assert!((pr.mp_taken + pr.rp_taken - (1.0 - p)).abs() < 1e-12);
            assert!((pr.mp_not_taken + pr.rp_not_taken - p).abs() < 1e-12);
        }
    }

    #[test]
    fn more_states_mean_fewer_mispredictions_near_half() {
        // Hysteresis: longer chains absorb noise better for biased streams.
        let p = 0.3;
        let mp2 = ChainSpec::even(2).probabilities(p).mp_total();
        let mp4 = ChainSpec::even(4).probabilities(p).mp_total();
        let mp8 = ChainSpec::even(8).probabilities(p).mp_total();
        assert!(mp2 > mp4 && mp4 > mp8, "{mp2} {mp4} {mp8}");
    }

    #[test]
    fn uneven_chains_bias_the_boundary() {
        // +1NT predicts not-taken more often than +1T at the same p.
        let nt = ChainSpec::plus_one_not_taken(5).probabilities(0.5);
        let t = ChainSpec::plus_one_taken(5).probabilities(0.5);
        assert!(nt.predict_not_taken > t.predict_not_taken);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(ChainSpec::SIX.label(), "6 States");
        assert_eq!(ChainSpec::plus_one_taken(5).label(), "5 States (+1T)");
        assert_eq!(ChainSpec::plus_one_not_taken(7).label(), "7 States (+1NT)");
    }

    #[test]
    #[should_panic(expected = "selectivity out of range")]
    fn rejects_bad_selectivity() {
        let _ = ChainSpec::SIX.stationary(1.5);
    }
}
