//! The combined counter predictor — the model side of Equation 10.
//!
//! Given a hypothesis about how many tuples survive each predicate of a
//! PEO, predict the four counters the optimizer samples: branches not
//! taken, mispredicted taken branches, mispredicted not-taken branches,
//! and L3 accesses. The selectivity estimator searches the survivor space
//! for the hypothesis whose predicted counters match the sampled ones.
//!
//! The survivor ("access") parameterization follows Section 4.1: `a_j` is
//! the number of tuples qualifying at predicate `j`, i.e. the number of
//! accesses the paper attributes to column `j`; selectivities fall out as
//! `p_j = a_j / a_{j-1}` with `a_0 = tupsin`.

use crate::branch_costs::estimate_peo_branches;
use crate::cache_model::{l3_accesses, CacheGeometry};
use crate::join_model::{random_misses_f, sequential_misses_f, JoinGeometry};
use crate::markov::ChainSpec;

/// A foreign-key join filter at one plan position: per surviving tuple the
/// stage loads the FK (covered by the position's `value_bytes` entry like
/// any other column read) and then probes the dimension tuple it
/// addresses. The probe's cache behaviour is what distinguishes a cheap
/// co-clustered join from an LLC-thrashing one (Sections 5.5–5.6), so the
/// geometry carries the Equation-1 inputs plus the *measured* clustering
/// of the probe stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeGeometry {
    /// The probed (dimension) relation relative to the LLC — the inputs of
    /// Equations 1 and 2.
    pub relation: JoinGeometry,
    /// Capacity in bytes of the cache level *above* the LLC (L2): probes
    /// into a relation resident there never produce L3 traffic.
    pub upper_cache_bytes: f64,
    /// Clustering of the probe stream in `[0, 1]`: `1` = uniform random
    /// (Equation 1 applies untouched), `0` = perfectly co-clustered
    /// (near-sequential). Runs start at the pessimistic `1` and calibrate
    /// the value from measured counters.
    pub clustering: f64,
    /// Fraction of the probed relation homed on a *remote* socket
    /// relative to the executing core, in `[0, 1]`. `0` (the single-socket
    /// default) prices every miss at local latency; a core probing a dim
    /// pinned to the other socket sees `1`. Derived from the pool's
    /// `NumaPlacement` — static topology knowledge, so per-socket cost
    /// estimates stay deterministic.
    pub remote_fraction: f64,
}

impl ProbeGeometry {
    /// A probe with everything unknown assumed worst-case random (but
    /// local — remote pricing is opt-in via the placement).
    pub fn random(relation: JoinGeometry, upper_cache_bytes: f64) -> Self {
        Self {
            relation,
            upper_cache_bytes,
            clustering: 1.0,
            remote_fraction: 0.0,
        }
    }

    /// Expected L3 accesses (demand + buddy prefetch, the paper's
    /// Section 2.2.2 definition) for `r` probes.
    ///
    /// A random probe into a relation that outgrows the upper cache always
    /// performs one L3 lookup and — the buddy line being useless — one
    /// prefetch lookup, independent of whether the *relation* fits the
    /// LLC: `2·r`. A co-clustered stream walks the relation's lines in
    /// order, costing one demand and one prefetch lookup per 2-line buddy
    /// pair: one access per touched line. The measured clustering blends
    /// the two regimes.
    pub fn l3_accesses(&self, r: f64) -> f64 {
        let r = r.max(0.0);
        if self.relation.relation_bytes() <= self.upper_cache_bytes {
            return 0.0;
        }
        let random = 2.0 * r;
        let sequential = sequential_misses_f(&self.relation, r);
        self.clustering * random + (1.0 - self.clustering) * sequential
    }

    /// Expected L3 *misses* for `r` probes: the Equation-1 random miss
    /// count blended against the sequential (compulsory-only) count.
    pub fn l3_misses(&self, r: f64) -> f64 {
        let r = r.max(0.0);
        if self.relation.relation_bytes() <= self.upper_cache_bytes {
            return 0.0;
        }
        self.clustering * random_misses_f(&self.relation, r)
            + (1.0 - self.clustering) * sequential_misses_f(&self.relation, r)
    }
}

/// Static shape of the plan whose counters are being predicted.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGeometry {
    /// Input tuples of the sampled interval.
    pub n_input: u64,
    /// Value width in bytes of each predicate's column, in evaluation
    /// order.
    pub value_bytes: Vec<u32>,
    /// Identity of each predicate's underlying column, in evaluation
    /// order: positions sharing an id read the *same* column (e.g. the two
    /// bounds of a between predicate). A repeated read is cache-resident
    /// within a vector, so only the first read of a column costs memory
    /// accesses — the plan shape is static knowledge, so using it keeps
    /// the optimizer non-invasive.
    pub column_ids: Vec<usize>,
    /// Widths of the aggregate columns read for qualifying tuples that are
    /// *not* already read by a predicate (one entry per fresh column).
    pub agg_bytes: Vec<u32>,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Branch predictor model.
    pub chain: ChainSpec,
    /// Per-position dimension probe for foreign-key join-filter stages
    /// (`None` for plain selections). Either empty (a pure multi-selection
    /// plan) or one entry per evaluation position.
    pub probes: Vec<Option<ProbeGeometry>>,
}

impl PlanGeometry {
    /// A uniform geometry: `preds` predicates over distinct 4-byte columns
    /// with a 4-byte aggregate, 64-byte lines, six-state chain.
    pub fn uniform_i32(n_input: u64, preds: usize) -> Self {
        Self {
            n_input,
            value_bytes: vec![4; preds],
            column_ids: (0..preds).collect(),
            agg_bytes: vec![4],
            line_bytes: 64,
            chain: ChainSpec::SIX,
            probes: Vec::new(),
        }
    }

    /// Number of predicates.
    pub fn predicates(&self) -> usize {
        self.value_bytes.len()
    }

    /// The probe at evaluation position `j`, if that stage is a join
    /// filter (an empty `probes` vector means an all-selection plan).
    pub fn probe(&self, j: usize) -> Option<&ProbeGeometry> {
        self.probes.get(j).and_then(Option::as_ref)
    }

    /// Whether evaluation position `j` is the first to read its column.
    pub fn first_read(&self, j: usize) -> bool {
        self.column_ids[..j]
            .iter()
            .all(|&c| c != self.column_ids[j])
    }
}

/// Predicted counter values for one survivor hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterEstimate {
    /// Branches not taken (= Σ survivors, Section 4.1).
    pub bnt: f64,
    /// Branches taken, including the loop back-edge.
    pub bt: f64,
    /// Mispredicted taken branches.
    pub mp_taken: f64,
    /// Mispredicted not-taken branches.
    pub mp_not_taken: f64,
    /// L3 accesses (demand + prefetch) across all touched columns.
    pub l3_accesses: f64,
}

/// Selectivities implied by a survivor vector (`p_j = a_j / a_{j-1}`,
/// clamped into `[0, 1]` so the model stays defined off the feasible
/// manifold during optimization).
///
/// A predicate whose input stream is empty is unidentifiable; it reports
/// selectivity `1.0` ("no evidence it filters anything") so that the
/// ascending-selectivity reorder pushes it to the back instead of
/// rewarding it for work it never did.
pub fn survivors_to_selectivities(n_input: u64, survivors: &[f64]) -> Vec<f64> {
    let mut prev = n_input as f64;
    survivors
        .iter()
        .map(|&a| {
            let p = if prev <= 0.0 {
                1.0
            } else {
                (a / prev).clamp(0.0, 1.0)
            };
            prev = a.max(0.0);
            p
        })
        .collect()
}

/// Predict all counters for the survivor hypothesis `survivors`
/// (`survivors.len()` must equal the number of predicates).
pub fn estimate_counters(geom: &PlanGeometry, survivors: &[f64]) -> CounterEstimate {
    assert_eq!(
        survivors.len(),
        geom.predicates(),
        "one survivor count per predicate required"
    );
    assert_eq!(
        geom.column_ids.len(),
        geom.predicates(),
        "one column id per predicate required"
    );
    assert!(
        geom.probes.is_empty() || geom.probes.len() == geom.predicates(),
        "probes must be empty or one per predicate"
    );
    let sels = survivors_to_selectivities(geom.n_input, survivors);
    let branches = estimate_peo_branches(geom.n_input, &sels, &geom.chain, true);

    // Column read densities: predicate j reads its column for every tuple
    // that survived predicates 0..j. Densities only shrink along the
    // chain, so a column's first read dominates and repeated reads of the
    // same column are cache-resident — they cost no further L3 accesses.
    // A join-filter stage additionally probes its dimension once per
    // reaching tuple, priced by the stage's [`ProbeGeometry`].
    let n = geom.n_input as f64;
    let mut l3 = 0.0;
    let mut density = 1.0;
    let mut reaching = n;
    for (j, &width) in geom.value_bytes.iter().enumerate() {
        if geom.first_read(j) {
            let cg = CacheGeometry {
                line_bytes: geom.line_bytes,
                value_bytes: width,
            };
            l3 += l3_accesses(&cg, geom.n_input, density);
        }
        if let Some(probe) = geom.probe(j) {
            l3 += probe.l3_accesses(reaching);
        }
        density = if n > 0.0 {
            (survivors[j] / n).clamp(0.0, 1.0)
        } else {
            0.0
        };
        reaching = survivors[j].clamp(0.0, reaching);
    }
    for &width in &geom.agg_bytes {
        let cg = CacheGeometry {
            line_bytes: geom.line_bytes,
            value_bytes: width,
        };
        l3 += l3_accesses(&cg, geom.n_input, density);
    }

    CounterEstimate {
        bnt: branches.bnt,
        bt: branches.bt,
        mp_taken: branches.mp_taken,
        mp_not_taken: branches.mp_not_taken,
        l3_accesses: l3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivities_from_survivors() {
        let sels = survivors_to_selectivities(100, &[80.0, 70.0, 50.0, 10.0]);
        let want = [0.8, 0.875, 5.0 / 7.0, 0.2];
        for (got, want) in sels.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{sels:?}");
        }
    }

    #[test]
    fn non_monotone_survivors_clamp() {
        let sels = survivors_to_selectivities(100, &[50.0, 60.0]);
        assert_eq!(sels[1], 1.0);
    }

    #[test]
    fn bnt_equals_survivor_sum() {
        let geom = PlanGeometry::uniform_i32(100, 4);
        let est = estimate_counters(&geom, &[80.0, 70.0, 50.0, 10.0]);
        assert!((est.bnt - 210.0).abs() < 1e-6, "bnt = {}", est.bnt);
    }

    #[test]
    fn qualifying_identity_holds_in_model() {
        let geom = PlanGeometry::uniform_i32(1000, 2);
        let est = estimate_counters(&geom, &[500.0, 100.0]);
        // bt = failing (1000-500 + 500-100) + loop (1000) = 1900.
        assert!((est.bt - 1900.0).abs() < 1e-6);
        // 2n - bt = 100 = output.
        assert!((2000.0 - est.bt - 100.0).abs() < 1e-6);
    }

    #[test]
    fn distinct_orders_differ_in_some_counter() {
        // The distinguishability premise of Section 4.2: [40%, 20%] vs
        // [20%, 40%] differ in mispredicted not-taken branches.
        let geom = PlanGeometry::uniform_i32(1_000_000, 2);
        let a = estimate_counters(&geom, &[400_000.0, 80_000.0]);
        let b = estimate_counters(&geom, &[200_000.0, 80_000.0]);
        assert!((a.mp_not_taken - b.mp_not_taken).abs() > 1000.0);
    }

    #[test]
    fn l3_grows_with_survivors() {
        let geom = PlanGeometry::uniform_i32(1_000_000, 2);
        let low = estimate_counters(&geom, &[10_000.0, 1_000.0]);
        let high = estimate_counters(&geom, &[900_000.0, 800_000.0]);
        assert!(high.l3_accesses > low.l3_accesses);
    }

    #[test]
    #[should_panic(expected = "one survivor count per predicate")]
    fn arity_mismatch_panics() {
        let geom = PlanGeometry::uniform_i32(10, 2);
        let _ = estimate_counters(&geom, &[5.0]);
    }

    fn thrashing_probe(clustering: f64) -> ProbeGeometry {
        ProbeGeometry {
            relation: JoinGeometry {
                relation_tuples: 500_000,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: 1024 * 1024 / 64, // 1 MiB LLC vs 2 MB relation
            },
            upper_cache_bytes: 64.0 * 1024.0,
            clustering,
            remote_fraction: 0.0,
        }
    }

    #[test]
    fn random_probe_double_counts_accesses() {
        let p = thrashing_probe(1.0);
        let r = 10_000.0;
        assert!((p.l3_accesses(r) - 2.0 * r).abs() < 1e-9);
    }

    #[test]
    fn coclustered_probe_accesses_touched_lines_only() {
        let p = thrashing_probe(0.0);
        let r = 16_000.0;
        // 16 probes per 64 B line: 1000 touched lines.
        assert!((p.l3_accesses(r) - 1000.0).abs() < 1e-9);
        assert!(p.l3_misses(r) < thrashing_probe(1.0).l3_misses(r));
    }

    #[test]
    fn upper_cache_resident_probe_is_free() {
        let mut p = thrashing_probe(1.0);
        p.relation.relation_tuples = 1_000; // 4 KB < 64 KB L2
        assert_eq!(p.l3_accesses(50_000.0), 0.0);
        assert_eq!(p.l3_misses(50_000.0), 0.0);
    }

    #[test]
    fn join_stage_raises_predicted_l3() {
        let plain = PlanGeometry::uniform_i32(100_000, 2);
        let mut with_probe = plain.clone();
        with_probe.probes = vec![None, Some(thrashing_probe(1.0))];
        let survivors = [50_000.0, 10_000.0];
        let a = estimate_counters(&plain, &survivors);
        let b = estimate_counters(&with_probe, &survivors);
        // The second stage probes once per reaching tuple (the first
        // stage's survivors), double-counted: + 2 * 50_000.
        assert!((b.l3_accesses - a.l3_accesses - 100_000.0).abs() < 1.0);
        // Branch counters are untouched by the probe.
        assert_eq!(a.bnt, b.bnt);
        assert_eq!(a.mp_taken, b.mp_taken);
    }

    #[test]
    fn contended_share_raises_predicted_probe_misses() {
        // The socket model rebinds a probe's Equation-1 capacity to the
        // core's effective share: the prediction must see more misses as
        // a co-runner steals capacity, while access counts (demand +
        // buddy prefetch per probe) stay capacity-independent.
        let p = |share_bytes: u64| ProbeGeometry {
            relation: thrashing_probe(1.0).relation.with_cache_bytes(share_bytes),
            upper_cache_bytes: 64.0 * 1024.0,
            clustering: 1.0,
            remote_fraction: 0.0,
        };
        // Enough probes that both shares sit in Equation 1's thrashing
        // branch (at low probe counts the compulsory branch applies and
        // capacity is irrelevant).
        let r = 100_000.0;
        let full = p(1024 * 1024);
        let halved = p(512 * 1024);
        assert!(halved.l3_misses(r) > full.l3_misses(r));
        assert_eq!(halved.l3_accesses(r), full.l3_accesses(r));
        // Equation 1's thrashing branch: miss probability tracks
        // 1 − share/relation.
        let expect = r * (1.0 - (512.0 * 1024.0) / (2_000_000.0));
        assert!((halved.l3_misses(r) - expect).abs() < 1.0);
    }

    #[test]
    fn clustering_interpolates_probe_accesses() {
        let mut geom = PlanGeometry::uniform_i32(100_000, 1);
        let survivors = [40_000.0];
        geom.probes = vec![Some(thrashing_probe(0.0))];
        let lo = estimate_counters(&geom, &survivors).l3_accesses;
        geom.probes = vec![Some(thrashing_probe(1.0))];
        let hi = estimate_counters(&geom, &survivors).l3_accesses;
        geom.probes = vec![Some(thrashing_probe(0.5))];
        let mid = estimate_counters(&geom, &survivors).l3_accesses;
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        assert!((mid - (lo + hi) / 2.0).abs() < 1e-6);
    }
}
