//! The equi-join cache-miss model of Section 3.1, Equations 1 and 2.
//!
//! For a sequence of join operators, the relative cost is determined by
//! the number of accesses into the joined relation and their locality.
//! The paper replaces the original Manegold et al. miss equation with one
//! grounded in the external memory model [1]:
//!
//! ```text
//! Mr_i = C_i                                   if C_i <  #_i   (fits in cache)
//!        r · (1 − (#_i · B_i) / (R.n · R.w))   if C_i >= #_i   (thrashes)
//! ```
//!
//! with the number of accessed cache lines (Eq. 2)
//!
//! ```text
//! C_i = L · (1 − (1 − 1/L)^r),   L = R.n · R.w / B_i
//! ```
//!
//! Sections 5.5–5.6 use this prediction in reverse: if *measured* misses
//! fall far below the random-access prediction, the access pattern must be
//! co-clustered, and the join order can be flipped accordingly.

/// Geometry of the accessed (inner) relation relative to one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinGeometry {
    /// Tuples in the accessed relation (`R.n`).
    pub relation_tuples: u64,
    /// Width of one accessed tuple in bytes (`R.w`).
    pub tuple_bytes: u32,
    /// Cache line size in bytes (`B_i`).
    pub line_bytes: u32,
    /// Cache capacity in lines (`#_i`).
    pub cache_lines: u64,
}

impl JoinGeometry {
    /// Lines occupied by the relation.
    pub fn relation_lines(&self) -> f64 {
        (self.relation_tuples as f64 * f64::from(self.tuple_bytes) / f64::from(self.line_bytes))
            .ceil()
            .max(1.0)
    }

    /// Relation size in bytes.
    pub fn relation_bytes(&self) -> f64 {
        self.relation_tuples as f64 * f64::from(self.tuple_bytes)
    }

    /// Cache capacity in bytes.
    pub fn cache_bytes(&self) -> f64 {
        self.cache_lines as f64 * f64::from(self.line_bytes)
    }

    /// The same relation priced against a cache slice of `capacity_bytes`
    /// — how the socket model rebinds Equation 1 to a core's *effective*
    /// (contention-shrunken) LLC share instead of the configured socket
    /// capacity. At least one line survives, mirroring the partition's
    /// minimum-occupancy floor.
    pub fn with_cache_bytes(mut self, capacity_bytes: u64) -> Self {
        self.cache_lines = (capacity_bytes / u64::from(self.line_bytes)).max(1);
        self
    }
}

/// Equation 2: expected number of distinct cache lines touched by `r`
/// uniform random accesses into the relation.
pub fn accessed_lines(geom: &JoinGeometry, r: u64) -> f64 {
    accessed_lines_f(geom, r as f64)
}

/// [`accessed_lines`] over a fractional access count — the estimator
/// searches a continuous survivor space, so the model must stay smooth.
pub fn accessed_lines_f(geom: &JoinGeometry, r: f64) -> f64 {
    let lines = geom.relation_lines();
    lines * (1.0 - (1.0 - 1.0 / lines).powf(r.max(0.0)))
}

/// Equation 1: expected *random* cache misses at this level for `r`
/// uniform random accesses.
pub fn random_misses(geom: &JoinGeometry, r: u64) -> f64 {
    random_misses_f(geom, r as f64)
}

/// [`random_misses`] over a fractional access count.
pub fn random_misses_f(geom: &JoinGeometry, r: f64) -> f64 {
    let r = r.max(0.0);
    let ci = accessed_lines_f(geom, r);
    if ci < geom.cache_lines as f64 {
        // Relation working set fits: compulsory misses only.
        ci
    } else {
        // Thrashing: each access misses with probability
        // 1 − cache_bytes / relation_bytes.
        r * (1.0 - geom.cache_bytes() / geom.relation_bytes()).max(0.0)
    }
}

/// Expected misses for a *co-clustered* (near-sequential) access pattern:
/// every touched line is fetched exactly once, so misses equal the
/// sequentially touched lines `min(r·w/B, L)` — the "original model for
/// sequential cache misses".
pub fn sequential_misses(geom: &JoinGeometry, r: u64) -> f64 {
    sequential_misses_f(geom, r as f64)
}

/// [`sequential_misses`] over a fractional access count.
pub fn sequential_misses_f(geom: &JoinGeometry, r: f64) -> f64 {
    let touched = (r.max(0.0) * f64::from(geom.tuple_bytes) / f64::from(geom.line_bytes)).ceil();
    touched.min(geom.relation_lines())
}

/// Co-clusteredness score from measured counters (Sections 5.5–5.6):
/// `measured / predicted_random`. Values near 1 mean the access pattern is
/// as bad as random; values well below 1 reveal locality the optimizer can
/// exploit by running this join first.
pub fn clustering_ratio(geom: &JoinGeometry, r: u64, measured_misses: u64) -> f64 {
    let predicted = random_misses(geom, r);
    if predicted <= 0.0 {
        return 0.0;
    }
    measured_misses as f64 / predicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_relation() -> JoinGeometry {
        JoinGeometry {
            relation_tuples: 10_000_000,
            tuple_bytes: 4,
            line_bytes: 64,
            cache_lines: 15 * 1024 * 1024 / 64, // 15 MiB L3
        }
    }

    fn small_relation() -> JoinGeometry {
        JoinGeometry {
            relation_tuples: 10_000,
            tuple_bytes: 4,
            line_bytes: 64,
            cache_lines: 15 * 1024 * 1024 / 64,
        }
    }

    #[test]
    fn accessed_lines_saturates_at_relation_size() {
        let g = small_relation();
        let lines = g.relation_lines();
        assert!(accessed_lines(&g, 10_000_000) <= lines + 1e-9);
        assert!(accessed_lines(&g, 10_000_000) > lines * 0.99);
    }

    #[test]
    fn few_accesses_touch_roughly_that_many_lines() {
        let g = big_relation();
        let c = accessed_lines(&g, 100);
        assert!(c > 99.0 && c <= 100.0, "c = {c}");
    }

    #[test]
    fn cached_relation_has_compulsory_misses_only() {
        // 10k × 4B = 40 KiB fits in a 15 MiB cache.
        let g = small_relation();
        let m = random_misses(&g, 1_000_000);
        assert!(m <= g.relation_lines(), "m = {m}");
    }

    #[test]
    fn thrashing_relation_misses_proportionally() {
        // 40 MB relation in a 15 MiB cache: each access misses with
        // p = 1 − 15/40 ≈ 0.6067.
        let g = big_relation();
        let r = 1_000_000u64;
        let m = random_misses(&g, r);
        let expected = r as f64 * (1.0 - g.cache_bytes() / g.relation_bytes());
        assert!((m - expected).abs() < 1.0);
        assert!(m > 0.5 * r as f64);
    }

    #[test]
    fn sequential_misses_bounded_by_relation_lines() {
        let g = big_relation();
        assert!(sequential_misses(&g, u64::MAX / 1024) <= g.relation_lines());
        // 16 co-clustered accesses per line → one miss per 16 accesses.
        let m = sequential_misses(&g, 16_000);
        assert_eq!(m, 1000.0);
    }

    #[test]
    fn sequential_much_cheaper_than_random_when_thrashing() {
        let g = big_relation();
        let r = 1_000_000;
        assert!(sequential_misses(&g, r) * 5.0 < random_misses(&g, r));
    }

    #[test]
    fn clustering_ratio_discriminates() {
        let g = big_relation();
        let r = 1_000_000u64;
        let random_measurement = random_misses(&g, r) as u64;
        let clustered_measurement = sequential_misses(&g, r) as u64;
        assert!(clustering_ratio(&g, r, random_measurement) > 0.9);
        assert!(clustering_ratio(&g, r, clustered_measurement) < 0.2);
    }
}
