//! # popt-cost — the paper's hardware-conscious cost models (Section 3)
//!
//! Analytic models that predict, for a hypothesised set of per-predicate
//! selectivities, the performance-counter values a multi-selection query
//! will produce:
//!
//! * [`markov`] — the n-state saturating-counter **Markov chain** branch
//!   model (Figure 5, Equations 4a–4g) with the misprediction split of
//!   Equations 5a–5f, for any state count 2–16 including the uneven
//!   `+1T`/`+1NT` variants of Figure 3;
//! * [`piecewise`] — the earlier Zeuch et al. piecewise estimate
//!   (Equation 3), kept as the comparison baseline of Figure 6;
//! * [`branch_costs`] — composition of the per-branch model over a whole
//!   predicate evaluation order (Section 3.2, "we replace the number of
//!   input tuples by the number of output tuples of the previous
//!   predicate");
//! * [`cache_model`] — the extended Pirk et al. cache access model with
//!   the paper's *double-counted random misses* modification (Section 3.1);
//! * [`join_model`] — the equi-join cache-miss model of Equations 1–2,
//!   grounded in the external-memory model;
//! * [`estimate`] — the combined counter predictor the selectivity
//!   estimator inverts (the model side of Equation 10);
//! * [`cycles`] — a unified runtime estimate (instructions, misprediction
//!   penalties, memory stalls) used for plan analysis and the Figure 1
//!   style best/worst comparisons;
//! * [`linalg`] — a small dense linear solver used to cross-check the
//!   closed-form stationary distribution.
//!
//! All functions are pure and allocation-light; the estimator calls them
//! thousands of times per optimization run.

pub mod branch_costs;
pub mod cache_model;
pub mod cycles;
pub mod estimate;
pub mod join_model;
pub mod linalg;
pub mod markov;
pub mod piecewise;

pub use branch_costs::{estimate_peo_branches, PeoBranchEstimate, PredicateBranchEstimate};
pub use cache_model::CacheGeometry;
pub use estimate::{estimate_counters, CounterEstimate, PlanGeometry};
pub use markov::{BranchProbabilities, ChainSpec};
