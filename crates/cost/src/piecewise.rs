//! The piecewise branch misprediction estimate of Zeuch et al. [23]
//! (Equation 3), the baseline the paper's Markov model improves on.
//!
//! Below 50% selectivity the predictor settles on "taken" and mispredicts
//! every qualifying (not-taken) tuple; above 50% the mirror image holds:
//!
//! ```text
//! BRMP(p) = BNT(p)      if p <= 0.5
//!           BNT(1 - p)  if p >  0.5
//! ```
//!
//! which collapses to a misprediction *probability* of `min(p, 1-p)` per
//! branch. The model is exact at the extremes but overestimates around
//! p = 50% (Figure 6), which motivated the Markov chain.

/// Misprediction probability per branch under Equation 3.
pub fn mp_probability(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "selectivity out of range: {p}");
    p.min(1.0 - p)
}

/// Expected mispredictions for `n` tuples at selectivity `p`.
pub fn mp_count(n: u64, p: f64) -> f64 {
    n as f64 * mp_probability(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::ChainSpec;

    #[test]
    fn symmetric_around_half() {
        assert!((mp_probability(0.2) - mp_probability(0.8)).abs() < 1e-12);
        assert_eq!(mp_probability(0.5), 0.5);
        assert_eq!(mp_probability(0.0), 0.0);
        assert_eq!(mp_probability(1.0), 0.0);
    }

    #[test]
    fn overestimates_markov_near_half() {
        // The paper's stated weakness: "this estimation becomes inaccurate
        // in the selectivity range around 50%".
        let markov = ChainSpec::SIX.probabilities(0.5).mp_total();
        assert_eq!(mp_probability(0.5), 0.5);
        assert!(markov <= 0.5 + 1e-12);
        let markov_04 = ChainSpec::SIX.probabilities(0.4).mp_total();
        assert!((mp_probability(0.4) - markov_04).abs() > 0.01);
    }

    #[test]
    fn agrees_with_markov_at_extremes() {
        for p in [0.01, 0.05, 0.95, 0.99] {
            let markov = ChainSpec::SIX.probabilities(p).mp_total();
            assert!((mp_probability(p) - markov).abs() < 0.01, "p={p}");
        }
    }

    #[test]
    fn count_scales_with_tuples() {
        assert_eq!(mp_count(1000, 0.1), 100.0);
    }
}
