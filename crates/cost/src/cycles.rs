//! Unified runtime (cycle) estimates for multi-selection scans.
//!
//! Combines the branch model (misprediction penalties) and the cache model
//! (memory stalls, with the sequential/random latency blend) into a single
//! cost figure. Used for plan analysis and the Figure-1-style best/worst
//! comparisons; the *measured* counterpart is the `popt-cpu` simulator, so
//! tests only require this model to rank plans consistently with it.

use crate::branch_costs::estimate_peo_branches;
use crate::cache_model::{random_line_fraction, touched_lines, CacheGeometry};
use crate::estimate::{survivors_to_selectivities, PlanGeometry};

/// Cycle-accounting constants for the analytic model. Defaults mirror the
/// `popt-cpu` timing configuration and the engine's instruction charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleParams {
    /// Cycles per retired instruction.
    pub cpi: f64,
    /// Instructions per loop iteration (counter increment, bounds test).
    pub instr_loop: f64,
    /// Instructions per predicate evaluation (load, compare, jump).
    pub instr_per_eval: f64,
    /// Instructions per qualifying tuple (aggregate load + add).
    pub instr_agg: f64,
    /// Misprediction penalty in cycles.
    pub mp_penalty: f64,
    /// Memory stall for a line fetched on a random (non-adjacent) access.
    pub mem_random: f64,
    /// Memory stall for a line fetched sequentially (streamed).
    pub mem_sequential: f64,
    /// Extra stall when the line's home is a *remote* socket (the NUMA
    /// hop). Random misses pay it in full; sequential streams pay a
    /// quarter (the prefetcher hides most of the hop on linear scans).
    /// Mirrors `TimingConfig::memory_remote_extra_cycles`.
    pub mem_remote_extra: f64,
    /// Latency of a random access served by the LLC (a probe that misses
    /// L1/L2 but finds the relation resident in L3).
    pub llc_hit: f64,
    /// Core frequency in GHz (for millisecond conversion).
    pub frequency_ghz: f64,
}

impl Default for CycleParams {
    fn default() -> Self {
        Self {
            cpi: 0.5,
            instr_loop: 2.0,
            instr_per_eval: 4.0,
            instr_agg: 3.0,
            mp_penalty: 15.0,
            mem_random: 180.0,
            mem_sequential: 24.0,
            mem_remote_extra: 90.0,
            llc_hit: 30.0,
            frequency_ghz: 2.6,
        }
    }
}

/// Estimated cycles for scanning `geom.n_input` tuples under the survivor
/// hypothesis `survivors` (memory-resident table, i.e. every touched line
/// is fetched from memory).
pub fn scan_cycles(geom: &PlanGeometry, survivors: &[f64], params: &CycleParams) -> f64 {
    assert_eq!(survivors.len(), geom.predicates());
    let n = geom.n_input as f64;
    let sels = survivors_to_selectivities(geom.n_input, survivors);
    let branches = estimate_peo_branches(geom.n_input, &sels, &geom.chain, true);

    // Instruction stream: loop + one eval per tuple reaching each
    // predicate + aggregate work for qualifying tuples.
    let mut instr = n * params.instr_loop;
    let mut reaching = n;
    for &p in &sels {
        instr += reaching * params.instr_per_eval;
        reaching *= p;
    }
    instr += reaching * params.instr_agg;

    // Memory stalls: per column, touched lines blended between the random
    // and sequential latency by the predecessor-untouched probability.
    // Repeated reads of one column are cache-resident within a vector and
    // stall-free (mirroring the counter model's first-read accounting).
    let mut mem = 0.0;
    let mut density = 1.0;
    for (j, &width) in geom.value_bytes.iter().enumerate() {
        if geom.first_read(j) {
            let cg = CacheGeometry {
                line_bytes: geom.line_bytes,
                value_bytes: width,
            };
            mem += column_stall(&cg, geom.n_input, density, params);
        }
        density = (survivors[j] / n).clamp(0.0, 1.0);
    }
    for &width in &geom.agg_bytes {
        let cg = CacheGeometry {
            line_bytes: geom.line_bytes,
            value_bytes: width,
        };
        mem += column_stall(&cg, geom.n_input, density, params);
    }

    instr * params.cpi + branches.mp_total() * params.mp_penalty + mem
}

fn column_stall(cg: &CacheGeometry, n: u64, density: f64, params: &CycleParams) -> f64 {
    let lines = touched_lines(cg, n, density);
    let rf = random_line_fraction(cg, density);
    lines * (rf * params.mem_random + (1.0 - rf) * params.mem_sequential)
}

/// Estimated cycles per probe of a join-filter stage, blending the random
/// (Equation 1) and co-clustered regimes by the probe's measured
/// clustering. A relation resident above the LLC costs nothing here (its
/// stalls are upper-cache latencies absorbed by the instruction stream).
///
/// The LLC capacity this prices against is whatever the probe's
/// [`JoinGeometry`](crate::join_model::JoinGeometry) carries — under the
/// socket model that is the core's *effective* (contention-shrunken)
/// share, so a co-runner stealing capacity raises the predicted stall
/// and can flip the cost-per-tuple ranking that orders the pipeline.
///
/// Likewise the probe's `remote_fraction` prices the NUMA hop: the
/// fraction of the relation homed on another socket pays
/// [`CycleParams::mem_remote_extra`] on top of every miss that reaches
/// memory (quartered for co-clustered streams) — so the same dimension
/// can rank cheap on the socket that owns it and expensive on the other,
/// which is exactly the per-socket order divergence the progressive
/// loop discovers at runtime.
pub fn probe_stall_per_tuple(probe: &crate::estimate::ProbeGeometry, params: &CycleParams) -> f64 {
    let rel = &probe.relation;
    if rel.relation_bytes() <= probe.upper_cache_bytes {
        return 0.0;
    }
    // Random probe: misses the LLC with the thrashing probability of
    // Equation 1 (zero when the relation fits), paying full memory
    // latency — plus the remote surcharge for the off-socket share of
    // the relation; otherwise it is an LLC hit.
    let miss_p = if rel.relation_bytes() <= rel.cache_bytes() {
        0.0
    } else {
        (1.0 - rel.cache_bytes() / rel.relation_bytes()).max(0.0)
    };
    let remote = probe.remote_fraction.clamp(0.0, 1.0);
    let random = miss_p * (params.mem_random + remote * params.mem_remote_extra)
        + (1.0 - miss_p) * params.llc_hit;
    // Co-clustered probe: one streamed line fetch per B/w probes, the
    // remote share paying the quartered (prefetch-hidden) hop.
    let sequential = f64::from(rel.tuple_bytes) / f64::from(rel.line_bytes)
        * (params.mem_sequential + remote * params.mem_remote_extra / 4.0);
    probe.clustering * random + (1.0 - probe.clustering) * sequential
}

/// Estimated cost per *input tuple* of each stage, in evaluation order —
/// the ranking signal for operator reordering (Sections 5.5–5.6).
///
/// Each stage is priced as if it ran at the front of the pipeline
/// (density 1), making the figure an intrinsic per-tuple rate that is
/// comparable across stages: instruction work, expected misprediction
/// penalty at the stage's selectivity, the streamed read of the stage's
/// own column, and — for join filters — the dimension probe. The caller
/// combines these rates with selectivities via the classic `c/(1−s)` rank
/// (see `popt-core`'s `order_by_cost_per_tuple`); ordering by raw
/// selectivity would make an LLC-thrashing probe look as cheap as a
/// comparison.
pub fn stage_costs_per_input_tuple(
    geom: &PlanGeometry,
    stage_instructions: &[f64],
    selectivities: &[f64],
    params: &CycleParams,
) -> Vec<f64> {
    assert_eq!(stage_instructions.len(), geom.predicates());
    assert_eq!(selectivities.len(), geom.predicates());
    (0..geom.predicates())
        .map(|j| {
            let s = selectivities[j].clamp(0.0, 1.0);
            let mp = geom.chain.probabilities(s).mp_total();
            let column =
                f64::from(geom.value_bytes[j]) / f64::from(geom.line_bytes) * params.mem_sequential;
            let probe = geom
                .probe(j)
                .map_or(0.0, |p| probe_stall_per_tuple(p, params));
            stage_instructions[j] * params.cpi + mp * params.mp_penalty + column + probe
        })
        .collect()
}

/// [`scan_cycles`] converted to simulated milliseconds.
pub fn scan_millis(geom: &PlanGeometry, survivors: &[f64], params: &CycleParams) -> f64 {
    scan_cycles(geom, survivors, params) / (params.frequency_ghz * 1e6)
}

/// Estimated cycles for the whole plan under the survivor hypothesis:
/// [`scan_cycles`] (instructions, mispredictions, streamed column reads)
/// *plus* the join-probe stalls the scan model deliberately omits — each
/// probe stage pays [`probe_stall_per_tuple`] for every tuple reaching
/// it. This is the model side of the drift observatory's
/// cycles-per-tuple residual: divide by `geom.n_input` and compare
/// against a measured window's cycles per tuple.
pub fn plan_cycles(geom: &PlanGeometry, survivors: &[f64], params: &CycleParams) -> f64 {
    let mut cycles = scan_cycles(geom, survivors, params);
    let mut reaching = geom.n_input as f64;
    for (j, &s) in survivors.iter().enumerate() {
        if let Some(probe) = geom.probe(j) {
            cycles += reaching * probe_stall_per_tuple(probe, params);
        }
        reaching = s.max(0.0);
    }
    cycles
}

/// Wall-clock cycles of a parallel region: the busiest worker bounds the
/// region's end (morsel-driven execution has no other barrier). Defined
/// for degenerate inputs: an empty worker list (or a pool that recorded
/// zero cycles — empty or all-stale morsel streams) is a zero-length
/// region, so the wall clock is 0 rather than an error.
pub fn fleet_wall_cycles(per_worker_cycles: &[u64]) -> u64 {
    per_worker_cycles.iter().copied().max().unwrap_or(0)
}

/// Wall-clock speedup of a parallel run over a reference (typically the
/// same workload on one worker): `reference / max(per-worker)`.
///
/// When the pool recorded zero cycles (empty or all-stale morsel
/// streams), the ratio is `0/0`-shaped; a zero-length region completes
/// neither faster nor slower than any reference, so the defined value is
/// `1.0` — parity — rather than a division by zero (or the misleading
/// `0.0`, which reads as "infinitely slower" to a scaling figure).
pub fn fleet_speedup(reference_cycles: u64, per_worker_cycles: &[u64]) -> f64 {
    let wall = fleet_wall_cycles(per_worker_cycles);
    if wall == 0 {
        1.0
    } else {
        reference_cycles as f64 / wall as f64
    }
}

/// Wall-clock cycles of an *interleaved* serving region: each worker's
/// busy cycles plus the idle gaps it spent waiting for admissible work
/// (open-loop arrivals leave the pool idle between bursts). The busiest
/// wall-clock position across workers bounds the region; with no idle
/// gaps this degenerates to [`fleet_wall_cycles`].
pub fn fleet_wall_cycles_interleaved(
    per_worker_busy_cycles: &[u64],
    per_worker_idle_cycles: &[u64],
) -> u64 {
    assert_eq!(
        per_worker_busy_cycles.len(),
        per_worker_idle_cycles.len(),
        "one idle entry per worker"
    );
    per_worker_busy_cycles
        .iter()
        .zip(per_worker_idle_cycles)
        .map(|(&busy, &idle)| busy + idle)
        .max()
        .unwrap_or(0)
}

/// Occupancy of an interleaved serving region: busy cycles as a fraction
/// of the total core-cycles the region's wall clock made available
/// (`wall × workers`). A zero-length region wastes no capacity, so its
/// occupancy is the defined value `1.0` rather than a division by zero.
pub fn fleet_occupancy(per_worker_busy_cycles: &[u64], per_worker_idle_cycles: &[u64]) -> f64 {
    let wall = fleet_wall_cycles_interleaved(per_worker_busy_cycles, per_worker_idle_cycles);
    if wall == 0 {
        return 1.0;
    }
    let busy: u64 = per_worker_busy_cycles.iter().sum();
    busy as f64 / (wall * per_worker_busy_cycles.len() as u64) as f64
}

/// Per-socket wall clock of a parallel region: workers are split into
/// contiguous socket blocks (`socket_of(w) = w * sockets / workers`,
/// matching `CpuPool::socket_of`) and each socket's wall is its busiest
/// member. The region's wall clock is the busiest core of the busiest
/// socket — `max` over this vector — which equals the flat
/// [`fleet_wall_cycles`]; the per-socket split is the reporting view.
pub fn fleet_wall_cycles_per_socket(per_worker_cycles: &[u64], sockets: usize) -> Vec<u64> {
    assert!(sockets >= 1, "at least one socket");
    let n = per_worker_cycles.len();
    let mut walls = vec![0u64; sockets];
    for (w, &cycles) in per_worker_cycles.iter().enumerate() {
        let s = w * sockets / n;
        walls[s] = walls[s].max(cycles);
    }
    walls
}

/// Per-socket occupancy of a parallel region, measured against the
/// *region's* wall clock (the busiest core anywhere): a socket whose
/// members finish early idles until the busiest socket drains, so its
/// occupancy reflects cross-socket imbalance, not just its own. A
/// zero-length region is fully occupied by definition.
pub fn fleet_occupancy_per_socket(per_worker_cycles: &[u64], sockets: usize) -> Vec<f64> {
    assert!(sockets >= 1, "at least one socket");
    let wall = fleet_wall_cycles(per_worker_cycles);
    let n = per_worker_cycles.len();
    let mut busy = vec![0u64; sockets];
    let mut members = vec![0u64; sockets];
    for (w, &cycles) in per_worker_cycles.iter().enumerate() {
        let s = w * sockets / n;
        busy[s] += cycles;
        members[s] += 1;
    }
    busy.iter()
        .zip(&members)
        .map(|(&b, &m)| {
            if wall == 0 || m == 0 {
                1.0
            } else {
                b as f64 / (wall * m) as f64
            }
        })
        .collect()
}

/// Convenience: cycles for a PEO given per-predicate *selectivities* in
/// evaluation order.
pub fn scan_cycles_for_selectivities(
    geom: &PlanGeometry,
    selectivities: &[f64],
    params: &CycleParams,
) -> f64 {
    let mut survivors = Vec::with_capacity(selectivities.len());
    let mut cur = geom.n_input as f64;
    for &p in selectivities {
        cur *= p;
        survivors.push(cur);
    }
    scan_cycles(geom, &survivors, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(preds: usize) -> PlanGeometry {
        PlanGeometry::uniform_i32(1_000_000, preds)
    }

    #[test]
    fn ascending_selectivity_order_is_cheapest() {
        // The classic rule: evaluate the most selective predicate first.
        let g = geom(3);
        let p = CycleParams::default();
        let asc = scan_cycles_for_selectivities(&g, &[0.1, 0.5, 0.9], &p);
        let desc = scan_cycles_for_selectivities(&g, &[0.9, 0.5, 0.1], &p);
        let mid = scan_cycles_for_selectivities(&g, &[0.5, 0.1, 0.9], &p);
        assert!(asc < mid && mid < desc, "{asc} {mid} {desc}");
    }

    #[test]
    fn selective_plans_cost_less() {
        let g = geom(2);
        let p = CycleParams::default();
        let tight = scan_cycles_for_selectivities(&g, &[0.01, 0.01], &p);
        let loose = scan_cycles_for_selectivities(&g, &[0.99, 0.99], &p);
        assert!(tight < loose);
    }

    #[test]
    fn misprediction_heavy_selectivity_costs_extra() {
        // Same column work (one full scan), different branch behaviour.
        let g = PlanGeometry::uniform_i32(1_000_000, 1);
        let p = CycleParams::default();
        let easy = scan_cycles_for_selectivities(&g, &[0.999], &p);
        let hard = scan_cycles_for_selectivities(&g, &[0.5], &p);
        assert!(hard > easy, "hard {hard} easy {easy}");
    }

    #[test]
    fn stage_costs_separate_probe_from_select() {
        use crate::estimate::ProbeGeometry;
        use crate::join_model::JoinGeometry;
        let mut g = PlanGeometry::uniform_i32(1 << 20, 2);
        let thrashing = ProbeGeometry {
            relation: JoinGeometry {
                relation_tuples: 500_000,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: 1024 * 1024 / 64,
            },
            upper_cache_bytes: 64.0 * 1024.0,
            clustering: 1.0,
            remote_fraction: 0.0,
        };
        g.probes = vec![None, Some(thrashing.clone())];
        let p = CycleParams::default();
        let costs = stage_costs_per_input_tuple(&g, &[4.0, 10.0], &[0.5, 0.5], &p);
        // An LLC-thrashing random probe dwarfs a comparison.
        assert!(costs[1] > 5.0 * costs[0], "{costs:?}");
        // The same probe co-clustered is within an order of magnitude of
        // the select.
        let coclustered = ProbeGeometry {
            clustering: 0.0,
            ..thrashing
        };
        g.probes = vec![None, Some(coclustered)];
        let costs = stage_costs_per_input_tuple(&g, &[4.0, 10.0], &[0.5, 0.5], &p);
        assert!(costs[1] < 3.0 * costs[0], "{costs:?}");
        // An expensive selection (UDF-style instruction count) overtakes a
        // co-clustered probe.
        let costs = stage_costs_per_input_tuple(&g, &[100.0, 10.0], &[0.5, 0.5], &p);
        assert!(costs[0] > costs[1], "{costs:?}");
    }

    #[test]
    fn probe_stall_grows_as_the_llc_share_shrinks() {
        use crate::estimate::ProbeGeometry;
        use crate::join_model::JoinGeometry;
        // A 128 KiB dimension against shares swept 128 KiB -> 16 KiB:
        // each halving of the share raises the Equation-1 miss blend, so
        // the predicted probe stall must grow monotonically.
        let relation = JoinGeometry {
            relation_tuples: 32 * 1024,
            tuple_bytes: 4,
            line_bytes: 64,
            cache_lines: 0, // rebound per share below
        };
        let p = CycleParams::default();
        let stall_at = |share_bytes: u64| {
            probe_stall_per_tuple(
                &ProbeGeometry {
                    relation: relation.with_cache_bytes(share_bytes),
                    upper_cache_bytes: 8.0 * 1024.0,
                    clustering: 1.0,
                    remote_fraction: 0.0,
                },
                &p,
            )
        };
        let full = stall_at(128 * 1024);
        let half = stall_at(64 * 1024);
        let quarter = stall_at(32 * 1024);
        let eighth = stall_at(16 * 1024);
        assert!(
            full < half && half < quarter && quarter < eighth,
            "{full} {half} {quarter} {eighth}"
        );
        // Fully resident at the full share: LLC-hit latency only.
        assert!((full - p.llc_hit).abs() < 1e-9, "{full}");
        // A co-clustered probe is immune to the capacity loss (streamed
        // lines are fetched once either way).
        let seq = |share: u64| {
            probe_stall_per_tuple(
                &ProbeGeometry {
                    relation: relation.with_cache_bytes(share),
                    upper_cache_bytes: 8.0 * 1024.0,
                    clustering: 0.0,
                    remote_fraction: 0.0,
                },
                &p,
            )
        };
        assert!((seq(128 * 1024) - seq(16 * 1024)).abs() < 1e-9);
    }

    #[test]
    fn fleet_zero_cycle_pools_have_defined_values() {
        // Empty/all-stale morsel streams record zero cycles; the fleet
        // figures must stay defined (parity, not 0/0).
        assert_eq!(fleet_wall_cycles(&[]), 0);
        assert_eq!(fleet_wall_cycles(&[0, 0]), 0);
        assert_eq!(fleet_speedup(0, &[]), 1.0);
        assert_eq!(fleet_speedup(0, &[0, 0]), 1.0);
        assert_eq!(fleet_speedup(1_000, &[0]), 1.0);
        // Non-degenerate inputs are the plain ratio.
        assert_eq!(fleet_speedup(1_000, &[250, 500]), 2.0);
    }

    #[test]
    fn interleaved_wall_includes_idle_gaps() {
        // Worker 0: 100 busy. Worker 1: 60 busy after idling 80.
        assert_eq!(fleet_wall_cycles_interleaved(&[100, 60], &[0, 80]), 140);
        // No idle: degenerates to the busiest worker.
        assert_eq!(fleet_wall_cycles_interleaved(&[100, 60], &[0, 0]), 100);
        assert_eq!(fleet_wall_cycles_interleaved(&[], &[]), 0);
    }

    #[test]
    fn occupancy_is_busy_share_of_the_horizon() {
        // Two workers, wall 100: 100 + 50 busy of 200 available.
        let occ = fleet_occupancy(&[100, 50], &[0, 0]);
        assert!((occ - 0.75).abs() < 1e-12, "{occ}");
        // Idle stretches the wall and dilutes occupancy.
        let occ = fleet_occupancy(&[100, 50], &[100, 0]);
        assert!((occ - 150.0 / 400.0).abs() < 1e-12, "{occ}");
        // Zero-length region: defined as fully occupied.
        assert_eq!(fleet_occupancy(&[], &[]), 1.0);
        assert_eq!(fleet_occupancy(&[0], &[0]), 1.0);
    }

    #[test]
    fn remote_fraction_raises_probe_stall_and_can_flip_ranking() {
        use crate::estimate::ProbeGeometry;
        use crate::join_model::JoinGeometry;
        let p = CycleParams::default();
        // A dimension bigger than the share, probed randomly.
        let probe = |remote: f64| ProbeGeometry {
            relation: JoinGeometry {
                relation_tuples: 64 * 1024,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: (128 * 1024) / 64, // 128 KiB share vs 256 KiB dim
            },
            upper_cache_bytes: 8.0 * 1024.0,
            clustering: 1.0,
            remote_fraction: remote,
        };
        let local = probe_stall_per_tuple(&probe(0.0), &p);
        let remote = probe_stall_per_tuple(&probe(1.0), &p);
        let half = probe_stall_per_tuple(&probe(0.5), &p);
        assert!(local < half && half < remote, "{local} {half} {remote}");
        // The surcharge lands only on the miss share: miss_p * extra.
        let miss_p = 0.5;
        assert!((remote - local - miss_p * p.mem_remote_extra).abs() < 1e-9);
        // Two equally-shaped dims, one local and one remote: the remote
        // one must rank strictly more expensive — the seed of per-socket
        // order divergence.
        assert!(probe_stall_per_tuple(&probe(1.0), &p) > probe_stall_per_tuple(&probe(0.0), &p));
    }

    #[test]
    fn per_socket_wall_and_occupancy_split_contiguous_blocks() {
        // 4 workers on 2 sockets: {0,1} and {2,3}.
        let cycles = [100u64, 80, 40, 60];
        let walls = fleet_wall_cycles_per_socket(&cycles, 2);
        assert_eq!(walls, vec![100, 60]);
        // Busiest core of the busiest socket == the flat wall clock.
        assert_eq!(
            walls.iter().copied().max().unwrap(),
            fleet_wall_cycles(&cycles)
        );
        let occ = fleet_occupancy_per_socket(&cycles, 2);
        assert!((occ[0] - 180.0 / 200.0).abs() < 1e-12, "{occ:?}");
        assert!((occ[1] - 100.0 / 200.0).abs() < 1e-12, "{occ:?}");
        // One socket degenerates to the flat view.
        assert_eq!(fleet_wall_cycles_per_socket(&cycles, 1), vec![100]);
        // Zero-length region: defined values.
        assert_eq!(fleet_occupancy_per_socket(&[0, 0], 2), vec![1.0, 1.0]);
    }

    #[test]
    fn plan_cycles_adds_probe_stalls_on_reaching_tuples() {
        use crate::estimate::ProbeGeometry;
        use crate::join_model::JoinGeometry;
        let p = CycleParams::default();
        let mut g = PlanGeometry::uniform_i32(1 << 20, 2);
        let survivors = [(1u64 << 19) as f64, (1u64 << 18) as f64];
        // No probes: identical to the scan model.
        assert_eq!(
            plan_cycles(&g, &survivors, &p),
            scan_cycles(&g, &survivors, &p)
        );
        // A thrashing probe at stage 1 charges its stall once per tuple
        // *reaching* stage 1 — the survivors of stage 0.
        let probe = ProbeGeometry {
            relation: JoinGeometry {
                relation_tuples: 500_000,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: 1024 * 1024 / 64,
            },
            upper_cache_bytes: 64.0 * 1024.0,
            clustering: 1.0,
            remote_fraction: 0.0,
        };
        let stall = probe_stall_per_tuple(&probe, &p);
        g.probes = vec![None, Some(probe)];
        let with_probe = plan_cycles(&g, &survivors, &p);
        let expected = scan_cycles(&g, &survivors, &p) + survivors[0] * stall;
        assert!(
            (with_probe - expected).abs() < 1e-6,
            "{with_probe} {expected}"
        );
        assert!(with_probe > scan_cycles(&g, &survivors, &p));
    }

    #[test]
    fn millis_conversion() {
        let g = geom(1);
        let p = CycleParams::default();
        let cycles = scan_cycles_for_selectivities(&g, &[0.5], &p);
        let ms = scan_millis(&g, &[500_000.0], &p);
        assert!((ms - cycles / 2.6e6).abs() < 1e-9);
    }

    #[test]
    fn worst_best_ratio_in_figure_one_range() {
        // Q6-like: shipdate sweep predicate + three fixed ones. At very low
        // shipdate selectivity the worst/best ratio should sit in the 2–5x
        // band of Figure 1.
        let g = geom(4);
        let p = CycleParams::default();
        let best = scan_cycles_for_selectivities(&g, &[0.001, 0.27, 0.46, 0.73], &p);
        let worst = scan_cycles_for_selectivities(&g, &[0.73, 0.46, 0.27, 0.001], &p);
        let ratio = worst / best;
        assert!(ratio > 1.5 && ratio < 6.0, "ratio = {ratio}");
    }
}
