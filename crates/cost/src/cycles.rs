//! Unified runtime (cycle) estimates for multi-selection scans.
//!
//! Combines the branch model (misprediction penalties) and the cache model
//! (memory stalls, with the sequential/random latency blend) into a single
//! cost figure. Used for plan analysis and the Figure-1-style best/worst
//! comparisons; the *measured* counterpart is the `popt-cpu` simulator, so
//! tests only require this model to rank plans consistently with it.

use crate::branch_costs::estimate_peo_branches;
use crate::cache_model::{random_line_fraction, touched_lines, CacheGeometry};
use crate::estimate::{survivors_to_selectivities, PlanGeometry};

/// Cycle-accounting constants for the analytic model. Defaults mirror the
/// `popt-cpu` timing configuration and the engine's instruction charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleParams {
    /// Cycles per retired instruction.
    pub cpi: f64,
    /// Instructions per loop iteration (counter increment, bounds test).
    pub instr_loop: f64,
    /// Instructions per predicate evaluation (load, compare, jump).
    pub instr_per_eval: f64,
    /// Instructions per qualifying tuple (aggregate load + add).
    pub instr_agg: f64,
    /// Misprediction penalty in cycles.
    pub mp_penalty: f64,
    /// Memory stall for a line fetched on a random (non-adjacent) access.
    pub mem_random: f64,
    /// Memory stall for a line fetched sequentially (streamed).
    pub mem_sequential: f64,
    /// Core frequency in GHz (for millisecond conversion).
    pub frequency_ghz: f64,
}

impl Default for CycleParams {
    fn default() -> Self {
        Self {
            cpi: 0.5,
            instr_loop: 2.0,
            instr_per_eval: 4.0,
            instr_agg: 3.0,
            mp_penalty: 15.0,
            mem_random: 180.0,
            mem_sequential: 24.0,
            frequency_ghz: 2.6,
        }
    }
}

/// Estimated cycles for scanning `geom.n_input` tuples under the survivor
/// hypothesis `survivors` (memory-resident table, i.e. every touched line
/// is fetched from memory).
pub fn scan_cycles(geom: &PlanGeometry, survivors: &[f64], params: &CycleParams) -> f64 {
    assert_eq!(survivors.len(), geom.predicates());
    let n = geom.n_input as f64;
    let sels = survivors_to_selectivities(geom.n_input, survivors);
    let branches = estimate_peo_branches(geom.n_input, &sels, &geom.chain, true);

    // Instruction stream: loop + one eval per tuple reaching each
    // predicate + aggregate work for qualifying tuples.
    let mut instr = n * params.instr_loop;
    let mut reaching = n;
    for &p in &sels {
        instr += reaching * params.instr_per_eval;
        reaching *= p;
    }
    instr += reaching * params.instr_agg;

    // Memory stalls: per column, touched lines blended between the random
    // and sequential latency by the predecessor-untouched probability.
    // Repeated reads of one column are cache-resident within a vector and
    // stall-free (mirroring the counter model's first-read accounting).
    let mut mem = 0.0;
    let mut density = 1.0;
    for (j, &width) in geom.value_bytes.iter().enumerate() {
        if geom.first_read(j) {
            let cg = CacheGeometry {
                line_bytes: geom.line_bytes,
                value_bytes: width,
            };
            mem += column_stall(&cg, geom.n_input, density, params);
        }
        density = (survivors[j] / n).clamp(0.0, 1.0);
    }
    for &width in &geom.agg_bytes {
        let cg = CacheGeometry {
            line_bytes: geom.line_bytes,
            value_bytes: width,
        };
        mem += column_stall(&cg, geom.n_input, density, params);
    }

    instr * params.cpi + branches.mp_total() * params.mp_penalty + mem
}

fn column_stall(cg: &CacheGeometry, n: u64, density: f64, params: &CycleParams) -> f64 {
    let lines = touched_lines(cg, n, density);
    let rf = random_line_fraction(cg, density);
    lines * (rf * params.mem_random + (1.0 - rf) * params.mem_sequential)
}

/// [`scan_cycles`] converted to simulated milliseconds.
pub fn scan_millis(geom: &PlanGeometry, survivors: &[f64], params: &CycleParams) -> f64 {
    scan_cycles(geom, survivors, params) / (params.frequency_ghz * 1e6)
}

/// Convenience: cycles for a PEO given per-predicate *selectivities* in
/// evaluation order.
pub fn scan_cycles_for_selectivities(
    geom: &PlanGeometry,
    selectivities: &[f64],
    params: &CycleParams,
) -> f64 {
    let mut survivors = Vec::with_capacity(selectivities.len());
    let mut cur = geom.n_input as f64;
    for &p in selectivities {
        cur *= p;
        survivors.push(cur);
    }
    scan_cycles(geom, &survivors, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(preds: usize) -> PlanGeometry {
        PlanGeometry::uniform_i32(1_000_000, preds)
    }

    #[test]
    fn ascending_selectivity_order_is_cheapest() {
        // The classic rule: evaluate the most selective predicate first.
        let g = geom(3);
        let p = CycleParams::default();
        let asc = scan_cycles_for_selectivities(&g, &[0.1, 0.5, 0.9], &p);
        let desc = scan_cycles_for_selectivities(&g, &[0.9, 0.5, 0.1], &p);
        let mid = scan_cycles_for_selectivities(&g, &[0.5, 0.1, 0.9], &p);
        assert!(asc < mid && mid < desc, "{asc} {mid} {desc}");
    }

    #[test]
    fn selective_plans_cost_less() {
        let g = geom(2);
        let p = CycleParams::default();
        let tight = scan_cycles_for_selectivities(&g, &[0.01, 0.01], &p);
        let loose = scan_cycles_for_selectivities(&g, &[0.99, 0.99], &p);
        assert!(tight < loose);
    }

    #[test]
    fn misprediction_heavy_selectivity_costs_extra() {
        // Same column work (one full scan), different branch behaviour.
        let g = PlanGeometry::uniform_i32(1_000_000, 1);
        let p = CycleParams::default();
        let easy = scan_cycles_for_selectivities(&g, &[0.999], &p);
        let hard = scan_cycles_for_selectivities(&g, &[0.5], &p);
        assert!(hard > easy, "hard {hard} easy {easy}");
    }

    #[test]
    fn millis_conversion() {
        let g = geom(1);
        let p = CycleParams::default();
        let cycles = scan_cycles_for_selectivities(&g, &[0.5], &p);
        let ms = scan_millis(&g, &[500_000.0], &p);
        assert!((ms - cycles / 2.6e6).abs() < 1e-9);
    }

    #[test]
    fn worst_best_ratio_in_figure_one_range() {
        // Q6-like: shipdate sweep predicate + three fixed ones. At very low
        // shipdate selectivity the worst/best ratio should sit in the 2–5x
        // band of Figure 1.
        let g = geom(4);
        let p = CycleParams::default();
        let best = scan_cycles_for_selectivities(&g, &[0.001, 0.27, 0.46, 0.73], &p);
        let worst = scan_cycles_for_selectivities(&g, &[0.73, 0.46, 0.27, 0.001], &p);
        let ratio = worst / best;
        assert!(ratio > 1.5 && ratio < 6.0, "ratio = {ratio}");
    }
}
