//! Branch counter estimates for a whole predicate evaluation order.
//!
//! Section 3.2: "For a multi-selection query, we extend our branch
//! estimations to model each predicate p1…pn. Therefore, we replace the
//! number of input tuples by the number of output tuples of the previous
//! predicate." The short-circuit code of Section 2.1 also contributes one
//! always-taken loop branch per tuple, which is what makes `qualifying =
//! 2·n − bT` hold.

use crate::markov::ChainSpec;

/// Branch counter estimate for one predicate position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateBranchEstimate {
    /// Tuples reaching this predicate.
    pub input: f64,
    /// Selectivity of this predicate.
    pub selectivity: f64,
    /// Branches not taken (tuples qualifying here).
    pub bnt: f64,
    /// Branches taken (tuples failing here).
    pub bt: f64,
    /// Mispredicted taken branches.
    pub mp_taken: f64,
    /// Mispredicted not-taken branches.
    pub mp_not_taken: f64,
}

/// Branch counter estimate for an entire PEO.
#[derive(Debug, Clone, PartialEq)]
pub struct PeoBranchEstimate {
    /// Per-predicate breakdown, in evaluation order.
    pub predicates: Vec<PredicateBranchEstimate>,
    /// Total branches not taken across predicates.
    pub bnt: f64,
    /// Total branches taken (including the loop back-edge if modelled).
    pub bt: f64,
    /// Total mispredicted taken branches.
    pub mp_taken: f64,
    /// Total mispredicted not-taken branches.
    pub mp_not_taken: f64,
}

impl PeoBranchEstimate {
    /// Total mispredictions.
    pub fn mp_total(&self) -> f64 {
        self.mp_taken + self.mp_not_taken
    }
}

/// Estimate branch counters for `n` input tuples filtered by predicates
/// with the given selectivities (in evaluation order), using `chain` as
/// the predictor model.
///
/// `include_loop_branch` adds the per-tuple always-taken back-edge of the
/// scan loop (predicted perfectly at stationarity), matching what the PMU
/// measures on the generated code of Section 2.1.
pub fn estimate_peo_branches(
    n: u64,
    selectivities: &[f64],
    chain: &ChainSpec,
    include_loop_branch: bool,
) -> PeoBranchEstimate {
    let mut predicates = Vec::with_capacity(selectivities.len());
    let mut input = n as f64;
    let mut bnt = 0.0;
    let mut bt = 0.0;
    let mut mp_taken = 0.0;
    let mut mp_not_taken = 0.0;
    for &p in selectivities {
        assert!((0.0..=1.0).contains(&p), "selectivity out of range: {p}");
        let probs = chain.probabilities(p);
        let est = PredicateBranchEstimate {
            input,
            selectivity: p,
            bnt: input * p,
            bt: input * (1.0 - p),
            mp_taken: input * probs.mp_taken,
            mp_not_taken: input * probs.mp_not_taken,
        };
        bnt += est.bnt;
        bt += est.bt;
        mp_taken += est.mp_taken;
        mp_not_taken += est.mp_not_taken;
        input *= p;
        predicates.push(est);
    }
    if include_loop_branch {
        // One taken branch per tuple at the end of the loop body.
        bt += n as f64;
    }
    PeoBranchEstimate {
        predicates,
        bnt,
        bt,
        mp_taken,
        mp_not_taken,
    }
}

/// The paper's qualifying-tuple identity: `qualifying = 2·n − bT`
/// (Section 2.2), inverted for the estimator.
pub fn qualifying_from_branches_taken(n: u64, branches_taken: u64) -> u64 {
    (2 * n).saturating_sub(branches_taken)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bnt_sum_equals_survivor_sum() {
        // Section 4.1: sampled BNT equals the cumulative accesses a_1..a_n.
        let n = 1000u64;
        let sels = [0.8, 0.875, 0.714_285_714_285_714_3, 0.2];
        let est = estimate_peo_branches(n, &sels, &ChainSpec::SIX, false);
        // survivors: 800, 700, 500, 100
        assert!((est.bnt - 2100.0).abs() < 1e-6, "bnt = {}", est.bnt);
    }

    #[test]
    fn branches_partition_per_predicate() {
        let est = estimate_peo_branches(100, &[0.3, 0.6], &ChainSpec::SIX, false);
        let p0 = &est.predicates[0];
        assert!((p0.bnt + p0.bt - 100.0).abs() < 1e-9);
        let p1 = &est.predicates[1];
        assert!((p1.input - 30.0).abs() < 1e-9);
        assert!((p1.bnt + p1.bt - 30.0).abs() < 1e-9);
    }

    #[test]
    fn loop_branch_adds_n_taken() {
        let without = estimate_peo_branches(100, &[0.5], &ChainSpec::SIX, false);
        let with = estimate_peo_branches(100, &[0.5], &ChainSpec::SIX, true);
        assert!((with.bt - without.bt - 100.0).abs() < 1e-9);
        assert_eq!(with.bnt, without.bnt);
    }

    #[test]
    fn qualifying_identity() {
        // n tuples, q qualify: bT = (n - q) failing + n loop branches.
        let n = 100u64;
        let q = 37u64;
        let bt = (n - q) + n;
        assert_eq!(qualifying_from_branches_taken(n, bt), q);
    }

    #[test]
    fn order_changes_mispredictions_not_bt_plus_bnt_result() {
        // Both orders produce the same final cardinality, hence the same
        // overall qualifying count, but different BNT sums — the asymmetry
        // the optimizer exploits.
        let a = estimate_peo_branches(10_000, &[0.2, 0.8], &ChainSpec::SIX, true);
        let b = estimate_peo_branches(10_000, &[0.8, 0.2], &ChainSpec::SIX, true);
        // Survivor sums differ: 2000+1600 vs 8000+1600.
        assert!(a.bnt < b.bnt);
        // Final output identical => same bt from failing tuples + loop:
        // bt = n_fail_total + n; n_fail_total = n - out in both cases...
        // plus intermediate failures; totals: a: 8000+400, b: 2000+6400.
        assert!((a.bt - (8400.0 + 10_000.0)).abs() < 1e-6);
        assert!((b.bt - (8400.0 + 10_000.0)).abs() < 1e-6);
    }

    #[test]
    fn empty_peo_is_all_zero() {
        let est = estimate_peo_branches(100, &[], &ChainSpec::SIX, false);
        assert_eq!(est.bnt, 0.0);
        assert_eq!(est.bt, 0.0);
        assert_eq!(est.mp_total(), 0.0);
    }

    #[test]
    fn mispredictions_peak_at_half() {
        let at_half = estimate_peo_branches(1000, &[0.5], &ChainSpec::SIX, false);
        let at_low = estimate_peo_branches(1000, &[0.05], &ChainSpec::SIX, false);
        let at_high = estimate_peo_branches(1000, &[0.95], &ChainSpec::SIX, false);
        assert!(at_half.mp_total() > at_low.mp_total());
        assert!(at_half.mp_total() > at_high.mp_total());
    }
}
