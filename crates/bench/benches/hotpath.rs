//! Criterion bench: host ns per simulated tuple through the batched
//! fast path vs the scalar per-event oracle, for the two shapes the
//! fast path targets — a single-predicate scan (closed-form line
//! accounting) and a selection + 3-join pipeline (quiet-API event
//! loop) — serial and under 4-worker morsel parallelism.
//!
//! The two paths are bit-identical in simulated results (pinned by the
//! oracle proptests); this bench measures only host throughput, i.e.
//! what the fast path buys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use popt_core::exec::program::CompiledProgram;
use popt_core::exec::scan::CompiledSelection;
use popt_core::parallel::{run_parallel_program, MorselConfig};
use popt_core::plan::{Expr, LogicalPlan, PlanBuilder, SelectionPlan};
use popt_core::predicate::{CompareOp, Predicate};
use popt_cpu::{CpuConfig, CpuPool, SimCpu};
use popt_storage::{AddressSpace, ColumnData, Table};

const ROWS: usize = 1 << 16;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn fact_table(rows: usize) -> Table {
    let mut state = 0xBE7Fu64;
    let mut space = AddressSpace::new();
    let mut t = Table::new("fact");
    t.add_column(
        "a",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    t.add_column(
        "fk_seq",
        ColumnData::I32((0..rows).map(|i| (i / 4) as i32).collect()),
        &mut space,
    );
    t.add_column(
        "fk_rand",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift(&mut state) % (rows as u64 / 4)) as i32)
                .collect(),
        ),
        &mut space,
    );
    t
}

fn dim_table(rows: usize) -> Table {
    let mut state = 0xD1Du64;
    let mut space = AddressSpace::new();
    let mut t = Table::new("dim");
    t.add_column(
        "payload",
        ColumnData::I32(
            (0..rows / 4)
                .map(|_| (xorshift(&mut state) % 1000) as i32)
                .collect(),
        ),
        &mut space,
    );
    t
}

/// Selection over `a` plus three dimension joins and an aggregate.
fn join3_plan<'t>(fact: &'t Table, dim: &'t Table) -> LogicalPlan<'t> {
    PlanBuilder::scan(fact)
        .filter_costed(Expr::col("a").less_than(500), 0)
        .join(dim, "fk_seq", Expr::col("payload").less_than(700))
        .join(dim, "fk_rand", Expr::col("payload").less_than(500))
        .join(dim, "fk_seq", Expr::col("payload").less_than(300))
        .aggregate("a")
        .build()
}

fn compile_join3<'t>(fact: &'t Table, dim: &'t Table, oracle: bool) -> CompiledProgram<'t> {
    let mut program = join3_plan(fact, dim).compile().expect("plan lowers");
    program.set_scalar_oracle(oracle);
    program
}

fn scan_serial(c: &mut Criterion) {
    let table = fact_table(ROWS);
    let plan =
        SelectionPlan::new(vec![Predicate::new("a", CompareOp::Lt, 500)], vec![]).expect("plan");
    let mut group = c.benchmark_group("hotpath_scan_serial");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, oracle) in [("batched", false), ("scalar_oracle", true)] {
        let mut compiled = CompiledSelection::compile(&table, &plan, &[0]).expect("compiles");
        compiled.set_scalar_oracle(oracle);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                black_box(compiled.run_range(&mut cpu, 0, ROWS))
            })
        });
    }
    group.finish();
}

fn join3_serial(c: &mut Criterion) {
    let fact = fact_table(ROWS);
    let dim = dim_table(ROWS);
    let mut group = c.benchmark_group("hotpath_join3_serial");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, oracle) in [("batched", false), ("scalar_oracle", true)] {
        let compiled = compile_join3(&fact, &dim, oracle);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                black_box(compiled.run_range(&mut cpu, 0, ROWS))
            })
        });
    }
    group.finish();
}

fn join3_parallel4(c: &mut Criterion) {
    let fact = fact_table(ROWS);
    let dim = dim_table(ROWS);
    let mut group = c.benchmark_group("hotpath_join3_parallel4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, oracle) in [("batched", false), ("scalar_oracle", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut program = compile_join3(&fact, &dim, oracle);
                let mut pool = CpuPool::new(CpuConfig::xeon_e5_2630_v2(), 4);
                black_box(
                    run_parallel_program(
                        &mut program,
                        &[0, 1, 2, 3],
                        MorselConfig::new(1024),
                        &mut pool,
                        None,
                    )
                    .expect("parallel run succeeds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scan_serial, join3_serial, join3_parallel4);
criterion_main!(benches);
