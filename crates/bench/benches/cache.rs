//! Criterion bench: cache-hierarchy access throughput for sequential,
//! strided and random line streams, plus the scan fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use popt_cpu::{CacheHierarchy, CpuConfig, SimCpu};

/// A named address-stream generator: line index -> line address.
type AddrPattern = (&'static str, Box<dyn Fn(u64) -> u64>);

const LINES: u64 = 50_000;

fn hierarchy_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(LINES));
    let cfg = CpuConfig::xeon_e5_2630_v2();
    let patterns: [AddrPattern; 3] = [
        ("sequential", Box::new(|i| i)),
        ("strided8", Box::new(|i| i * 8)),
        (
            "random",
            Box::new(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20),
        ),
    ];
    for (name, addr) in &patterns {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut h = CacheHierarchy::new(&cfg);
                for i in 0..LINES {
                    h.demand_access(addr(i));
                }
                black_box(h.l3_accesses())
            })
        });
    }
    group.finish();
}

fn element_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_element_fast_path");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let elements = LINES * 16;
    group.throughput(Throughput::Elements(elements));
    group.bench_function("i32_scan", |b| {
        b.iter(|| {
            let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
            for i in 0..elements {
                cpu.load(0, i * 4, 4);
            }
            black_box(cpu.cycles())
        })
    });
    group.finish();
}

criterion_group!(benches, hierarchy_patterns, element_fast_path);
criterion_main!(benches);
