//! Criterion bench: vectorized scan throughput on the simulated CPU,
//! by predicate count and by PEO quality. The simulator itself is the
//! system under test here — these numbers bound how much paper-scale
//! experimentation is feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use popt_bench::figures::workload::{uniform_plan, uniform_table};
use popt_core::exec::scan::CompiledSelection;
use popt_cpu::{CpuConfig, SimCpu};

const ROWS: usize = 1 << 16;

fn scan_by_predicates(c: &mut Criterion) {
    let table = uniform_table(ROWS, 5, 0xBE7C);
    let mut group = c.benchmark_group("scan_by_predicates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(ROWS as u64));
    for preds in [1usize, 3, 5] {
        let plan = uniform_plan(&vec![0.5; preds]);
        let peo: Vec<usize> = (0..preds).collect();
        let compiled = CompiledSelection::compile(&table, &plan, &peo).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(preds), &preds, |b, _| {
            b.iter(|| {
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                black_box(compiled.run_range(&mut cpu, 0, ROWS))
            })
        });
    }
    group.finish();
}

fn scan_best_vs_worst_order(c: &mut Criterion) {
    let table = uniform_table(ROWS, 3, 0xBE7D);
    let plan = uniform_plan(&[0.05, 0.5, 0.95]);
    let mut group = c.benchmark_group("scan_order");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for (name, peo) in [
        ("ascending", vec![0usize, 1, 2]),
        ("descending", vec![2usize, 1, 0]),
    ] {
        let compiled = CompiledSelection::compile(&table, &plan, &peo).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                black_box(compiled.run_range(&mut cpu, 0, ROWS))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scan_by_predicates, scan_best_vs_worst_order);
criterion_main!(benches);
