//! Criterion bench: selectivity-estimation latency — the optimization
//! time the paper trades against estimate quality (Sections 4.4/5.7) —
//! plus the start-point-count ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use popt_cost::estimate::{estimate_counters, PlanGeometry};
use popt_solver::{estimate_selectivities, CounterWeights, EstimatorConfig, SampledCounters};

fn sample_for(geom: &PlanGeometry, survivors: &[f64]) -> SampledCounters {
    let est = estimate_counters(geom, survivors);
    SampledCounters {
        n_input: geom.n_input,
        n_output: *survivors.last().unwrap() as u64,
        bnt: est.bnt.round() as u64,
        mp_taken: est.mp_taken.round() as u64,
        mp_not_taken: est.mp_not_taken.round() as u64,
        l3_accesses: est.l3_accesses.round() as u64,
    }
}

fn survivors_for(n: u64, sels: &[f64]) -> Vec<f64> {
    let mut cur = n as f64;
    sels.iter()
        .map(|&p| {
            cur *= p;
            cur
        })
        .collect()
}

fn estimator_by_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_by_predicates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for preds in [2usize, 3, 5] {
        let geom = PlanGeometry::uniform_i32(1 << 16, preds);
        let sels: Vec<f64> = (0..preds).map(|i| 0.2 + 0.15 * i as f64).collect();
        let survivors = survivors_for(geom.n_input, &sels);
        let sampled = sample_for(&geom, &survivors);
        let config = EstimatorConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(preds), &preds, |b, _| {
            b.iter(|| black_box(estimate_selectivities(&geom, &sampled, &config)))
        });
    }
    group.finish();
}

fn estimator_start_point_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_starts_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let geom = PlanGeometry::uniform_i32(1 << 16, 4);
    let survivors = survivors_for(geom.n_input, &[0.7, 0.3, 0.5, 0.4]);
    let sampled = sample_for(&geom, &survivors);
    for starts in [1usize, 4, 8, 16] {
        let config = EstimatorConfig {
            max_starts: Some(starts),
            no_improvement_limit: starts,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(starts), &starts, |b, _| {
            b.iter(|| black_box(estimate_selectivities(&geom, &sampled, &config)))
        });
    }
    group.finish();
}

fn estimator_counter_subsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_counter_subsets");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let geom = PlanGeometry::uniform_i32(1 << 16, 3);
    let survivors = survivors_for(geom.n_input, &[0.6, 0.3, 0.5]);
    let sampled = sample_for(&geom, &survivors);
    for (name, weights) in [
        ("all_counters", CounterWeights::default()),
        ("bnt_only", CounterWeights::bnt_only()),
    ] {
        let config = EstimatorConfig {
            weights,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(estimate_selectivities(&geom, &sampled, &config)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    estimator_by_predicates,
    estimator_start_point_ablation,
    estimator_counter_subsets
);
criterion_main!(benches);
