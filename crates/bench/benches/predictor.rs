//! Criterion bench: branch predictor event throughput — automaton vs.
//! gshare-style history, biased vs. adversarial outcome streams.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use popt_cpu::{BranchPredictor, BranchSite, PredictorConfig};

const EVENTS: u64 = 100_000;

fn outcomes(p_taken: f64) -> Vec<bool> {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..EVENTS)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .map(|u| u < p_taken)
        .collect()
}

fn predictor_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(EVENTS));
    let configs = [
        ("automaton6", PredictorConfig::automaton(6, 3)),
        (
            "gshare6_h8",
            PredictorConfig {
                states: 6,
                not_taken_states: 3,
                history_bits: 8,
                table_bits: 12,
            },
        ),
    ];
    for (name, cfg) in configs {
        for (bias_name, p) in [("biased10", 0.1), ("coin50", 0.5)] {
            let stream = outcomes(p);
            group.bench_function(format!("{name}/{bias_name}"), |b| {
                b.iter(|| {
                    let mut pred = BranchPredictor::new(cfg);
                    let site = BranchSite(3);
                    let mut wrong = 0u64;
                    for &taken in &stream {
                        if !pred.execute(site, taken).correct {
                            wrong += 1;
                        }
                    }
                    black_box(wrong)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, predictor_throughput);
criterion_main!(benches);
