//! Criterion bench: Markov model evaluation cost — closed form vs. the
//! linear-system route, and the full counter-prediction objective the
//! estimator evaluates thousands of times per optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use popt_cost::estimate::{estimate_counters, PlanGeometry};
use popt_cost::markov::ChainSpec;

fn stationary_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_stationary");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for states in [4u8, 6, 8] {
        let spec = ChainSpec::even(states);
        group.bench_with_input(BenchmarkId::new("closed_form", states), &spec, |b, spec| {
            b.iter(|| black_box(spec.stationary(0.37)))
        });
        group.bench_with_input(
            BenchmarkId::new("linear_solve", states),
            &spec,
            |b, spec| b.iter(|| black_box(spec.stationary_linear(0.37))),
        );
    }
    group.finish();
}

fn counter_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_prediction");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for preds in [2usize, 5] {
        let geom = PlanGeometry::uniform_i32(1 << 20, preds);
        let survivors: Vec<f64> = (0..preds)
            .map(|i| (1 << 20) as f64 * 0.5f64.powi(i as i32 + 1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(preds), &preds, |b, _| {
            b.iter(|| black_box(estimate_counters(&geom, &survivors)))
        });
    }
    group.finish();
}

criterion_group!(benches, stationary_routes, counter_objective);
criterion_main!(benches);
