//! Shared harness utilities: scaling, output formatting, and a small
//! work-stealing parallel map (figures sweep hundreds of independent
//! simulator runs).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global knobs for a figure run.
#[derive(Debug, Clone, Copy)]
pub struct FigureCtx {
    /// Reduced scale for smoke runs (`--quick`).
    pub quick: bool,
    /// Run the parallel/serving figures in shared-LLC (single-socket)
    /// mode (`--shared-llc`): co-running work contends for one LLC via
    /// the deterministic capacity partition, instead of every core
    /// keeping a private full-size LLC.
    pub shared_llc: bool,
    /// Socket count for the parallel/serving figures (`--sockets N`).
    /// With more than one socket the pool splits into contiguous core
    /// blocks, morsel ranges pin to the socket whose workers claim them,
    /// and remote-socket misses pay the deterministic latency surcharge;
    /// `1` is the flat pre-NUMA pool.
    pub sockets: usize,
}

impl FigureCtx {
    /// Pick `full` or `quick` depending on the context.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Print a figure banner.
pub fn banner(id: &str, title: &str) {
    println!("\n### Figure {id}: {title}");
}

/// Print one tab-separated row.
pub fn row<S: AsRef<str>>(cells: &[S]) {
    let joined: Vec<&str> = cells.iter().map(AsRef::as_ref).collect();
    println!("{}", joined.join("\t"));
}

/// Format a float with sensible precision for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Evenly subsample `k` items of a slice (always keeps first and last).
pub fn subsample<T: Clone>(items: &[T], k: usize) -> Vec<T> {
    if items.len() <= k || k < 2 {
        return items.to_vec();
    }
    (0..k)
        .map(|i| items[i * (items.len() - 1) / (k - 1)].clone())
        .collect()
}

/// Map `f` over `items` on all available cores, preserving order.
///
/// Each worker owns a `SimCpu`-style context created inside `f`; items are
/// claimed from an atomic cursor so long-running simulator sweeps balance
/// across threads.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("no poisoned workers")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn subsample_keeps_endpoints() {
        let items: Vec<u32> = (0..100).collect();
        let s = subsample(&items, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 99);
    }

    #[test]
    fn fmt_precision_tiers() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.123456), "0.1235");
    }

    #[test]
    fn scale_picks_by_mode() {
        assert_eq!(
            FigureCtx {
                quick: true,
                shared_llc: false,
                sockets: 1
            }
            .scale(100, 10),
            10
        );
        assert_eq!(
            FigureCtx {
                quick: false,
                shared_llc: false,
                sockets: 1
            }
            .scale(100, 10),
            100
        );
    }
}
