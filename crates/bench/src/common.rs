//! Shared harness utilities: scaling, the figure reporter (text or
//! JSON-lines output, config provenance on every banner), trace capture
//! for `--trace-out`, and a small work-stealing parallel map (figures
//! sweep hundreds of independent simulator runs).
//!
//! # The reporter
//!
//! Every figure routes its output through four calls instead of ad-hoc
//! `println!`s:
//!
//! * [`banner`] — figure id + title, stamped with the run's config
//!   provenance (quick/full, LLC mode, sockets, tracing);
//! * [`header`] — the column names of the figure's table;
//! * [`row`] — one data row (zipped against the last [`header`] in JSON
//!   mode);
//! * [`note!`] — free-form commentary (`# `-prefixed in text mode).
//!
//! With `--json` the same calls emit one JSON object per line
//! (`{"type":"banner"|"header"|"row"|"note", "figure": ..., ...}`), so a
//! harness can consume every figure without scraping tab columns. The
//! two modes carry identical information.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use popt_obs::{chrome_trace, validate_json, MemorySink, TraceRecord, Tracer};

/// Global knobs for a figure run.
#[derive(Debug, Clone)]
pub struct FigureCtx {
    /// Reduced scale for smoke runs (`--quick`).
    pub quick: bool,
    /// Run the parallel/serving figures in shared-LLC (single-socket)
    /// mode (`--shared-llc`): co-running work contends for one LLC via
    /// the deterministic capacity partition, instead of every core
    /// keeping a private full-size LLC.
    pub shared_llc: bool,
    /// Socket count for the parallel/serving figures (`--sockets N`).
    /// With more than one socket the pool splits into contiguous core
    /// blocks, morsel ranges pin to the socket whose workers claim them,
    /// and remote-socket misses pay the deterministic latency surcharge;
    /// `1` is the flat pre-NUMA pool.
    pub sockets: usize,
    /// Emit machine-readable JSON lines instead of tab-separated text
    /// (`--json`).
    pub json: bool,
    /// Write a Chrome-trace-event JSON of the figure's traced runs to
    /// this path (`--trace-out PATH`). Tracing is non-invasive: the
    /// printed simulated cycles are bit-identical with or without it.
    pub trace_out: Option<String>,
    /// Append each figure's host wall-time to its reporter output
    /// (`--time`): a trailing note in text mode, a `note` object in
    /// JSON mode. Purely additive — no simulated number changes.
    pub time: bool,
}

impl FigureCtx {
    /// A context with default knobs (full scale, private LLC, one
    /// socket, text output, no tracing).
    pub fn plain() -> Self {
        Self {
            quick: false,
            shared_llc: false,
            sockets: 1,
            json: false,
            trace_out: None,
            time: false,
        }
    }

    /// Pick `full` or `quick` depending on the context.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The base config-provenance pairs stamped under every banner.
    fn provenance(&self) -> Vec<(&'static str, String)> {
        vec![
            ("mode", if self.quick { "quick" } else { "full" }.into()),
            (
                "llc",
                if self.shared_llc { "shared" } else { "private" }.into(),
            ),
            ("sockets", self.sockets.to_string()),
            (
                "trace",
                match &self.trace_out {
                    Some(path) => path.clone(),
                    None => "off".into(),
                },
            ),
        ]
    }
}

/// The reporter's shared state: output mode, the figure being printed,
/// the column names its last [`header`] declared, and the benchmark
/// metrics recorded since the last [`take_metrics`].
struct Reporter {
    json: bool,
    figure: String,
    columns: Vec<String>,
    metrics: Vec<BenchMetric>,
}

static REPORTER: Mutex<Reporter> = Mutex::new(Reporter {
    json: false,
    figure: String::new(),
    columns: Vec::new(),
    metrics: Vec::new(),
});

/// One recorded benchmark metric: the measured value plus the relative
/// tolerance the regression gate ([`crate::regress`]) compares it under.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Snapshot key (stable across runs — the gate joins on it).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Relative tolerance: a replay whose value lands outside
    /// `baseline * (1 ± tol)` fails the gate.
    pub tol: f64,
}

/// Default relative tolerance for [`bench_metric`]: tight enough that a
/// 20% cycle regression on a deterministic metric always trips the gate.
pub const DEFAULT_METRIC_TOL: f64 = 0.10;

/// Record a benchmark metric at the [`DEFAULT_METRIC_TOL`]. Use only for
/// values that are a pure function of the simulation (serial or
/// 1-worker cycle counts, qualified/sum results, morsel counts).
pub fn bench_metric(name: &str, value: f64) {
    bench_metric_tol(name, value, DEFAULT_METRIC_TOL);
}

/// Record a benchmark metric with an explicit relative tolerance. Values
/// that are host-elastic by design (multi-worker walls, latency
/// percentiles under reoptimization) need a loose tolerance; last write
/// wins when a figure re-records a name.
pub fn bench_metric_tol(name: &str, value: f64, tol: f64) {
    assert!(
        value.is_finite() && tol.is_finite() && tol >= 0.0,
        "bench metric {name}: non-finite value {value} or bad tolerance {tol}"
    );
    let mut rep = REPORTER.lock().expect("reporter lock");
    if let Some(m) = rep.metrics.iter_mut().find(|m| m.name == name) {
        m.value = value;
        m.tol = tol;
    } else {
        rep.metrics.push(BenchMetric {
            name: name.to_string(),
            value,
            tol,
        });
    }
}

/// Drain the metrics recorded since the last call (insertion order).
pub fn take_metrics() -> Vec<BenchMetric> {
    std::mem::take(&mut REPORTER.lock().expect("reporter lock").metrics)
}

/// A finite `f64` as a JSON number (Rust's shortest-roundtrip `Display`
/// never emits exponents or non-finite tokens for finite values).
fn json_num(x: f64) -> String {
    format!("{x}")
}

/// The canonical `BENCH_<figure>.json` snapshot document: figure id, the
/// scale mode it was measured under, and every metric with its value and
/// tolerance, in recording order.
pub fn snapshot_json(figure: &str, mode: &str, metrics: &[BenchMetric]) -> String {
    let fields: Vec<String> = metrics
        .iter()
        .map(|m| {
            format!(
                "\"{}\":{{\"value\":{},\"tol\":{}}}",
                esc(&m.name),
                json_num(m.value),
                json_num(m.tol)
            )
        })
        .collect();
    format!(
        "{{\"figure\":\"{}\",\"mode\":\"{}\",\"metrics\":{{{}}}}}\n",
        esc(figure),
        esc(mode),
        fields.join(",")
    )
}

/// The snapshot as one `--json` reporter line (`"type":"snapshot"`).
pub fn snapshot_line(figure: &str, mode: &str, metrics: &[BenchMetric]) -> String {
    let doc = snapshot_json(figure, mode, metrics);
    format!("{{\"type\":\"snapshot\",{}", &doc.trim_end()[1..])
}

/// Minimal JSON string escaping (the reporter emits only strings it
/// formatted itself, but labels may carry quotes or backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Print a figure banner stamped with the run's config provenance, and
/// reset the reporter's column state for the new figure.
pub fn banner(ctx: &FigureCtx, id: &str, title: &str) {
    banner_with(ctx, id, title, &[]);
}

/// [`banner`] with figure-specific provenance appended (worker counts,
/// morsel sizing, reoptimization cadence — whatever the figure pins).
pub fn banner_with(ctx: &FigureCtx, id: &str, title: &str, extras: &[(&str, String)]) {
    let mut rep = REPORTER.lock().expect("reporter lock");
    rep.json = ctx.json;
    rep.figure = id.to_string();
    rep.columns.clear();
    rep.metrics.clear();
    let mut pairs = ctx.provenance();
    for (k, v) in extras {
        pairs.push((k, v.clone()));
    }
    if rep.json {
        let config: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v)))
            .collect();
        println!(
            "{{\"type\":\"banner\",\"figure\":\"{}\",\"title\":\"{}\",\"config\":{{{}}}}}",
            esc(id),
            esc(title),
            config.join(",")
        );
    } else {
        println!("\n### Figure {id}: {title}");
        let joined: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("# config: {}", joined.join(" "));
    }
}

/// Declare the figure's column names. Subsequent [`row`] calls zip
/// against these names in JSON mode.
pub fn header<S: AsRef<str>>(cells: &[S]) {
    let mut rep = REPORTER.lock().expect("reporter lock");
    rep.columns = cells.iter().map(|c| c.as_ref().to_string()).collect();
    if rep.json {
        let cols: Vec<String> = rep
            .columns
            .iter()
            .map(|c| format!("\"{}\"", esc(c)))
            .collect();
        println!(
            "{{\"type\":\"header\",\"figure\":\"{}\",\"columns\":[{}]}}",
            esc(&rep.figure),
            cols.join(",")
        );
    } else {
        let joined: Vec<&str> = cells.iter().map(AsRef::as_ref).collect();
        println!("{}", joined.join("\t"));
    }
}

/// Print one data row: tab-separated in text mode, an object keyed by
/// the last [`header`]'s column names in JSON mode (positional
/// `"c<N>"` keys when a figure never declared columns or the widths
/// disagree — the row is never silently truncated).
pub fn row<S: AsRef<str>>(cells: &[S]) {
    let rep = REPORTER.lock().expect("reporter lock");
    if rep.json {
        let fields: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let key = rep
                    .columns
                    .get(i)
                    .filter(|_| rep.columns.len() == cells.len())
                    .cloned()
                    .unwrap_or_else(|| format!("c{i}"));
                format!("\"{}\":\"{}\"", esc(&key), esc(c.as_ref()))
            })
            .collect();
        println!(
            "{{\"type\":\"row\",\"figure\":\"{}\",\"cells\":{{{}}}}}",
            esc(&rep.figure),
            fields.join(",")
        );
    } else {
        let joined: Vec<&str> = cells.iter().map(AsRef::as_ref).collect();
        println!("{}", joined.join("\t"));
    }
}

/// Emit one commentary line. Text mode prints it verbatim (figures pass
/// `# `-prefixed text); JSON mode strips the comment prefix and wraps
/// the rest in a `note` object. Use via the [`note!`] macro.
pub fn note_line(text: &str) {
    let rep = REPORTER.lock().expect("reporter lock");
    if rep.json {
        let stripped = text.strip_prefix("# ").unwrap_or(text);
        println!(
            "{{\"type\":\"note\",\"figure\":\"{}\",\"text\":\"{}\"}}",
            esc(&rep.figure),
            esc(stripped)
        );
    } else {
        println!("{text}");
    }
}

/// `println!`-compatible commentary through the reporter: text mode
/// prints the formatted line, `--json` mode wraps it in a `note` object.
#[macro_export]
macro_rules! note {
    ($($arg:tt)*) => {
        $crate::common::note_line(&format!($($arg)*))
    };
}

/// A figure-level invariant: panics with the failing figure's id in the
/// message so a multi-figure run points at the culprit.
pub fn check(cond: bool, msg: &str) {
    if !cond {
        let figure = REPORTER.lock().expect("reporter lock").figure.clone();
        panic!("figure {figure}: {msg}");
    }
}

/// Captures a figure's traced runs into memory and writes them out as
/// one Chrome-trace-event JSON (`--trace-out`). Query ids are handed out
/// sequentially so every traced run in the figure lands in one file
/// with distinct `"query"` tags.
pub struct TraceCapture {
    tracer: Arc<Tracer>,
    sink: Arc<MemorySink>,
    path: String,
    next_query: AtomicUsize,
}

impl TraceCapture {
    /// A capture for `workers` worker lanes when the context asks for
    /// tracing (`None` otherwise — the figure runs untraced).
    pub fn from_ctx(ctx: &FigureCtx, workers: usize) -> Option<Self> {
        ctx.trace_out.as_ref().map(|path| {
            let sink = Arc::new(MemorySink::new());
            Self {
                tracer: Arc::new(Tracer::for_workers(sink.clone(), workers)),
                sink,
                path: path.clone(),
                next_query: AtomicUsize::new(0),
            }
        })
    }

    /// The tracer to hand to traced runs.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The next sequential query id for this capture.
    pub fn next_query(&self) -> usize {
        self.next_query.fetch_add(1, Ordering::Relaxed)
    }

    /// Records captured so far (for in-figure summaries).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.sink.snapshot()
    }

    /// Export everything captured to the `--trace-out` path as Chrome
    /// trace-event JSON, validating the emitted text parses.
    pub fn write(&self) {
        let records = self.sink.snapshot();
        let json = chrome_trace(&records);
        validate_json(&json).expect("chrome trace export is valid JSON");
        std::fs::write(&self.path, &json).expect("trace output path is writable");
        note!(
            "# trace: {} events -> {} ({} bytes)",
            records.len(),
            self.path,
            json.len()
        );
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Evenly subsample `k` items of a slice (always keeps first and last).
pub fn subsample<T: Clone>(items: &[T], k: usize) -> Vec<T> {
    if items.len() <= k || k < 2 {
        return items.to_vec();
    }
    (0..k)
        .map(|i| items[i * (items.len() - 1) / (k - 1)].clone())
        .collect()
}

/// Map `f` over `items` on all available cores, preserving order.
///
/// Each worker owns a `SimCpu`-style context created inside `f`; items are
/// claimed from an atomic cursor so long-running simulator sweeps balance
/// across threads.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("no poisoned workers")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn subsample_keeps_endpoints() {
        let items: Vec<u32> = (0..100).collect();
        let s = subsample(&items, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 99);
    }

    #[test]
    fn fmt_precision_tiers() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.123456), "0.1235");
    }

    #[test]
    fn scale_picks_by_mode() {
        let mut ctx = FigureCtx::plain();
        ctx.quick = true;
        assert_eq!(ctx.scale(100, 10), 10);
        ctx.quick = false;
        assert_eq!(ctx.scale(100, 10), 100);
    }

    #[test]
    fn provenance_tracks_the_context() {
        let mut ctx = FigureCtx::plain();
        ctx.shared_llc = true;
        ctx.sockets = 2;
        ctx.trace_out = Some("/tmp/t.json".into());
        let pairs = ctx.provenance();
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("mode"), "full");
        assert_eq!(get("llc"), "shared");
        assert_eq!(get("sockets"), "2");
        assert_eq!(get("trace"), "/tmp/t.json");
    }

    #[test]
    fn json_escaping_survives_validation() {
        let escaped = esc("a\"b\\c\nd\te\u{1}");
        assert!(!escaped.contains('\n'));
        let quoted = format!("\"{escaped}\"");
        validate_json(&quoted).expect("escaped string is valid JSON");
    }

    #[test]
    fn bench_metrics_drain_in_order_and_last_write_wins() {
        take_metrics(); // isolate from other tests sharing the reporter
        bench_metric("a", 1.0);
        bench_metric_tol("b", 2.0, 0.5);
        bench_metric_tol("a", 3.0, 0.2); // re-record replaces in place
        let metrics = take_metrics();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].name, "a");
        assert_eq!(metrics[0].value, 3.0);
        assert_eq!(metrics[0].tol, 0.2);
        assert_eq!(metrics[1].name, "b");
        assert_eq!(metrics[1].tol, 0.5);
        assert!(take_metrics().is_empty(), "drained");
    }

    #[test]
    fn snapshot_json_is_valid_and_carries_every_metric() {
        let metrics = vec![
            BenchMetric {
                name: "wall_ms".into(),
                value: 12.5,
                tol: 0.1,
            },
            BenchMetric {
                name: "odd\"name".into(),
                value: 3.0,
                tol: 0.35,
            },
        ];
        let doc = snapshot_json("scale", "quick", &metrics);
        validate_json(doc.trim_end()).expect("snapshot is valid JSON");
        assert!(doc.contains("\"figure\":\"scale\""));
        assert!(doc.contains("\"mode\":\"quick\""));
        assert!(doc.contains("\"wall_ms\":{\"value\":12.5,\"tol\":0.1}"));
        assert!(
            doc.ends_with('\n'),
            "committed baselines end with a newline"
        );
        let line = snapshot_line("scale", "quick", &metrics);
        validate_json(&line).expect("snapshot line is valid JSON");
        assert!(line.starts_with("{\"type\":\"snapshot\","));
    }

    #[test]
    fn trace_capture_hands_out_sequential_queries() {
        let mut ctx = FigureCtx::plain();
        assert!(TraceCapture::from_ctx(&ctx, 4).is_none());
        ctx.trace_out = Some("/tmp/unused-trace.json".into());
        let cap = TraceCapture::from_ctx(&ctx, 4).expect("tracing requested");
        assert_eq!(cap.next_query(), 0);
        assert_eq!(cap.next_query(), 1);
        assert!(cap.tracer().enabled());
        assert_eq!(cap.tracer().lanes(), 5);
        assert!(cap.records().is_empty());
    }
}
