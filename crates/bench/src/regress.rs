//! Perf-baseline regression gate: replay figures, diff their metric
//! snapshots against committed baselines.
//!
//! Figures record named metrics through [`crate::common::bench_metric`]
//! while they print their tables; `figures regress` replays the selected
//! figures, drains those metrics, and compares each against the
//! committed `bench/baselines/BENCH_<figure>.json` snapshot. A metric
//! fails when its replayed value lands outside `baseline * (1 ± tol)`,
//! where `tol` is the per-metric relative tolerance the baseline
//! recorded (tight for deterministic cycle counts, loose for
//! host-elastic multi-worker walls).
//!
//! Exit codes mirror the CLI's conventions: a missing or mode-mismatched
//! baseline is a *setup* error (exit 2 — the gate cannot run), an
//! out-of-tolerance metric is a *regression* (exit 1). `--bless`
//! rewrites the baselines from the replay instead of comparing. The
//! `POPT_REGRESS_INFLATE` environment variable multiplies every replayed
//! value before comparison — CI sets it to `1.2` to prove the gate
//! catches a synthetic 20% cycle regression.
//!
//! Baselines are parsed by a dependency-free recursive-descent JSON
//! reader (the workspace vendors no serde); documents are validated with
//! the pinned [`popt_obs::validate_json`] grammar first, so the reader
//! only ever walks well-formed text.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use popt_obs::validate_json;

use crate::common::BenchMetric;

/// A parsed `BENCH_<figure>.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Figure id the snapshot was recorded from.
    pub figure: String,
    /// Scale mode (`quick` or `full`) the values were measured under —
    /// compared against the replay's mode, never across modes.
    pub mode: String,
    /// Metrics in document order.
    pub metrics: Vec<BenchMetric>,
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Snapshot key.
    pub name: String,
    /// Committed value.
    pub baseline: f64,
    /// Replayed value (after any `POPT_REGRESS_INFLATE`), `None` when
    /// the replay no longer records the metric.
    pub current: Option<f64>,
    /// Relative tolerance from the baseline.
    pub tol: f64,
    /// Signed relative delta `(current - baseline) / |baseline|`.
    pub rel_delta: f64,
    /// Within tolerance?
    pub pass: bool,
}

const EPS: f64 = 1e-12;

/// The committed baselines directory (`bench/baselines/` at the repo
/// root, resolved relative to this crate so the gate works from any
/// working directory).
pub fn baselines_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baselines")
}

/// The committed baseline path of one figure.
pub fn baseline_path(id: &str) -> PathBuf {
    baselines_dir().join(format!("BENCH_{id}.json"))
}

/// Compare a replay's metrics against the baseline. Every baseline
/// metric must be present and within its tolerance; metrics the replay
/// recorded but the baseline never saw are returned separately (they are
/// advice to re-bless, not a failure — a new metric cannot regress).
pub fn compare(
    baseline: &Baseline,
    current: &[BenchMetric],
    inflate: f64,
) -> (Vec<MetricDelta>, Vec<String>) {
    let deltas: Vec<MetricDelta> = baseline
        .metrics
        .iter()
        .map(|b| {
            let cur = current
                .iter()
                .find(|c| c.name == b.name)
                .map(|c| c.value * inflate);
            let rel_delta = match cur {
                Some(v) => (v - b.value) / b.value.abs().max(EPS),
                None => f64::INFINITY,
            };
            MetricDelta {
                name: b.name.clone(),
                baseline: b.value,
                current: cur,
                tol: b.tol,
                rel_delta,
                pass: cur.is_some() && rel_delta.abs() <= b.tol,
            }
        })
        .collect();
    let known: BTreeSet<&str> = baseline.metrics.iter().map(|m| m.name.as_str()).collect();
    let new = current
        .iter()
        .filter(|c| !known.contains(c.name.as_str()))
        .map(|c| c.name.clone())
        .collect();
    (deltas, new)
}

// --- minimal JSON reader -------------------------------------------------

/// The JSON subset the baseline schema uses, as a tree.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates never appear in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parse one baseline document. Validates with the pinned JSON grammar
/// first, then extracts the `{figure, mode, metrics}` schema; any
/// missing or mistyped field is an error (a hand-edited baseline must
/// fail loudly, not compare garbage).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    validate_json(text.trim_end()).map_err(|e| format!("invalid JSON: {e}"))?;
    let mut reader = Reader::new(text);
    let doc = reader.value()?;
    let figure = doc
        .get("figure")
        .and_then(Json::as_str)
        .ok_or("missing \"figure\"")?
        .to_string();
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing \"mode\"")?
        .to_string();
    let Some(Json::Obj(fields)) = doc.get("metrics") else {
        return Err("missing \"metrics\" object".into());
    };
    let mut metrics = Vec::with_capacity(fields.len());
    for (name, entry) in fields {
        let value = entry
            .get("value")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("metric {name:?}: missing \"value\""))?;
        let tol = entry
            .get("tol")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("metric {name:?}: missing \"tol\""))?;
        metrics.push(BenchMetric {
            name: name.clone(),
            value,
            tol,
        });
    }
    Ok(Baseline {
        figure,
        mode,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::snapshot_json;

    fn metric(name: &str, value: f64, tol: f64) -> BenchMetric {
        BenchMetric {
            name: name.into(),
            value,
            tol,
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let metrics = vec![
            metric("wall_ms", 12.5, 0.1),
            metric("speedup", 3.25, 0.35),
            metric("weird \"name\"\n", -0.001953125, 0.0),
        ];
        let doc = snapshot_json("scale", "quick", &metrics);
        let parsed = parse_baseline(&doc).expect("own snapshots parse");
        assert_eq!(parsed.figure, "scale");
        assert_eq!(parsed.mode, "quick");
        assert_eq!(parsed.metrics, metrics, "values survive bit-exactly");
    }

    #[test]
    fn malformed_baselines_fail_loudly() {
        assert!(parse_baseline("{").is_err());
        assert!(parse_baseline("[]").is_err(), "wrong shape");
        assert!(
            parse_baseline("{\"figure\":\"x\"}").is_err(),
            "missing mode"
        );
        assert!(
            parse_baseline("{\"figure\":\"x\",\"mode\":\"quick\",\"metrics\":{\"m\":{}}}").is_err(),
            "metric without value/tol"
        );
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_outside() {
        let base = Baseline {
            figure: "scale".into(),
            mode: "quick".into(),
            metrics: vec![metric("a", 100.0, 0.10), metric("b", 50.0, 0.35)],
        };
        let current = vec![metric("a", 105.0, 0.10), metric("b", 60.0, 0.35)];
        let (deltas, new) = compare(&base, &current, 1.0);
        assert!(deltas.iter().all(|d| d.pass), "{deltas:?}");
        assert!(new.is_empty());

        // a drifts 12% — past its 10% tolerance.
        let current = vec![metric("a", 112.0, 0.10), metric("b", 50.0, 0.35)];
        let (deltas, _) = compare(&base, &current, 1.0);
        assert!(!deltas[0].pass);
        assert!((deltas[0].rel_delta - 0.12).abs() < 1e-12);
        assert!(deltas[1].pass);
    }

    #[test]
    fn synthetic_inflation_trips_tight_metrics() {
        let base = Baseline {
            figure: "scale".into(),
            mode: "quick".into(),
            metrics: vec![metric("tight", 100.0, 0.10), metric("loose", 100.0, 0.35)],
        };
        let current = vec![metric("tight", 100.0, 0.10), metric("loose", 100.0, 0.35)];
        let (deltas, _) = compare(&base, &current, 1.2);
        assert!(!deltas[0].pass, "20% inflation must trip a 10% tolerance");
        assert!(deltas[1].pass, "a 35% tolerance absorbs it by design");
    }

    #[test]
    fn missing_and_new_metrics_are_told_apart() {
        let base = Baseline {
            figure: "serve".into(),
            mode: "quick".into(),
            metrics: vec![metric("gone", 1.0, 0.1)],
        };
        let current = vec![metric("fresh", 2.0, 0.1)];
        let (deltas, new) = compare(&base, &current, 1.0);
        assert!(!deltas[0].pass, "a vanished metric is a failure");
        assert_eq!(deltas[0].current, None);
        assert_eq!(new, vec!["fresh".to_string()], "new metrics are advice");
    }

    #[test]
    fn baseline_paths_land_in_the_committed_directory() {
        let p = baseline_path("scale");
        assert!(p.ends_with("bench/baselines/BENCH_scale.json"), "{p:?}");
    }
}
