//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! figures all                    # every figure, full scale
//! figures 12 13                  # selected figures
//! figures all --quick            # smoke-test scale
//! figures regress --quick        # replay + diff against committed baselines
//! figures regress --quick --bless  # re-record the baselines
//! ```

use popt_bench::common::{snapshot_json, snapshot_line, take_metrics, FigureCtx};
use popt_bench::figures;
use popt_bench::regress;

fn print_usage() {
    eprintln!(
        "usage: figures <id...|all|regress|help> [--quick] [--shared-llc] [--sockets N] \
         [--json] [--trace-out PATH] [--bless]"
    );
    eprintln!("figure ids: {}", figures::ALL.join(", "));
    eprintln!("  --quick           reduced scale for smoke runs");
    eprintln!("  --shared-llc      single-socket mode: co-running work contends for one LLC");
    eprintln!("  --sockets N       split the pool into N sockets (parallel/serving figures)");
    eprintln!("  --json            machine-readable JSON lines instead of tab columns");
    eprintln!("  --trace-out PATH  write a Chrome-trace JSON of the traced figures' decisions");
    eprintln!(
        "  regress [id...]   replay figures (default: scale serve simspeed) and fail if any \
         recorded metric drifts past its committed baseline tolerance"
    );
    eprintln!("  --bless           with regress: rewrite the committed baselines instead");
}

/// The `regress` subcommand: replay each figure, drain its recorded
/// metrics, and compare (or `--bless`) against the committed baseline.
/// Exit codes: 2 for setup errors (missing/invalid/mode-mismatched
/// baseline, bad inflate), 1 for an out-of-tolerance metric, 0 clean.
fn run_regress(ctx: &FigureCtx, ids: &[&str], bless: bool) -> ! {
    let ids: Vec<&str> = if ids.is_empty() {
        vec!["scale", "serve", "simspeed"]
    } else {
        ids.to_vec()
    };
    let mode = if ctx.quick { "quick" } else { "full" };
    // CI's self-test knob: multiply every replayed value to prove the
    // gate trips on a synthetic regression.
    let inflate = match std::env::var("POPT_REGRESS_INFLATE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x > 0.0 => x,
            _ => {
                eprintln!("error: POPT_REGRESS_INFLATE={v:?} is not a positive number");
                std::process::exit(2);
            }
        },
        Err(_) => 1.0,
    };

    // Load every baseline *before* replaying anything: a missing file
    // must fail fast, not after minutes of simulation.
    let mut baselines = Vec::new();
    if !bless {
        for id in &ids {
            let path = regress::baseline_path(id);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!(
                        "error: no committed baseline for figure {id:?} at {} ({e}); \
                         record one with `figures regress --bless {id}`",
                        path.display()
                    );
                    std::process::exit(2);
                }
            };
            let baseline = match regress::parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: baseline {} does not parse: {e}", path.display());
                    std::process::exit(2);
                }
            };
            if baseline.mode != mode {
                eprintln!(
                    "error: baseline {} was recorded in {:?} mode but this replay is \
                     {mode:?}; rerun with the matching scale flag or re-bless",
                    path.display(),
                    baseline.mode
                );
                std::process::exit(2);
            }
            baselines.push(baseline);
        }
    }

    let mut failed = false;
    for (k, id) in ids.iter().enumerate() {
        if !figures::run(id, ctx) {
            eprintln!(
                "unknown figure id {id:?}; known: {}",
                figures::ALL.join(", ")
            );
            std::process::exit(2);
        }
        let metrics = take_metrics();
        if metrics.is_empty() {
            eprintln!("error: figure {id:?} records no metrics — nothing to gate");
            std::process::exit(2);
        }
        if bless {
            let path = regress::baseline_path(id);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("baselines directory is creatable");
            }
            std::fs::write(&path, snapshot_json(id, mode, &metrics))
                .expect("baseline path is writable");
            println!(
                "regress {id}: blessed {} metrics -> {}",
                metrics.len(),
                path.display()
            );
            continue;
        }
        let (deltas, new) = regress::compare(&baselines[k], &metrics, inflate);
        let mut figure_failed = false;
        for d in &deltas {
            let verdict = if d.pass { "ok" } else { "FAIL" };
            let current = match d.current {
                Some(v) => format!("{v:.6}"),
                None => "missing".into(),
            };
            println!(
                "regress {id}: {} baseline={:.6} current={current} delta={:+.2}% tol={:.0}% {verdict}",
                d.name,
                d.baseline,
                d.rel_delta * 100.0,
                d.tol * 100.0,
            );
            figure_failed |= !d.pass;
        }
        for name in &new {
            println!("regress {id}: {name} is new (not in the baseline) — consider --bless");
        }
        println!(
            "regress {id}: {} ({} metrics, {} new)",
            if figure_failed { "FAIL" } else { "PASS" },
            deltas.len(),
            new.len()
        );
        failed |= figure_failed;
    }
    if failed {
        eprintln!("regress: FAIL — at least one metric drifted past its baseline tolerance");
        std::process::exit(1);
    }
    println!("regress: all replayed metrics within baseline tolerance");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut shared_llc = false;
    let mut sockets = 1usize;
    let mut json = false;
    let mut bless = false;
    let mut trace_out: Option<String> = None;
    let mut time = false;
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--time" => time = true,
            "--shared-llc" => shared_llc = true,
            "--json" => json = true,
            "--bless" => bless = true,
            "--sockets" => {
                // A socket count of 0 (or garbage) must fail loudly for
                // the same reason an unknown flag does.
                sockets = match iter.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --sockets needs a count >= 1");
                        print_usage();
                        std::process::exit(2);
                    }
                };
            }
            "--trace-out" => {
                trace_out = match iter.next() {
                    Some(path) if !path.is_empty() && !path.starts_with('-') => Some(path.clone()),
                    _ => {
                        eprintln!("error: --trace-out needs a file path");
                        print_usage();
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                // An unknown flag must fail loudly: silently ignoring it
                // would let a CI smoke "pass" while running the wrong
                // experiment.
                eprintln!("error: unknown flag {flag:?}");
                print_usage();
                std::process::exit(2);
            }
            id => ids.push(id),
        }
    }
    let ctx = FigureCtx {
        quick,
        shared_llc,
        sockets,
        json,
        trace_out,
        time,
    };

    // `figures help` is a successful, explicit request for usage (exit 0);
    // a bare `figures` is a misuse that still deserves the usage text but
    // must fail (exit 2) so scripts notice the missing figure ids.
    if ids.contains(&"help") {
        print_usage();
        std::process::exit(0);
    }
    if ids.is_empty() {
        eprintln!("error: no figure ids given");
        print_usage();
        std::process::exit(2);
    }

    if ids[0] == "regress" {
        run_regress(&ctx, &ids[1..], bless);
    }
    if bless {
        eprintln!("error: --bless only applies to the regress subcommand");
        print_usage();
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        figures::ALL.to_vec()
    } else {
        ids
    };

    let started = std::time::Instant::now();
    for id in &selected {
        let t0 = std::time::Instant::now();
        if !figures::run(id, &ctx) {
            eprintln!(
                "unknown figure id {id:?}; known: {}",
                figures::ALL.join(", ")
            );
            std::process::exit(2);
        }
        // In --json mode every figure's recorded metrics close its output
        // as one "snapshot" line — the same document `regress --bless`
        // commits, so a harness can diff without the subcommand.
        if ctx.time {
            popt_bench::note!(
                "# figure {id}: host wall {:.2}s",
                t0.elapsed().as_secs_f64()
            );
        }
        let metrics = take_metrics();
        if ctx.json && !metrics.is_empty() {
            println!(
                "{}",
                snapshot_line(id, if ctx.quick { "quick" } else { "full" }, &metrics)
            );
        }
        eprintln!("# figure {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "# all requested figures done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
