//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! figures all            # every figure, full scale
//! figures 12 13          # selected figures
//! figures all --quick    # smoke-test scale
//! ```

use popt_bench::common::FigureCtx;
use popt_bench::figures;

fn print_usage() {
    eprintln!(
        "usage: figures <id...|all|help> [--quick] [--shared-llc] [--sockets N] \
         [--json] [--trace-out PATH]"
    );
    eprintln!("figure ids: {}", figures::ALL.join(", "));
    eprintln!("  --quick           reduced scale for smoke runs");
    eprintln!("  --shared-llc      single-socket mode: co-running work contends for one LLC");
    eprintln!("  --sockets N       split the pool into N sockets (parallel/serving figures)");
    eprintln!("  --json            machine-readable JSON lines instead of tab columns");
    eprintln!("  --trace-out PATH  write a Chrome-trace JSON of the traced figures' decisions");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut shared_llc = false;
    let mut sockets = 1usize;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--shared-llc" => shared_llc = true,
            "--json" => json = true,
            "--sockets" => {
                // A socket count of 0 (or garbage) must fail loudly for
                // the same reason an unknown flag does.
                sockets = match iter.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --sockets needs a count >= 1");
                        print_usage();
                        std::process::exit(2);
                    }
                };
            }
            "--trace-out" => {
                trace_out = match iter.next() {
                    Some(path) if !path.is_empty() && !path.starts_with('-') => Some(path.clone()),
                    _ => {
                        eprintln!("error: --trace-out needs a file path");
                        print_usage();
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                // An unknown flag must fail loudly: silently ignoring it
                // would let a CI smoke "pass" while running the wrong
                // experiment.
                eprintln!("error: unknown flag {flag:?}");
                print_usage();
                std::process::exit(2);
            }
            id => ids.push(id),
        }
    }
    let ctx = FigureCtx {
        quick,
        shared_llc,
        sockets,
        json,
        trace_out,
    };

    // `figures help` is a successful, explicit request for usage (exit 0);
    // a bare `figures` is a misuse that still deserves the usage text but
    // must fail (exit 2) so scripts notice the missing figure ids.
    if ids.contains(&"help") {
        print_usage();
        std::process::exit(0);
    }
    if ids.is_empty() {
        eprintln!("error: no figure ids given");
        print_usage();
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        figures::ALL.to_vec()
    } else {
        ids
    };

    let started = std::time::Instant::now();
    for id in &selected {
        let t0 = std::time::Instant::now();
        if !figures::run(id, &ctx) {
            eprintln!(
                "unknown figure id {id:?}; known: {}",
                figures::ALL.join(", ")
            );
            std::process::exit(2);
        }
        eprintln!("# figure {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "# all requested figures done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
