//! # popt-bench — the experiment harness
//!
//! One module per figure of the paper's evaluation (plus the cost-model
//! figures of Sections 1–4). Each module exposes `run(&FigureCtx)` which
//! prints the same data series the figure plots, as tab-separated rows
//! with a header — suitable for eyeballing, diffing against
//! EXPERIMENTS.md, or piping into gnuplot.
//!
//! Run everything with
//! `cargo run --release -p popt-bench --bin figures -- all`
//! or one figure with `… -- 12` (optionally `--quick`).

pub mod common;
pub mod figures;
pub mod regress;
