//! Observability figure (beyond the paper): the structured decision
//! trace of the progressive engine, and the proof that collecting it is
//! non-invasive.
//!
//! Three parts:
//!
//! * **bit-identity** — the Figure-14-style "Mem" workload (selection +
//!   LLC-thrashing random FK probe, started join-first so the loop has
//!   work to do) runs twice on one worker with reoptimization on: once
//!   untraced, once with the full event stream captured. The two
//!   [`ParallelReport`]s must compare equal field-for-field — cycles,
//!   switches, orders, counters — because every stamp reads simulated
//!   clocks the engine already maintains and the sink hangs outside the
//!   costed path. (On multi-worker pools with reoptimization, which
//!   round leases a trial is host-interleaving-elastic by design, so the
//!   multi-worker pair asserts result/order identity, the same contract
//!   the executor itself documents.)
//! * **event census** — what the traced multi-worker run actually
//!   emitted, by kind: morsel claims, reopt rounds with their fitted
//!   selectivities, trial leases/accepts/reverts, epoch publications.
//!   The morsel-claim count must equal the report's morsel count — the
//!   trace is complete, not sampled.
//! * **serving decisions** — two one-query batches of the same template
//!   through [`QueryServer`]: admission, socket homing, the cold-miss
//!   then warm-hit pair of cache lookups, and the completion records,
//!   rendered through the human-readable decision log.
//!
//! With `--trace-out PATH` everything captured is exported as one
//! Chrome-trace-event JSON (load it in Perfetto: morsels are duration
//! slices per worker lane, decisions are instants).

use std::collections::BTreeMap;
use std::sync::Arc;

use popt_core::parallel::{run_parallel_program, run_parallel_program_traced, MorselConfig};
use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::ProgressiveConfig;
use popt_core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
use popt_cpu::CpuPool;
use popt_obs::{decision_log, validate_json, MemorySink, MetricsRegistry, TraceRecord, Tracer};

use crate::common::{banner_with, check, fmt, header, row, FigureCtx};
use crate::figures::fig15::scaled_cpu;
use crate::figures::workload::{fig14_mem_tables, DOMAIN};
use crate::note;

/// Workers of the multi-worker census run.
const WORKERS: usize = 4;

fn count_kinds(records: &[TraceRecord]) -> BTreeMap<&'static str, usize> {
    let mut kinds = BTreeMap::new();
    for r in records {
        *kinds.entry(r.event.kind()).or_insert(0) += 1;
    }
    kinds
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    let rows = ctx.scale(1 << 19, 1 << 17);
    let config = ProgressiveConfig {
        reop_interval: 4,
        ..Default::default()
    };
    let morsels = MorselConfig::cache_friendly(&scaled_cpu(), 12);
    banner_with(
        ctx,
        "trace",
        "Non-invasive decision trace: bit-identity, event census, explain log",
        &[
            ("workers", WORKERS.to_string()),
            ("morsel_tuples", morsels.morsel_tuples.to_string()),
            ("reop_interval", config.reop_interval.to_string()),
        ],
    );
    let (fact, dim) = fig14_mem_tables(rows, 0x5CA1E);
    let build = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };

    // --- Part 1: tracing on/off bit-identity. ---
    header(&[
        "pair",
        "workers",
        "reopt",
        "wall_cycles_equal",
        "bit_identical",
    ]);
    let run_pair = |workers: usize, query: usize| {
        let mut plain_program = build();
        let mut plain_pool = CpuPool::new(scaled_cpu(), workers);
        let plain = run_parallel_program(
            &mut plain_program,
            &[1, 0],
            morsels,
            &mut plain_pool,
            Some(&config),
        )
        .expect("untraced run");
        let sink = Arc::new(MemorySink::new());
        let tracer = Arc::new(Tracer::for_workers(sink.clone(), workers));
        let mut traced_program = build();
        let mut traced_pool = CpuPool::new(scaled_cpu(), workers);
        let traced = run_parallel_program_traced(
            &mut traced_program,
            &[1, 0],
            morsels,
            &mut traced_pool,
            Some(&config),
            &tracer,
            query,
        )
        .expect("traced run");
        (plain, traced, sink.take())
    };

    let (plain_1w, traced_1w, records_1w) = run_pair(1, 0);
    row(&[
        "solo".to_string(),
        "1".to_string(),
        "on".to_string(),
        (plain_1w.wall_cycles == traced_1w.wall_cycles).to_string(),
        (plain_1w == traced_1w).to_string(),
    ]);
    check(
        plain_1w == traced_1w,
        "1-worker traced report must equal the untraced report field-for-field",
    );
    check(
        !records_1w.is_empty(),
        "the traced run must actually emit events",
    );

    let (plain_nw, traced_nw, records_nw) = run_pair(WORKERS, 1);
    let results_equal = plain_nw.qualified == traced_nw.qualified
        && plain_nw.sum == traced_nw.sum
        && plain_nw.morsels == traced_nw.morsels;
    row(&[
        "pool".to_string(),
        WORKERS.to_string(),
        "on".to_string(),
        (plain_nw.wall_cycles == traced_nw.wall_cycles).to_string(),
        results_equal.to_string(),
    ]);
    check(
        results_equal,
        "traced multi-worker results must be bit-identical to untraced",
    );

    // --- Part 2: event census of the traced multi-worker run. ---
    let kinds = count_kinds(&records_nw);
    header(&["event_kind", "count"]);
    for (kind, count) in &kinds {
        row(&[kind.to_string(), count.to_string()]);
    }
    let morsel_events = kinds.get("morsel").copied().unwrap_or(0);
    check(
        morsel_events == traced_nw.morsels,
        "one claim event per executed morsel (the trace is complete, not sampled)",
    );
    check(
        kinds.get("complete").copied().unwrap_or(0) == 1,
        "exactly one completion event per run",
    );
    check(
        kinds.get("llc_repartition").copied().unwrap_or(0) >= 1,
        "the batch-boundary LLC declaration must be traced",
    );
    check(
        kinds.get("reopt_round").copied().unwrap_or(0) >= 1,
        "reoptimization rounds must be traced",
    );

    let mut reg = MetricsRegistry::new();
    traced_nw.record_metrics(&mut reg);
    note!(
        "# metrics: runs={} morsels={} switches={} estimates={} occupancy={}",
        reg.counter("parallel.runs"),
        reg.counter("parallel.morsels"),
        reg.counter("parallel.switches"),
        reg.counter("parallel.estimates"),
        fmt(reg.gauge("parallel.occupancy").unwrap_or(0.0)),
    );

    // --- Part 3: serving decisions through the explain log. ---
    let serve_cpu = scaled_cpu();
    let serve_rows = rows.min(1 << 17);
    let (sfact, sdim) = fig14_mem_tables(serve_rows, 0x0B5);
    let serve_build = || {
        PlanBuilder::scan(&sfact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&sdim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    let sink = Arc::new(MemorySink::new());
    let tracer = Arc::new(Tracer::for_workers(sink.clone(), WORKERS));
    let mut server = QueryServer::new(ServeConfig::default());
    server.set_tracer(tracer.clone());
    server.admit(QuerySpec::compiled(
        "mem-cold",
        serve_build(),
        Priority::High,
        0,
    ));
    let mut pool = CpuPool::new(serve_cpu.clone(), WORKERS);
    let cold = server.run(&mut pool).expect("cold serve batch");
    check(
        !cold.queries[0].warm_start,
        "the first instance of a template must start cold",
    );
    // Second batch of the same template on the same server: the
    // admission-time cache consultation warm-starts it from the
    // converged order the cold run published.
    server.admit(QuerySpec::compiled(
        "mem-warm",
        serve_build(),
        Priority::Normal,
        0,
    ));
    let mut pool = CpuPool::new(serve_cpu, WORKERS);
    let report = server.run(&mut pool).expect("warm serve batch");
    let serve_records = sink.take();
    let serve_kinds = count_kinds(&serve_records);
    check(
        serve_kinds.get("admit").copied().unwrap_or(0) == 2,
        "both admissions must be traced",
    );
    check(
        serve_kinds.get("cache_record").copied().unwrap_or(0) == 2,
        "both completions must publish to the cache",
    );
    check(
        report.queries[0].warm_start,
        "the second batch must warm-start from the first instance's template",
    );
    let mut serve_reg = MetricsRegistry::new();
    cold.record_metrics(&mut serve_reg);
    report.record_metrics(&mut serve_reg);
    server.cache().record_metrics(&mut serve_reg);
    note!(
        "# serve metrics: queries={} warm_starts={} cache hits={} misses={} occupancy={}",
        serve_reg.counter("serve.queries"),
        serve_reg.counter("serve.warm_starts"),
        serve_reg.counter("cache.hits"),
        serve_reg.counter("cache.misses"),
        fmt(serve_reg.gauge("serve.occupancy").unwrap_or(0.0)),
    );

    // The human-readable decision log: every non-morsel event, ordered
    // by (query, cycles, lane, ordinal). Print the serving batch's head.
    let log = decision_log(&serve_records);
    note!("# explain (first decisions of the serving batch):");
    for line in log.lines().take(10) {
        note!("#   {line}");
    }

    // --- Export. ---
    let mut all = records_1w;
    all.extend(records_nw);
    all.extend(serve_records);
    let json = popt_obs::chrome_trace(&all);
    validate_json(&json).expect("chrome trace export is valid JSON");
    match &ctx.trace_out {
        Some(path) => {
            std::fs::write(path, &json).expect("trace output path is writable");
            note!(
                "# trace: {} events -> {} ({} bytes)",
                all.len(),
                path,
                json.len()
            );
        }
        None => note!(
            "# chrome trace: {} events, {} bytes (pass --trace-out PATH to write it)",
            all.len(),
            json.len()
        ),
    }

    note!(
        "# expectation: tracing changes nothing the simulator measures — the \
         1-worker traced/untraced reports are equal field-for-field, the pool \
         run's results and orders match bit-for-bit, and every executed morsel \
         appears exactly once in the event stream with its (worker, simulated \
         cycle) stamp"
    );
}
