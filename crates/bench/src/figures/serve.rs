//! Serving figure (beyond the paper): multi-query admission, priority
//! scheduling, and cross-query order reuse on the shared pool.
//!
//! Three experiments over a mixed workload of repeated query templates
//! (a high-priority selective scan, a normal-priority selection+join
//! pipeline started from the *worse* static order, and a low-priority
//! background scan):
//!
//! 1. **Closed-loop throughput sweep** — the whole batch arrives at
//!    time 0; workers swept 1→8. Morsel slots are divided by stride
//!    scheduling, every query reoptimizes independently, and throughput
//!    must scale (asserted ≥ 2× at 4 workers).
//! 2. **Open-loop latency** — arrivals spaced to ~80% utilization of
//!    the 4-worker pool, priorities cycling high/normal/low over one
//!    template. Reported per priority class: latency percentiles and
//!    mean queueing delay — the stride weights separate the classes.
//! 3. **Warm vs. cold order cache** — the same batch served twice by
//!    one server (fresh pool each time). The second run hits the order
//!    cache, starts every query from its template's converged order and
//!    calibration, and must pay measurably less overhead-vs-best than
//!    the cold run (asserted per template).
//!
//! Every admitted query's qualified/sum is asserted bit-identical to a
//! solo single-core execution in all three experiments.

use popt_core::exec::program::CompiledProgram;
use popt_core::exec::scan::CompiledSelection;
use popt_core::plan::{Expr, PlanBuilder, SelectionPlan};
use popt_core::serve::{Priority, QueryOutcome, QueryServer, QuerySpec, ServeConfig, ServeReport};
use popt_cost::cycles::fleet_occupancy_per_socket;
use popt_cpu::{CpuConfig, CpuPool, LlcMode, SimCpu};
use popt_storage::Table;

use popt_obs::MetricsRegistry;

use crate::common::{
    banner, bench_metric, bench_metric_tol, fmt, header, row, FigureCtx, TraceCapture,
};
use crate::figures::fig15::scaled_cpu;
use crate::figures::workload::{
    fig14_mem_tables, mem_tables_with_dim, uniform_plan, uniform_table, xorshift64, DOMAIN,
};
use crate::note;

/// Worker counts of the closed-loop sweep.
pub const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

fn serve_cpu() -> CpuConfig {
    scaled_cpu()
}

fn config() -> ServeConfig {
    ServeConfig {
        // Small morsels relative to the templates' row counts: a served
        // query's stream must span enough reopt intervals to converge
        // even when it only owns a slice of the pool. Reoptimization
        // itself runs at the serving default cadence.
        morsels: popt_core::parallel::MorselConfig::new(1024),
        ..Default::default()
    }
}

fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / (serve_cpu().timing.frequency_ghz * 1e6)
}

/// The three query templates of the serving mix.
struct Mix {
    scan_table: Table,
    scan_plan: SelectionPlan,
    /// Descending-selectivity start: the worst static PEO.
    scan_worst: Vec<usize>,
    fact: Table,
    dim: Table,
    bg_table: Table,
    bg_plan: SelectionPlan,
}

impl Mix {
    fn new(scan_rows: usize, pipe_rows: usize, bg_rows: usize) -> Self {
        let (fact, dim) = fig14_mem_tables(pipe_rows, 0x5CA1E);
        Self {
            scan_table: uniform_table(scan_rows, 3, 0x5E21),
            // Well-separated selectivities: near-tied tail stages would
            // let one noisy early estimate flip a warm-seeded optimum
            // back and forth (accept, revert, explore), and the churn —
            // not convergence — would dominate the warm/cold comparison.
            scan_plan: uniform_plan(&[0.1, 0.45, 0.9]),
            scan_worst: vec![2, 1, 0],
            fact,
            dim,
            bg_table: uniform_table(bg_rows, 2, 0xB612),
            bg_plan: uniform_plan(&[0.9, 0.5]),
        }
    }

    /// The selection+join program over the Mem tables, built through
    /// the query frontend (plan order: selection 0, join 1 — served
    /// starting join-first, the worse order at full shuffle).
    fn program(&self) -> CompiledProgram<'_> {
        PlanBuilder::scan(&self.fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&self.dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    }

    fn scan_spec(&self, label: String, priority: Priority, arrival: u64) -> QuerySpec<'_> {
        QuerySpec::scan(
            label,
            &self.scan_table,
            self.scan_plan.clone(),
            self.scan_worst.clone(),
            priority,
            arrival,
        )
    }

    fn pipe_spec(&self, label: String, priority: Priority, arrival: u64) -> QuerySpec<'_> {
        let mut program = self.program();
        program.reorder(&[1, 0]).expect("join-first start order");
        QuerySpec::compiled(label, program, priority, arrival)
    }

    fn bg_spec(&self, label: String, arrival: u64) -> QuerySpec<'_> {
        QuerySpec::scan(
            label,
            &self.bg_table,
            self.bg_plan.clone(),
            vec![0, 1],
            Priority::Low,
            arrival,
        )
    }

    /// Solo single-core references: (scan, pipeline, background) as
    /// (qualified, sum).
    fn solo_refs(&self) -> [(u64, i64); 3] {
        let mut cpu = SimCpu::new(serve_cpu());
        let scan = CompiledSelection::compile(&self.scan_table, &self.scan_plan, &self.scan_worst)
            .expect("scan compiles")
            .run_range(&mut cpu, 0, self.scan_table.rows());
        let mut cpu = SimCpu::new(serve_cpu());
        let pipe = self.program().run_range(&mut cpu, 0, self.fact.rows());
        let mut cpu = SimCpu::new(serve_cpu());
        let bg = CompiledSelection::compile(&self.bg_table, &self.bg_plan, &[0, 1])
            .expect("bg scan compiles")
            .run_range(&mut cpu, 0, self.bg_table.rows());
        [
            (scan.qualified, scan.sum),
            (pipe.qualified, pipe.sum),
            (bg.qualified, bg.sum),
        ]
    }

    /// Assert every outcome matches its template's solo reference
    /// (labels are "<template>-<k>").
    fn assert_exact(&self, outcomes: &[QueryOutcome], refs: &[(u64, i64); 3]) -> bool {
        for q in outcomes {
            let (qualified, sum) = match q.label.split('-').next().expect("labelled template") {
                "scan" => refs[0],
                "pipe" => refs[1],
                "bg" => refs[2],
                other => panic!("unknown template label {other:?}"),
            };
            assert_eq!(
                q.qualified, qualified,
                "{}: served result diverged from solo execution",
                q.label
            );
            assert_eq!(q.sum, sum, "{}: served sum diverged", q.label);
        }
        true
    }
}

/// The closed-loop batch: 4 high-priority scans, 4 normal-priority
/// pipelines, 2 low-priority background scans, all queued at time 0.
fn closed_loop_batch<'t>(mix: &'t Mix) -> Vec<QuerySpec<'t>> {
    let mut batch = Vec::new();
    for k in 0..4 {
        batch.push(mix.scan_spec(format!("scan-{k}"), Priority::High, 0));
    }
    for k in 0..4 {
        batch.push(mix.pipe_spec(format!("pipe-{k}"), Priority::Normal, 0));
    }
    for k in 0..2 {
        batch.push(mix.bg_spec(format!("bg-{k}"), 0));
    }
    batch
}

fn make_pool(workers: usize, shared: bool) -> CpuPool {
    if shared {
        CpuPool::new_shared(serve_cpu(), workers)
    } else {
        CpuPool::new(serve_cpu(), workers)
    }
}

fn run_batch(batch: Vec<QuerySpec<'_>>, workers: usize, shared: bool) -> ServeReport {
    run_batch_with(batch, workers, shared, config())
}

fn run_batch_with(
    batch: Vec<QuerySpec<'_>>,
    workers: usize,
    shared: bool,
    config: ServeConfig,
) -> ServeReport {
    let mut server = QueryServer::new(config);
    for spec in batch {
        server.admit(spec);
    }
    let mut pool = make_pool(workers, shared);
    server.run(&mut pool).expect("serve batch runs")
}

/// `--trace-out`: one extra traced closed-loop batch (4 workers) whose
/// decision stream becomes the figure's Chrome-trace export — admission,
/// socket homing, cache lookups/records, morsel claims, reopt rounds and
/// trial verdicts, all stamped with simulated cycles. Tracing is
/// non-invasive, so the traced batch passes the same exact-results check
/// every untraced experiment passes.
fn trace_export(ctx: &FigureCtx, mix: &Mix, refs: &[(u64, i64); 3], shared: bool) {
    let Some(capture) = TraceCapture::from_ctx(ctx, 4) else {
        return;
    };
    let mut server = QueryServer::new(config());
    server.set_tracer(capture.tracer().clone());
    for spec in closed_loop_batch(mix) {
        server.admit(spec);
    }
    let mut pool = make_pool(4, shared);
    let report = server.run(&mut pool).expect("traced serve batch runs");
    mix.assert_exact(&report.queries, refs);
    let mut reg = MetricsRegistry::new();
    report.record_metrics(&mut reg);
    server.cache().record_metrics(&mut reg);
    note!(
        "# traced batch: queries={} warm_starts={} cache hits={} misses={} evictions={}",
        reg.counter("serve.queries"),
        reg.counter("serve.warm_starts"),
        reg.counter("cache.hits"),
        reg.counter("cache.misses"),
        reg.counter("cache.evictions"),
    );
    capture.write();
}

fn throughput_sweep(mix: &Mix, refs: &[(u64, i64); 3], shared: bool) -> (f64, f64) {
    header(&[
        "sweep",
        "workers",
        "queries",
        "wall_ms",
        "throughput_qps",
        "occupancy",
        "bit_identical",
    ]);
    let mut at_1w = 0.0f64;
    let mut at_4w = 0.0f64;
    for &workers in WORKER_COUNTS {
        let report = run_batch(closed_loop_batch(mix), workers, shared);
        let exact = mix.assert_exact(&report.queries, refs);
        let qps = report.throughput_qps();
        if workers == 1 {
            at_1w = qps;
            // Deterministic: one worker serializes every claim and fit.
            bench_metric("closed_loop.wall_ms_1w", report.wall_millis);
        }
        if workers == 4 {
            at_4w = qps;
            bench_metric_tol("closed_loop.qps_4w", qps, 0.35);
        }
        row(&[
            "closed-loop".to_string(),
            workers.to_string(),
            report.queries.len().to_string(),
            fmt(report.wall_millis),
            fmt(qps),
            fmt(report.occupancy),
            exact.to_string(),
        ]);
    }
    (at_1w, at_4w)
}

fn open_loop_latency(mix: &Mix, refs: &[(u64, i64); 3], n: usize) {
    // Self-calibrating load: measure the 4-worker closed-loop service
    // rate of the scan template, then space arrivals to ~80% of it.
    let probe = {
        let batch: Vec<_> = (0..n)
            .map(|k| mix.scan_spec(format!("scan-{k}"), Priority::Normal, 0))
            .collect();
        run_batch(batch, 4, false)
    };
    let mean_gap = (probe.wall_cycles / n as u64) * 8 / 10;

    let mut state = 0xA221u64 | 1;
    let mut arrival = 0u64;
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let batch: Vec<_> = (0..n)
        .map(|k| {
            // Jittered gaps in [0.25, 1.75) × mean keep the queue
            // bursty without long dead air.
            let jitter = 25 + xorshift64(&mut state) % 150;
            arrival += mean_gap * jitter / 100;
            mix.scan_spec(format!("scan-{k}"), priorities[k % 3], arrival)
        })
        .collect();
    // Cache off: this experiment isolates the scheduler's priority
    // separation. With mid-run publication enabled, *which* of the
    // same-template arrivals warm up depends on the host-time race
    // between a mate's completion and this query's first claim on a
    // multi-worker pool — the percentiles below would not reproduce
    // run-to-run. (The warm-up path itself is pinned deterministically
    // by the 1-worker serving tests.)
    let report = run_batch_with(
        batch,
        4,
        false,
        ServeConfig {
            use_order_cache: false,
            ..config()
        },
    );
    mix.assert_exact(&report.queries, refs);

    header(&[
        "priority",
        "n",
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "queue_mean_ms",
    ]);
    let mut p99_by_class = Vec::new();
    for priority in [Priority::High, Priority::Normal, Priority::Low] {
        let class: Vec<_> = report
            .queries
            .iter()
            .filter(|q| q.priority == priority)
            .collect();
        let p50 = report
            .latency_percentile(Some(priority), 0.50)
            .expect("class is populated");
        let p95 = report
            .latency_percentile(Some(priority), 0.95)
            .expect("class is populated");
        let p99 = report
            .latency_percentile(Some(priority), 0.99)
            .expect("class is populated");
        p99_by_class.push(p99);
        let queue_mean =
            class.iter().map(|q| q.queue_cycles).sum::<u64>() as f64 / class.len() as f64;
        row(&[
            priority.label().to_string(),
            class.len().to_string(),
            fmt(cycles_to_ms(p50)),
            fmt(cycles_to_ms(p95)),
            fmt(cycles_to_ms(p99)),
            fmt(queue_mean / (serve_cpu().timing.frequency_ghz * 1e6)),
        ]);
        bench_metric_tol(
            &format!("open_loop.{}.p99_ms", priority.label()),
            cycles_to_ms(p99),
            0.35,
        );
    }
    // The tail, not just the median, must respect the stride weights: a
    // scheduler that separates p50s but lets low-priority bursts starve
    // the high class would pass a median-only check.
    assert!(
        p99_by_class[0] <= p99_by_class[1] && p99_by_class[1] <= p99_by_class[2],
        "p99 latency must order high <= normal <= low, got {:?} cycles",
        p99_by_class
    );
    note!(
        "# open loop at ~80% load, one template across classes: stride weights \
         (16/4/1) order the classes' delays high <= normal <= low — asserted \
         at p99, the tail the weights exist to protect"
    );
}

fn warm_vs_cold<'t>(mix: &'t Mix, refs: &[(u64, i64); 3], shared: bool) {
    // One instance per template: co-scheduling two *identical* queries
    // lets their lockstep morsels share streamed lines in each core's
    // physical cache, a windfall that would mask the convergence and
    // contention costs this experiment isolates.
    let batch = |server: &mut QueryServer<'t>| {
        server.admit(mix.scan_spec("scan-0".into(), Priority::Normal, 0));
        server.admit(mix.pipe_spec("pipe-0".into(), Priority::Normal, 0));
    };
    // A coarse reopt interval, for signal-to-noise: the cold run pays a
    // full interval of worst-order morsels before its first estimate can
    // fix the order (the convergence cost a warm start skips), while the
    // optimizer runs few enough rounds that the elastic multi-worker
    // round scheduling (rounds are skipped while a fit is in flight —
    // host-speed dependent by design) cannot swamp the comparison. At
    // the serving default cadence the convergence cost is only a few
    // morsels and the comparison drowns in optimizer-cycle jitter.
    let warmcold_config = || ServeConfig {
        reopt: Some(popt_core::progressive::ProgressiveConfig {
            reop_interval: 32,
            ..Default::default()
        }),
        ..config()
    };
    let mut server = QueryServer::new(warmcold_config());
    batch(&mut server);
    let mut pool = make_pool(4, shared);
    let cold = server.run(&mut pool).expect("cold batch runs");
    mix.assert_exact(&cold.queries, refs);
    assert!(
        cold.queries.iter().all(|q| !q.warm_start),
        "first batch must be cold"
    );

    batch(&mut server);
    let mut pool = make_pool(4, shared);
    let warm = server.run(&mut pool).expect("warm batch runs");
    mix.assert_exact(&warm.queries, refs);
    assert!(
        warm.queries.iter().all(|q| q.warm_start),
        "second batch must hit the order cache"
    );

    header(&[
        "template",
        "cold_cost_ms",
        "warm_cost_ms",
        "best_ms",
        "cold_overhead_pct",
        "warm_overhead_pct",
        "warm_converged",
    ]);
    for template in ["scan", "pipe"] {
        // The optimal orders are known by construction: ascending
        // selectivity for the scan (0.1 < 0.45 < 0.9), selection before
        // the LLC-thrashing random join for the pipeline.
        let optimal: &[usize] = match template {
            "scan" => &[0, 1, 2],
            _ => &[0, 1],
        };
        let of = |report: &ServeReport| {
            let instances: Vec<_> = report
                .queries
                .iter()
                .filter(|q| q.label.starts_with(template))
                .collect();
            let cost =
                instances.iter().map(|q| q.cost_cycles()).sum::<u64>() / instances.len() as u64;
            (cost, instances[0].final_order.clone())
        };
        let (cold_cost, _cold_order) = of(&cold);
        let (warm_cost, warm_order) = of(&warm);
        // Best: solo single-core static execution under the optimal
        // order — the cost with zero convergence overhead.
        let best = match template {
            "scan" => {
                let mut cpu = SimCpu::new(serve_cpu());
                CompiledSelection::compile(&mix.scan_table, &mix.scan_plan, optimal)
                    .expect("optimal order compiles")
                    .run_range(&mut cpu, 0, mix.scan_table.rows())
                    .counters
                    .cycles
            }
            _ => {
                let mut program = mix.program();
                program.reorder(optimal).expect("optimal order");
                let mut cpu = SimCpu::new(serve_cpu());
                program
                    .run_range(&mut cpu, 0, mix.fact.rows())
                    .counters
                    .cycles
            }
        };
        let overhead = |cost: u64| (cost as f64 / best as f64 - 1.0) * 100.0;
        let (cold_pct, warm_pct) = (overhead(cold_cost), overhead(warm_cost));
        // Best is a solo single-core static run — fully deterministic;
        // the served costs are host-elastic under reoptimization.
        bench_metric(&format!("warmcold.{template}.best_ms"), cycles_to_ms(best));
        bench_metric_tol(
            &format!("warmcold.{template}.cold_ms"),
            cycles_to_ms(cold_cost),
            0.5,
        );
        bench_metric_tol(
            &format!("warmcold.{template}.warm_ms"),
            cycles_to_ms(warm_cost),
            0.5,
        );
        // "Converged" pins the dominant decision — the cheapest-per-
        // filtered-tuple stage at the front, where nearly all the cost
        // lives. Near-tied tail stages may settle in either order (the
        // same tie behaviour the scaling figure documents), so only the
        // two-stage pipeline admits an exact-permutation check.
        let converged = warm_order.first() == optimal.first();
        row(&[
            template.to_string(),
            fmt(cycles_to_ms(cold_cost)),
            fmt(cycles_to_ms(warm_cost)),
            fmt(cycles_to_ms(best)),
            fmt(cold_pct),
            fmt(warm_pct),
            converged.to_string(),
        ]);
        assert!(
            converged,
            "{template}: warm run must keep the converged front stage \
             (got {warm_order:?}, optimal {optimal:?})"
        );
        if template == "pipe" {
            assert_eq!(
                warm_order, optimal,
                "pipe: two stages leave no ties — the order must match exactly"
            );
        }
        assert!(
            warm_pct < cold_pct,
            "{template}: warm overhead {warm_pct:.2}% must beat cold {cold_pct:.2}%"
        );
        if shared {
            // One socket has no aggregate-capacity windfall: served work
            // can never beat the solo full-LLC reference, so the
            // overheads lose the negative sign the private model showed.
            assert!(
                warm_pct >= 0.0 && cold_pct >= 0.0,
                "{template}: shared-socket overhead must not go negative \
                 (warm {warm_pct:.2}%, cold {cold_pct:.2}%)"
            );
        }
    }
    if shared {
        note!(
            "# note: on the shared socket each core holds a slice of ONE LLC, so \
             the negative overheads the private model produced (N private LLCs \
             beating the solo reference) disappear — overhead is convergence cost \
             plus real capacity contention, both >= 0"
        );
    } else {
        note!(
            "# note: overhead is vs a solo single-core run under the optimal order; \
             served morsels run on 4 cores with private caches (4x the aggregate \
             LLC), so a probe-heavy template pays almost no capacity cost and can \
             even sit below the solo reference — --shared-llc closes that loophole"
        );
    }
}

/// Priority isolation under a probe-heavy co-runner, private vs shared
/// socket: a high-priority pipeline whose dimension fits its share runs
/// (a) alone and (b) against a low-priority pipeline whose dimension
/// overwhelms a share but coexists in the full socket. In private mode
/// the co-runner can only cost scheduler slots — the stride bound (the
/// deterministic 6.03% = 17/16 of the serving tests). On the shared
/// socket the slices shrink until the two hot sets no longer fit
/// together, and the physical eviction pushes the high-priority query's
/// latency past anything the scheduler alone could explain.
fn isolation(ctx: &FigureCtx) -> [f64; 2] {
    let rows = ctx.scale(1 << 17, 1 << 15);
    // 6 Ki tuples = 24 KiB: fits a 4-worker share of the 128 KiB socket.
    let (hp_fact, hp_dim) = mem_tables_with_dim(rows, 6 * 1024, 0xF00D);
    // 24 Ki tuples = 96 KiB: coexists with 24 KiB in the full socket
    // (120 KiB < 128 KiB), overwhelms a 32 KiB share.
    let (bg_fact, bg_dim) = mem_tables_with_dim(rows, 24 * 1024, 0xBEEF);
    fn pipe<'t>(fact: &'t Table, dim: &'t Table) -> CompiledProgram<'t> {
        PlanBuilder::scan(fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers")
    }

    header(&[
        "experiment",
        "llc_mode",
        "hp_solo_ms",
        "hp_corun_ms",
        "isolation_inflation_pct",
    ]);
    let mut inflation = [0.0f64; 2];
    for (m, shared) in [false, true].into_iter().enumerate() {
        let hp_spec =
            |label: &str| QuerySpec::compiled(label, pipe(&hp_fact, &hp_dim), Priority::High, 0);
        let solo = run_batch(vec![hp_spec("hp-solo")], 4, shared);
        let corun = run_batch(
            vec![
                hp_spec("hp-corun"),
                QuerySpec::compiled("bg-probe", pipe(&bg_fact, &bg_dim), Priority::Low, 0),
            ],
            4,
            shared,
        );
        let solo_hp = &solo.queries[0];
        let corun_hp = &corun.queries[0];
        assert_eq!(
            solo_hp.qualified, corun_hp.qualified,
            "co-running moved results"
        );
        assert_eq!(solo_hp.sum, corun_hp.sum, "co-running moved the aggregate");
        inflation[m] =
            (corun_hp.latency_cycles as f64 / solo_hp.latency_cycles as f64 - 1.0) * 100.0;
        row(&[
            "isolation".to_string(),
            if shared { "shared" } else { "private" }.to_string(),
            fmt(cycles_to_ms(solo_hp.latency_cycles)),
            fmt(cycles_to_ms(corun_hp.latency_cycles)),
            fmt(inflation[m]),
        ]);
    }
    inflation
}

/// The `--sockets N` variant: the closed-loop batch served on a NUMA
/// pool. Queries are homed on one socket each (greedy least-loaded by
/// footprint), so a query's morsels run only on its home socket's
/// workers and its LLC budget is a slice of that socket's partition —
/// the sweep shows throughput scaling surviving the split. The second
/// table reruns the batch on *shared*-LLC sockets with and without
/// dynamic repartitioning: with it on, a query completing hands its LLC
/// ways back to the co-runners still live on that socket.
fn run_numa(ctx: &FigureCtx) {
    let sockets = ctx.sockets;
    banner(
        ctx,
        "serve",
        "Multi-query serving across sockets: footprint placement and dynamic repartition",
    );
    let mix = Mix::new(
        ctx.scale(1 << 18, 1 << 16),
        ctx.scale(1 << 20, 1 << 18),
        ctx.scale(1 << 19, 1 << 17),
    );
    let refs = mix.solo_refs();

    header(&[
        "sweep",
        "workers",
        "sockets",
        "queries",
        "wall_ms",
        "throughput_qps",
        "occ_per_socket",
        "bit_identical",
    ]);
    let mut at_min = 0.0f64;
    let mut at_max = 0.0f64;
    let counts: Vec<usize> = WORKER_COUNTS
        .iter()
        .copied()
        .filter(|&w| w >= sockets)
        .collect();
    for &workers in &counts {
        let mut server = QueryServer::new(config());
        for spec in closed_loop_batch(&mix) {
            server.admit(spec);
        }
        let mut pool = CpuPool::with_topology(serve_cpu(), workers, LlcMode::Private, sockets);
        let report = server.run(&mut pool).expect("serve batch runs");
        let exact = mix.assert_exact(&report.queries, &refs);
        let qps = report.throughput_qps();
        if workers == counts[0] {
            at_min = qps;
        }
        if workers == *counts.last().expect("non-empty sweep") {
            at_max = qps;
        }
        let occ: Vec<String> = fleet_occupancy_per_socket(&report.per_worker_busy_cycles, sockets)
            .iter()
            .map(|&o| fmt(o))
            .collect();
        row(&[
            "closed-loop".to_string(),
            workers.to_string(),
            sockets.to_string(),
            report.queries.len().to_string(),
            fmt(report.wall_millis),
            fmt(qps),
            occ.join("|"),
            exact.to_string(),
        ]);
    }
    note!(
        "# serve ({sockets} sockets): throughput {} -> {} qps across the worker sweep",
        fmt(at_min),
        fmt(at_max),
    );
    assert!(
        at_max > at_min,
        "adding workers across sockets must still raise throughput \
         ({at_min:.2} -> {at_max:.2} qps)"
    );

    // Dynamic repartitioning on shared-LLC sockets. Per-query way
    // slicing models cross-query contention *within* a core's slice the
    // same way the pool models cross-core contention: by deterministic
    // footprint-proportional capacity shares. While a co-runner lives,
    // the foreground query runs on a fraction of the core's ways — the
    // pessimistic price of declared contention — and at the co-runner's
    // completion event (a point in the worker's own claim stream, so
    // per-core cycles stay host-schedule independent) the partition is
    // recomputed and the survivor reclaims the ways. The experiment
    // pins exactly that reclaim: the same probe-heavy foreground
    // pipeline served against a *short* co-runner and against a *long*
    // one, repartitioning on. The short co-runner drains early, hands
    // its ways back, and most of the foreground stream runs at full
    // capacity. Static orders, no reopt: the pair isolates the
    // partition events.
    let rows = ctx.scale(1 << 17, 1 << 15);
    let (fg_fact, fg_dim) = mem_tables_with_dim(rows, 10 * 1024, 0xF00D);
    let (bg_long_fact, bg_long_dim) = mem_tables_with_dim(rows, 24 * 1024, 0xBEEF);
    let (bg_short_fact, bg_short_dim) = mem_tables_with_dim(rows / 8, 24 * 1024, 0xBEEF);
    fn pipe<'t>(fact: &'t Table, dim: &'t Table) -> CompiledProgram<'t> {
        PlanBuilder::scan(fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers")
    }
    let solo = |fact: &Table, dim: &Table, n: usize| {
        let mut cpu = SimCpu::new(serve_cpu());
        let stats = pipe(fact, dim).run_range(&mut cpu, 0, n);
        (stats.qualified, stats.sum)
    };
    let fg_ref = solo(&fg_fact, &fg_dim, rows);
    let bg_refs = [
        solo(&bg_long_fact, &bg_long_dim, rows),
        solo(&bg_short_fact, &bg_short_dim, rows / 8),
    ];

    header(&[
        "experiment",
        "co_runner",
        "dynamic_repartition",
        "fg_exec_mcycles",
        "bit_identical",
    ]);
    // fg's exec cycles under: [long co-runner, short co-runner], each
    // with repartitioning off then on.
    let mut fg_exec = [[0u64; 2]; 2];
    for (c, (bg_label, bg_fact, bg_dim)) in [
        ("long", &bg_long_fact, &bg_long_dim),
        ("short", &bg_short_fact, &bg_short_dim),
    ]
    .into_iter()
    .enumerate()
    {
        for (i, dynamic) in [false, true].into_iter().enumerate() {
            let mut server = QueryServer::new(ServeConfig {
                dynamic_repartition: dynamic,
                reopt: None,
                ..config()
            });
            // One (bg, fg) pair per socket: equal footprints within each
            // class and class-by-class admission home bg-k and fg-k on
            // socket k.
            for s in 0..sockets {
                server.admit(QuerySpec::compiled(
                    format!("bg-{s}"),
                    pipe(bg_fact, bg_dim),
                    Priority::Normal,
                    0,
                ));
            }
            for s in 0..sockets {
                server.admit(QuerySpec::compiled(
                    format!("fg-{s}"),
                    pipe(&fg_fact, &fg_dim),
                    Priority::Normal,
                    0,
                ));
            }
            let mut pool =
                CpuPool::with_topology(serve_cpu(), 2 * sockets, LlcMode::Shared, sockets);
            let report = server.run(&mut pool).expect("serve batch runs");
            let mut exact = true;
            for q in &report.queries {
                let (qualified, sum) = if q.label.starts_with("fg") {
                    fg_ref
                } else {
                    bg_refs[c]
                };
                exact &= q.qualified == qualified && q.sum == sum;
            }
            fg_exec[c][i] = report
                .queries
                .iter()
                .filter(|q| q.label.starts_with("fg"))
                .map(|q| q.exec_cycles)
                .sum::<u64>();
            row(&[
                "repartition".to_string(),
                bg_label.to_string(),
                dynamic.to_string(),
                fmt(fg_exec[c][i] as f64 / 1e6),
                exact.to_string(),
            ]);
            assert!(
                exact,
                "per-query way partitioning moves cycles, never results"
            );
        }
    }
    let reclaim = (fg_exec[0][1] as f64 / fg_exec[1][1] as f64 - 1.0) * 100.0;
    note!(
        "# repartition: with per-query way slicing on, a short co-runner's \
         completion hands its ways back early — the foreground pipeline runs {}% \
         cheaper than against a long co-runner that holds its slice to the end",
        fmt(reclaim),
    );
    assert!(
        fg_exec[1][1] < fg_exec[0][1],
        "the completion-event reclaim must show: fg exec vs short co-runner {} \
         >= vs long co-runner {}",
        fg_exec[1][1],
        fg_exec[0][1]
    );
    for c in [0, 1] {
        assert!(
            fg_exec[c][1] >= fg_exec[c][0],
            "declared contention is pessimistic by design: slicing a core's ways \
             per query must not make the foreground cheaper than unpartitioned \
             sharing ({} < {})",
            fg_exec[c][1],
            fg_exec[c][0]
        );
    }

    note!(
        "# expectation: footprint placement keeps every query on one socket (its \
         budget a slice of that socket's partition), throughput keeps scaling as \
         workers spread over sockets, and per-query way slicing — recomputed \
         at deterministic completion events — prices declared contention while \
         co-runners live and hands a finished query's ways back to the \
         survivors — results bit-identical to solo execution throughout"
    );
    trace_export(ctx, &mix, &refs, false);
}

/// The `--shared-llc` variant: the serving experiments on one socket,
/// where capacity contention erodes the scheduler's isolation bound and
/// removes the private model's negative warm overheads.
fn run_shared(ctx: &FigureCtx) {
    banner(
        ctx,
        "serve",
        "Multi-query serving on a shared-LLC socket: contention vs isolation",
    );
    let mix = Mix::new(
        ctx.scale(1 << 18, 1 << 16),
        ctx.scale(1 << 20, 1 << 18),
        ctx.scale(1 << 19, 1 << 17),
    );
    let refs = mix.solo_refs();

    let (at_1w, at_4w) = throughput_sweep(&mix, &refs, true);
    note!(
        "# serve (shared socket): 4-worker throughput {} qps vs 1-worker {} qps \
         ({:.2}x; contention makes this sub-linear where the private model scaled \
         near-linearly)",
        fmt(at_4w),
        fmt(at_1w),
        at_4w / at_1w
    );
    assert!(
        at_4w >= 1.5 * at_1w,
        "even a contended socket must scale somewhat: {at_4w:.2} < 1.5x {at_1w:.2}"
    );

    let inflation = isolation(ctx);
    note!(
        "# isolation: probe-heavy low-priority co-runner inflates high-priority \
         latency {}% on the shared socket vs {}% private — the stride bound \
         (6.03%) only survives while the LLC is not a shared resource",
        fmt(inflation[1]),
        fmt(inflation[0]),
    );
    assert!(
        inflation[1] > 6.03,
        "shared-socket inflation {:.2}% must exceed the private-mode stride \
         bound of 6.03%",
        inflation[1]
    );
    assert!(
        inflation[1] > inflation[0],
        "contention must cost beyond scheduling: shared {:.2}% <= private {:.2}%",
        inflation[1],
        inflation[0]
    );

    warm_vs_cold(&mix, &refs, true);
    note!(
        "# expectation: one socket's capacity is a shared resource — throughput \
         scales sub-linearly for LLC-hungry templates, a probe-heavy co-runner \
         breaks the scheduler's isolation bound by evicting the foreground \
         query's hot set, warm overheads stay non-negative, and every query's \
         result remains bit-identical to solo execution"
    );
    trace_export(ctx, &mix, &refs, true);
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    if ctx.sockets > 1 {
        run_numa(ctx);
        return;
    }
    if ctx.shared_llc {
        run_shared(ctx);
        return;
    }
    banner(
        ctx,
        "serve",
        "Multi-query serving: admission, priority scheduling, cross-query order reuse",
    );
    let mix = Mix::new(
        ctx.scale(1 << 18, 1 << 16),
        ctx.scale(1 << 20, 1 << 18),
        ctx.scale(1 << 19, 1 << 17),
    );
    let refs = mix.solo_refs();

    let (at_1w, at_4w) = throughput_sweep(&mix, &refs, false);
    assert!(
        at_4w >= 2.0 * at_1w,
        "4-worker throughput {at_4w:.2} qps < 2x 1-worker {at_1w:.2} qps"
    );
    note!(
        "# serve: 4-worker throughput {} qps vs 1-worker {} qps (>= 2x 1-worker: {})",
        fmt(at_4w),
        fmt(at_1w),
        at_4w >= 2.0 * at_1w
    );

    open_loop_latency(&mix, &refs, ctx.scale(30, 12));
    warm_vs_cold(&mix, &refs, false);

    note!(
        "# expectation: throughput scales with workers (stride scheduling keeps \
         every class served, morsel claims stay barrier-free), per-priority \
         latency separates by weight under load, warm templates start at the \
         converged order/calibration and skip the convergence overhead cold \
         starts pay — with every query's result bit-identical to solo execution"
    );
    trace_export(ctx, &mix, &refs, false);
}
