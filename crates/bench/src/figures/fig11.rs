//! Figure 11: the TPC-H common case — all 120 predicate evaluation orders
//! of Q6, baseline vs. progressively optimized runtime (Section 5.2).
//!
//! Baseline executes one fixed PEO over the whole table; the progressive
//! run starts from the same PEO and reoptimizes every 10 vectors.
//! Progressive runtimes should be largely flat across permutations while
//! baselines span the best/worst range.

use popt_core::plan::Peo;
use popt_core::progressive::{run_baseline, run_progressive, ProgressiveConfig, VectorConfig};
use popt_core::query::QueryBuilder;
use popt_cpu::{CpuConfig, SimCpu};
use popt_storage::tpch::{generate_lineitem, TpchConfig};

use crate::common::{banner, fmt, header, parallel_map, row, subsample, FigureCtx};
use crate::note;

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "11",
        "TPC-H common case: 120 Q6 PEOs, baseline vs. progressive",
    );
    let rows = ctx.scale(1 << 20, 1 << 17);
    let vector_tuples = ctx.scale(8_192, 4_096);
    let table = generate_lineitem(&TpchConfig::with_rows(rows));
    let plan = QueryBuilder::q6_plan();
    let mut peos = plan.all_peos();
    if ctx.quick {
        peos = subsample(&peos, 24);
    }
    let vectors = VectorConfig {
        vector_tuples,
        max_vectors: None,
    };
    let config = ProgressiveConfig {
        reop_interval: 10,
        ..Default::default()
    };

    let results: Vec<(Peo, f64, f64)> = parallel_map(&peos, |peo| {
        let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
        let base = run_baseline(&table, &plan, peo, vectors, &mut cpu).expect("baseline runs");
        let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
        let prog = run_progressive(&table, &plan, peo, vectors, &mut cpu, &config)
            .expect("progressive runs");
        assert_eq!(
            base.qualified, prog.qualified,
            "result must be PEO-invariant"
        );
        (peo.clone(), base.millis, prog.millis)
    });

    let mut sorted = results;
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    header(&["permutation_rank", "baseline_ms", "optimized_ms", "peo"]);
    for (rank, (peo, base, prog)) in sorted.iter().enumerate() {
        row(&[rank.to_string(), fmt(*base), fmt(*prog), format!("{peo:?}")]);
    }
    let worst_base = sorted.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let best_base = sorted.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let avg_base: f64 = sorted.iter().map(|r| r.1).sum::<f64>() / sorted.len() as f64;
    let worst_prog = sorted.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let avg_prog: f64 = sorted.iter().map(|r| r.2).sum::<f64>() / sorted.len() as f64;
    note!(
        "# baseline best/avg/worst: {}/{}/{} ms; progressive avg/worst: {}/{} ms",
        fmt(best_base),
        fmt(avg_base),
        fmt(worst_base),
        fmt(avg_prog),
        fmt(worst_prog)
    );
    note!(
        "# improvement: avg {}x, worst-case {}x",
        fmt(avg_base / avg_prog),
        fmt(worst_base / worst_prog)
    );
}
