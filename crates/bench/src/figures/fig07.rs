//! Figure 7: search-space restriction for the worked example of
//! Section 4.1.
//!
//! A four-predicate query selecting 10 of 100 tuples with true accesses
//! `[80, 70, 50, 10]` (sampled BNT = 210). Prints the cumulated accesses
//! of the search query and of the four bounds — the five lines of the
//! figure.

use popt_solver::bounds::{bnt_bounds, tuple_bounds};

use crate::common::{banner, header, row, FigureCtx};
use crate::note;

/// The example's true per-column accesses.
pub const EXAMPLE_ACCESSES: [u64; 4] = [80, 70, 50, 10];
/// Input tuples of the example.
pub const EXAMPLE_IN: u64 = 100;
/// Output tuples of the example.
pub const EXAMPLE_OUT: u64 = 10;

fn cumulate(values: &[u64]) -> Vec<u64> {
    values
        .iter()
        .scan(0u64, |acc, &v| {
            *acc += v;
            Some(*acc)
        })
        .collect()
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "7", "Search space restriction (Section 4.1 example)");
    let bnt: u64 = EXAMPLE_ACCESSES.iter().sum();
    let tuple = tuple_bounds(4, EXAMPLE_IN, EXAMPLE_OUT);
    let restricted = bnt_bounds(4, EXAMPLE_IN, EXAMPLE_OUT, bnt);
    let (t_lo, t_hi) = tuple.rounded();
    let (b_lo, b_hi) = restricted.rounded();

    let search = cumulate(&EXAMPLE_ACCESSES);
    let upper_tuple = cumulate(&t_hi);
    let lower_tuple = cumulate(&t_lo);
    let upper_bnt = cumulate(&b_hi);
    let lower_bnt = cumulate(&b_lo);

    header(&[
        "columns",
        "search_query",
        "upper_tuple_bound",
        "lower_tuple_bound",
        "upper_bnt_bound",
        "lower_bnt_bound",
    ]);
    for i in 0..4 {
        row(&[
            format!("col1..{}", i + 1),
            search[i].to_string(),
            upper_tuple[i].to_string(),
            lower_tuple[i].to_string(),
            upper_bnt[i].to_string(),
            lower_bnt[i].to_string(),
        ]);
    }
    note!(
        "# per-column BNT bounds: lower {:?}, upper {:?} (paper: [67,50,10,10] / [100,95,66,10])",
        b_lo,
        b_hi
    );
}
