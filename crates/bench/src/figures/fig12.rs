//! Figure 12: Q6 with varying shipdate selectivity (Section 5.3).
//!
//! For each shipdate-window selectivity (log scale 10⁻⁴…10² %): the
//! min/max/avg baseline runtime over all 120 PEOs, and the average
//! progressive runtime over the same 120 initial PEOs for reoptimization
//! intervals 10, 75 and 200 vectors.

use popt_core::plan::SelectionPlan;
use popt_core::predicate::{CompareOp, Predicate};
use popt_core::progressive::{run_baseline, run_progressive, ProgressiveConfig, VectorConfig};
use popt_core::query::{Q6_DISCOUNT_HI, Q6_DISCOUNT_LO, Q6_QUANTITY};
use popt_cpu::{CpuConfig, SimCpu};
use popt_storage::stats;
use popt_storage::tpch::{generate_lineitem, TpchConfig};

use crate::common::{banner, fmt, header, parallel_map, row, subsample, FigureCtx};
use crate::note;

/// Shipdate selectivities in percent (log scale).
pub const SELECTIVITIES_PCT: &[f64] = &[0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

/// The reoptimization intervals of the figure.
pub const REOP_INTERVALS: &[usize] = &[10, 75, 200];

/// Q6 with the shipdate window centred in the domain and sized for the
/// requested combined selectivity.
pub fn q6_with_shipdate_selectivity(table: &popt_storage::Table, pct: f64) -> SelectionPlan {
    let shipdate = table.column("l_shipdate").expect("lineitem table");
    let half = (pct / 100.0 / 2.0).min(0.5);
    let lo = stats::quantile(shipdate.data(), (0.5 - half).max(0.0));
    let hi = stats::quantile(shipdate.data(), (0.5 + half).min(1.0));
    SelectionPlan::new(
        vec![
            Predicate::new("l_shipdate", CompareOp::Ge, lo),
            Predicate::new("l_shipdate", CompareOp::Le, hi),
            Predicate::new("l_discount", CompareOp::Ge, Q6_DISCOUNT_LO),
            Predicate::new("l_discount", CompareOp::Le, Q6_DISCOUNT_HI),
            Predicate::new("l_quantity", CompareOp::Lt, Q6_QUANTITY),
        ],
        vec!["l_extendedprice".into(), "l_discount".into()],
    )
    .expect("plan is non-empty")
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "12", "Q6 with varying shipdate selectivity");
    let rows = ctx.scale(1 << 20, 1 << 17);
    let vector_tuples = ctx.scale(4_096, 2_048);
    // Baselines are cheap enough to run for every PEO (their min/max are
    // the figure's envelope); progressive runs average over an even
    // subsample of initial PEOs.
    let base_sample = ctx.scale(120, 12);
    let prog_sample = ctx.scale(24, 6);
    let table = generate_lineitem(&TpchConfig::with_rows(rows));
    let vectors = VectorConfig {
        vector_tuples,
        max_vectors: None,
    };

    header(&[
        "shipdate_sel_pct",
        "min_base_ms",
        "max_base_ms",
        "avg_base_ms",
        "avg_reop10_ms",
        "avg_reop75_ms",
        "avg_reop200_ms",
    ]);
    for &pct in SELECTIVITIES_PCT {
        let plan = q6_with_shipdate_selectivity(&table, pct);
        let all_peos = plan.all_peos();
        let base_peos = subsample(&all_peos, base_sample);
        let prog_peos = subsample(&all_peos, prog_sample);

        let base: Vec<f64> = parallel_map(&base_peos, |peo| {
            let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
            run_baseline(&table, &plan, peo, vectors, &mut cpu)
                .expect("baseline runs")
                .millis
        });
        let min = base.iter().copied().fold(f64::INFINITY, f64::min);
        let max = base.iter().copied().fold(0.0f64, f64::max);
        let avg = base.iter().sum::<f64>() / base.len() as f64;

        let mut avgs = Vec::new();
        for &reop in REOP_INTERVALS {
            let config = ProgressiveConfig {
                reop_interval: reop,
                ..Default::default()
            };
            let runs: Vec<f64> = parallel_map(&prog_peos, |peo| {
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                run_progressive(&table, &plan, peo, vectors, &mut cpu, &config)
                    .expect("progressive runs")
                    .millis
            });
            avgs.push(runs.iter().sum::<f64>() / runs.len() as f64);
        }
        row(&[
            fmt(pct),
            fmt(min),
            fmt(max),
            fmt(avg),
            fmt(avgs[0]),
            fmt(avgs[1]),
            fmt(avgs[2]),
        ]);
    }
    note!("# expectation: avg_reop10 tracks min_base in the 0.1–10% band");
}
