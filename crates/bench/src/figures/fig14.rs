//! Figure 14: exploiting sortedness — expensive selection vs. foreign-key
//! join, ordered both ways, across degrees of sortedness (Section 5.5).
//!
//! The x-axis sweeps the Knuth-shuffle window of the fact table's FK
//! column from one tuple ("1T") through cache-line/L1/L2/L3-sized windows
//! to a full shuffle ("Mem"). With high sortedness the join probes are
//! cache-local and the join should run *before* the expensive selection;
//! past the break-even point the order flips. Panel (b) shows the L3
//! misses that reveal the crossover — the signal Section 5.5 derives from
//! performance counters.
//!
//! Runs on a proportionally scaled-down cache hierarchy (8 KiB / 64 KiB /
//! 1 MiB) so the dimension table thrashes the LLC at laptop-scale row
//! counts; window labels L1/L2/L3 refer to those scaled capacities (see
//! EXPERIMENTS.md).

use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::{run_progressive_program, ProgressiveConfig, VectorConfig};
use popt_cpu::{CacheLevelConfig, CpuConfig, SimCpu};
use popt_storage::distribution::knuth_shuffle_window;
use popt_storage::{AddressSpace, ColumnData, Table};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::DOMAIN;
use crate::note;

/// The scaled-down hierarchy: 8 KiB L1 / 64 KiB L2 / 1 MiB L3.
pub fn scaled_cpu() -> CpuConfig {
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.name = "scaled-down Xeon (1 MiB LLC)";
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}

/// Shuffle windows of the sweep, labelled as in the paper.
pub fn windows(rows: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("1T", 1),
        ("CL", 16), // 64 B / 4 B values
        ("100T", 100),
        ("1KT", 1_000),
        ("L1", 2_048),   // 8 KiB / 4 B
        ("L2", 16_384),  // 64 KiB / 4 B
        ("L3", 262_144), // 1 MiB / 4 B
        ("Mem", rows),   // unbounded
    ]
}

fn fact_and_dim(rows: usize, window: usize, seed: u64) -> (Table, Table) {
    let dim_n = rows / 4;
    // Sorted FK (4 lineitems per order), then window-shuffled: the row
    // shuffle of Section 5.5 expressed on the one column whose access
    // pattern it changes.
    let mut fk: Vec<i32> = (0..rows).map(|i| (i / 4) as i32).collect();
    if window > 1 {
        knuth_shuffle_window(&mut fk, window, seed);
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as i64
    };
    let val: Vec<i32> = (0..rows).map(|_| (next() % DOMAIN) as i32).collect();
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    fact.add_column("fk", ColumnData::I32(fk), &mut space);
    fact.add_column("val", ColumnData::I32(val), &mut space);

    let payload: Vec<i32> = (0..dim_n).map(|_| (next() % DOMAIN) as i32).collect();
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column("payload", ColumnData::I32(payload), &mut dim_space);
    (fact, dim)
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "14", "Sortedness: selection-first vs. join-first");
    let rows = ctx.scale(1 << 21, 1 << 17);
    let windows = windows(rows);

    header(&[
        "sortedness",
        "sel_first_ms",
        "join_first_ms",
        "progressive_ms",
        "sel_first_l3_misses",
        "join_first_l3_misses",
        "winner",
        "prog_final",
    ]);
    let results = parallel_map(&windows, |&(label, window)| {
        let (fact, dim) = fact_and_dim(rows, window, 0xF1614);
        let build = || {
            // Expensive selection (~50 instructions of UDF work) with 50%
            // selectivity; join filter with 50% selectivity on the
            // dimension payload. Goes through the query frontend: builder
            // → optimizer passes → compiled program.
            PlanBuilder::scan(&fact)
                .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
                .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
                .build()
                .optimize()
                .compile()
                .expect("plan lowers to a two-stage program")
        };
        let run_order = |order: [usize; 2]| {
            let mut program = build();
            program.reorder(&order).expect("valid order");
            let mut cpu = SimCpu::new(scaled_cpu());
            let stats = program.run_range(&mut cpu, 0, fact.rows());
            (cpu.millis(), stats.counters.l3_misses, stats.qualified)
        };
        let (sel_ms, sel_miss, q1) = run_order([0, 1]);
        let (join_ms, join_miss, q2) = run_order([1, 0]);
        assert_eq!(q1, q2, "order must not change the result");

        // Progressive execution starting from the *wrong* static order:
        // it must discover the crossover side on its own from the
        // counters (Section 5.5).
        let worse: [usize; 2] = if sel_ms <= join_ms { [1, 0] } else { [0, 1] };
        let mut program = build();
        let mut cpu = SimCpu::new(scaled_cpu());
        let prog = run_progressive_program(
            &mut program,
            &worse,
            VectorConfig {
                vector_tuples: 4096,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .expect("progressive pipeline runs");
        assert_eq!(prog.qualified, q1, "progressive must not change the result");
        let prog_final = if prog.final_peo == vec![0, 1] {
            "sel-first"
        } else {
            "join-first"
        };
        (
            label,
            sel_ms,
            join_ms,
            prog.millis,
            sel_miss,
            join_miss,
            prog_final,
        )
    });
    for (label, sel_ms, join_ms, prog_ms, sel_miss, join_miss, prog_final) in results {
        let winner = if join_ms < sel_ms {
            "join-first"
        } else {
            "selection-first"
        };
        row(&[
            label.to_string(),
            fmt(sel_ms),
            fmt(join_ms),
            fmt(prog_ms),
            sel_miss.to_string(),
            join_miss.to_string(),
            winner.to_string(),
            prog_final.to_string(),
        ]);
    }
    note!(
        "# expectation: join-first wins while the shuffle window fits the caches, \
              selection-first wins at Mem; the L3-miss columns expose the crossover. \
              progressive starts from the worse static order on every row and should \
              track the winner's time closely on both sides of the crossover"
    );
}
