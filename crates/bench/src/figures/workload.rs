//! Synthetic workloads shared by the counter/model figures: uniform
//! random columns with selectivity-addressable predicates.

use popt_core::plan::SelectionPlan;
use popt_core::predicate::{CompareOp, Predicate};
use popt_storage::{AddressSpace, ColumnData, Table};

/// Value domain of the uniform columns (selectivity granularity 1/10000).
pub const DOMAIN: i64 = 10_000;

/// A table with `columns` independent uniform columns `c0..` over
/// `0..DOMAIN` plus an aggregate column `agg`.
pub fn uniform_table(rows: usize, columns: usize, seed: u64) -> Table {
    let mut space = AddressSpace::new();
    let mut t = Table::new("uniform");
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — fast, deterministic, good enough for workloads.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as i64
    };
    for c in 0..columns {
        let data: Vec<i32> = (0..rows).map(|_| (next() % DOMAIN) as i32).collect();
        t.add_column(format!("c{c}"), ColumnData::I32(data), &mut space);
    }
    let agg: Vec<i32> = (0..rows).map(|_| (next() % 100) as i32).collect();
    t.add_column("agg", ColumnData::I32(agg), &mut space);
    t
}

/// Literal giving a `< literal` predicate the requested selectivity on a
/// uniform `0..DOMAIN` column.
pub fn literal_for(selectivity: f64) -> i64 {
    (selectivity.clamp(0.0, 1.0) * DOMAIN as f64).round() as i64
}

/// Plan with one `< literal` predicate per selectivity, on `c0, c1, …`,
/// aggregating over `agg`.
pub fn uniform_plan(selectivities: &[f64]) -> SelectionPlan {
    let preds = selectivities
        .iter()
        .enumerate()
        .map(|(i, &s)| Predicate::new(format!("c{i}"), CompareOp::Lt, literal_for(s)))
        .collect();
    SelectionPlan::new(preds, vec!["agg".into()]).expect("non-empty plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_storage::stats;

    #[test]
    fn uniform_columns_hit_requested_selectivity() {
        let t = uniform_table(50_000, 2, 42);
        for c in ["c0", "c1"] {
            let col = t.column(c).unwrap();
            let sel = stats::selectivity(col.data(), |v| v < literal_for(0.3));
            assert!((sel - 0.3).abs() < 0.02, "{c}: {sel}");
        }
    }

    #[test]
    fn plan_matches_requested_arity() {
        let p = uniform_plan(&[0.5, 0.1, 0.9]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.predicates[1].literal, literal_for(0.1));
    }

    #[test]
    fn columns_are_independent() {
        let t = uniform_table(50_000, 2, 7);
        let a = t.column("c0").unwrap().data().as_i32().unwrap();
        let b = t.column("c1").unwrap().data().as_i32().unwrap();
        let both = a
            .iter()
            .zip(b)
            .filter(|(&x, &y)| x < 5000 && y < 5000)
            .count() as f64
            / 50_000.0;
        assert!((both - 0.25).abs() < 0.02, "joint = {both}");
    }
}
