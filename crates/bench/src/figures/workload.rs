//! Synthetic workloads shared by the counter/model figures: uniform
//! random columns with selectivity-addressable predicates, plus the
//! star-schema workload the multi-join and parallel-scaling figures
//! exercise.

use popt_core::exec::program::CompiledProgram;
use popt_core::plan::{Expr, PlanBuilder, SelectionPlan};
use popt_core::predicate::{CompareOp, Predicate};
use popt_storage::{AddressSpace, ColumnData, Table};

/// Value domain of the uniform columns (selectivity granularity 1/10000).
pub const DOMAIN: i64 = 10_000;

/// One step of xorshift64* — the deterministic PRNG every synthetic
/// workload draws from. Seed states should be made odd (`seed | 1`) so
/// the zero state can never occur.
pub fn xorshift64(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33
}

/// A table with `columns` independent uniform columns `c0..` over
/// `0..DOMAIN` plus an aggregate column `agg`.
pub fn uniform_table(rows: usize, columns: usize, seed: u64) -> Table {
    let mut space = AddressSpace::new();
    let mut t = Table::new("uniform");
    let mut state = seed | 1;
    for c in 0..columns {
        let data: Vec<i32> = (0..rows)
            .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
            .collect();
        t.add_column(format!("c{c}"), ColumnData::I32(data), &mut space);
    }
    let agg: Vec<i32> = (0..rows)
        .map(|_| (xorshift64(&mut state) % 100) as i32)
        .collect();
    t.add_column("agg", ColumnData::I32(agg), &mut space);
    t
}

/// The Figure-14 "Mem" workload shared by the parallel figures and
/// tests: a fact table whose `fk` addresses a `rows/4`-tuple dimension
/// uniformly at random (the fully shuffled end of the fig14 sortedness
/// sweep) plus a `val` column, and the dimension's `payload` — both
/// uniform over `0..DOMAIN`, so `< literal_for(s)` selects with
/// selectivity `s` on either side.
pub fn fig14_mem_tables(rows: usize, seed: u64) -> (Table, Table) {
    mem_tables_with_dim(rows, rows / 4, seed)
}

/// [`fig14_mem_tables`] with an explicit dimension row count — the
/// shared-LLC figures size the probed dimension against the socket
/// capacity (fits the full LLC, thrashes a contended share) instead of
/// deriving it from the fact table.
pub fn mem_tables_with_dim(rows: usize, dim_n: usize, seed: u64) -> (Table, Table) {
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    fact.add_column(
        "fk",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    fact.add_column(
        "val",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim_space = AddressSpace::new();
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
                .collect(),
        ),
        &mut dim_space,
    );
    (fact, dim)
}

/// NUMA affinity workload: fact (`fk`, `val`) plus a dimension
/// (`payload`) allocated in **one** address space, so the two tables
/// occupy disjoint simulated addresses and a [`popt_cpu::NumaPlacement`]
/// can home their ranges independently. (Separate `AddressSpace`s all
/// start at the same base address — registrations would collide.)
///
/// `bands` are the per-socket fact row ranges the affinity dispatcher
/// will pin (`MorselDispatcher::socket_row_range`); a row in band `b`
/// draws its FK uniformly from the proportional slice of the dimension,
/// the partitioned layout a NUMA-aware build produces. Probes stay fully
/// random *within* the band (memory-served when the band outgrows the
/// LLC), so a placement that homes each band on its socket makes every
/// probe local while the default line-interleave leaves roughly half of
/// them remote.
pub fn numa_banded_tables(
    rows: usize,
    dim_n: usize,
    bands: &[(usize, usize)],
    seed: u64,
) -> (Table, Table) {
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let dim_band = |r: usize| r * dim_n / rows;
    let mut fk = Vec::with_capacity(rows);
    for &(r0, r1) in bands {
        let (d0, d1) = (dim_band(r0), dim_band(r1));
        let width = (d1 - d0).max(1) as u64;
        for _ in r0..r1 {
            fk.push((d0 as u64 + xorshift64(&mut state) % width) as i32);
        }
    }
    assert_eq!(fk.len(), rows, "bands must cover every fact row");
    let mut fact = Table::new("fact");
    fact.add_column("fk", ColumnData::I32(fk), &mut space);
    fact.add_column(
        "val",
        ColumnData::I32(
            (0..rows)
                .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    let mut dim = Table::new("dim");
    dim.add_column(
        "payload",
        ColumnData::I32(
            (0..dim_n)
                .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    (fact, dim)
}

/// NUMA divergence workload: a fact with two fully random FKs into two
/// equal-size dimensions (`dim_a.payload_a`, `dim_b.payload_b`), all
/// three tables in **one** address space (see [`numa_banded_tables`] for
/// why). Homing `dim_a` on socket 0 and `dim_b` on socket 1 makes the
/// two join stages cost-symmetric *mirror images* across the sockets —
/// the setup in which each socket's progressive loop should converge to
/// probing its local dimension first.
pub fn numa_two_dim_tables(rows: usize, dim_n: usize, seed: u64) -> (Table, Table, Table) {
    let mut state = seed | 1;
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    for fk in ["fk_a", "fk_b"] {
        fact.add_column(
            fk,
            ColumnData::I32(
                (0..rows)
                    .map(|_| (xorshift64(&mut state) % dim_n as u64) as i32)
                    .collect(),
            ),
            &mut space,
        );
    }
    let mut dim = |name: &str, col: &str| {
        let mut t = Table::new(name);
        t.add_column(
            col,
            ColumnData::I32(
                (0..dim_n)
                    .map(|_| (xorshift64(&mut state) % DOMAIN as u64) as i32)
                    .collect(),
            ),
            &mut space,
        );
        t
    };
    let dim_a = dim("dim_a", "payload_a");
    let dim_b = dim("dim_b", "payload_b");
    (fact, dim_a, dim_b)
}

/// Literal giving a `< literal` predicate the requested selectivity on a
/// uniform `0..DOMAIN` column.
pub fn literal_for(selectivity: f64) -> i64 {
    (selectivity.clamp(0.0, 1.0) * DOMAIN as f64).round() as i64
}

/// Plan with one `< literal` predicate per selectivity, on `c0, c1, …`,
/// aggregating over `agg`.
pub fn uniform_plan(selectivities: &[f64]) -> SelectionPlan {
    let preds = selectivities
        .iter()
        .enumerate()
        .map(|(i, &s)| Predicate::new(format!("c{i}"), CompareOp::Lt, literal_for(s)))
        .collect();
    SelectionPlan::new(preds, vec!["agg".into()]).expect("non-empty plan")
}

/// A star-schema workload: one fact table with three foreign keys into
/// dimension tables of descending size and different access locality.
///
/// * `customer` — the largest dimension, addressed by a **co-clustered**
///   FK (fact tuples arrive in customer order, the lineitem→orders
///   pattern): probes are near-sequential however big the table is.
/// * `supplier` — mid-sized, addressed by a **random** FK: probes thrash
///   any LLC the table outgrows.
/// * `part` — the smallest dimension, also randomly addressed: cheap
///   once it fits a private cache level.
///
/// Every dimension payload is uniform over `0..DOMAIN`, so FK-filter
/// selectivities are addressable via [`literal_for`] exactly like the
/// uniform scan columns.
pub struct StarSchema {
    /// The fact table (`fk_customer`, `fk_supplier`, `fk_part`, `val`,
    /// `agg`).
    pub fact: Table,
    /// Largest dimension, co-clustered FK (`c_payload`).
    pub customer: Table,
    /// Mid dimension, random FK (`s_payload`).
    pub supplier: Table,
    /// Smallest dimension, random FK (`p_payload`).
    pub part: Table,
}

impl StarSchema {
    /// Dimension row counts for a fact table of `rows`.
    pub fn dim_rows(rows: usize) -> [usize; 3] {
        [(rows / 4).max(16), (rows / 8).max(16), (rows / 16).max(16)]
    }
}

/// Generate the star schema for `rows` fact tuples.
pub fn star_schema(rows: usize, seed: u64) -> StarSchema {
    let [customer_n, supplier_n, part_n] = StarSchema::dim_rows(rows);
    let mut state = seed | 1;
    let mut next = move || xorshift64(&mut state);
    let mut space = AddressSpace::new();
    let mut fact = Table::new("fact");
    fact.add_column(
        "fk_customer",
        ColumnData::I32((0..rows).map(|i| (i * customer_n / rows) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "fk_supplier",
        ColumnData::I32(
            (0..rows)
                .map(|_| (next() % supplier_n as u64) as i32)
                .collect(),
        ),
        &mut space,
    );
    fact.add_column(
        "fk_part",
        ColumnData::I32((0..rows).map(|_| (next() % part_n as u64) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "val",
        ColumnData::I32((0..rows).map(|_| (next() % DOMAIN as u64) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "agg",
        ColumnData::I32((0..rows).map(|_| (next() % 100) as i32).collect()),
        &mut space,
    );
    let mut dim = |name: &str, col: &str, n: usize| {
        let mut dim_space = AddressSpace::new();
        let mut t = Table::new(name);
        t.add_column(
            col,
            ColumnData::I32((0..n).map(|_| (next() % DOMAIN as u64) as i32).collect()),
            &mut dim_space,
        );
        t
    };
    StarSchema {
        customer: dim("customer", "c_payload", customer_n),
        supplier: dim("supplier", "s_payload", supplier_n),
        part: dim("part", "p_payload", part_n),
        fact,
    }
}

/// Build the star-join program through the query frontend: an optional
/// selection on `val` plus the three FK join filters, each
/// `< literal_for(selectivity)` on its dimension payload, aggregating
/// over `agg` — [`PlanBuilder`] → optimizer passes → compiled program.
///
/// Plan-order stage indices: selection (if any) first, then customer,
/// supplier, part — so with a selection, plan index 1 is the
/// co-clustered join and 2/3 are the random ones.
pub fn star_program<'t>(
    star: &'t StarSchema,
    select_sel: Option<f64>,
    join_sels: [f64; 3],
) -> CompiledProgram<'t> {
    let mut builder = PlanBuilder::scan(&star.fact);
    if let Some(sel) = select_sel {
        builder = builder.filter_costed(Expr::col("val").less_than(literal_for(sel)), 50);
    }
    let joins: [(&Table, &str, &str); 3] = [
        (&star.customer, "fk_customer", "c_payload"),
        (&star.supplier, "fk_supplier", "s_payload"),
        (&star.part, "fk_part", "p_payload"),
    ];
    for (&(dim, fk, payload), sel) in joins.iter().zip(join_sels) {
        builder = builder.join(dim, fk, Expr::col(payload).less_than(literal_for(sel)));
    }
    builder
        .aggregate("agg")
        .build()
        .optimize()
        .compile()
        .expect("star plan lowers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_cpu::{CpuConfig, SimCpu};
    use popt_storage::stats;

    #[test]
    fn uniform_columns_hit_requested_selectivity() {
        let t = uniform_table(50_000, 2, 42);
        for c in ["c0", "c1"] {
            let col = t.column(c).unwrap();
            let sel = stats::selectivity(col.data(), |v| v < literal_for(0.3));
            assert!((sel - 0.3).abs() < 0.02, "{c}: {sel}");
        }
    }

    #[test]
    fn plan_matches_requested_arity() {
        let p = uniform_plan(&[0.5, 0.1, 0.9]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.predicates[1].literal, literal_for(0.1));
    }

    #[test]
    fn star_schema_joins_hit_requested_selectivities() {
        let rows = 1 << 15;
        let star = star_schema(rows, 0x57A2);
        // Every FK is in range by construction; the plan lowers.
        let program = star_program(&star, Some(0.5), [0.3, 0.5, 0.7]);
        assert_eq!(program.len(), 4);
        // Ground truth: host-side evaluation of the conjunction.
        let fk = |name: &str| star.fact.column(name).unwrap().data().as_i32().unwrap();
        fn payload<'t>(t: &'t Table, c: &str) -> &'t [i32] {
            t.column(c).unwrap().data().as_i32().unwrap()
        }
        let val = fk("val");
        let (c, s, p) = (
            payload(&star.customer, "c_payload"),
            payload(&star.supplier, "s_payload"),
            payload(&star.part, "p_payload"),
        );
        let (fkc, fks, fkp) = (fk("fk_customer"), fk("fk_supplier"), fk("fk_part"));
        let expect = (0..rows)
            .filter(|&i| {
                i64::from(val[i]) < literal_for(0.5)
                    && i64::from(c[fkc[i] as usize]) < literal_for(0.3)
                    && i64::from(s[fks[i] as usize]) < literal_for(0.5)
                    && i64::from(p[fkp[i] as usize]) < literal_for(0.7)
            })
            .count() as u64;
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let stats = program.run_range(&mut cpu, 0, rows);
        assert_eq!(stats.qualified, expect);
        // Roughly 0.5 * 0.3 * 0.5 * 0.7 = 5.25% qualify.
        let frac = expect as f64 / rows as f64;
        assert!((frac - 0.0525).abs() < 0.01, "joint = {frac}");
    }

    #[test]
    fn star_customer_fk_is_coclustered_and_others_random() {
        let rows = 1 << 14;
        let star = star_schema(rows, 7);
        let fkc = star
            .fact
            .column("fk_customer")
            .unwrap()
            .data()
            .as_i32()
            .unwrap();
        // Co-clustered: monotone non-decreasing.
        assert!(fkc.windows(2).all(|w| w[0] <= w[1]));
        // Random: displacement between adjacent keys is large on average.
        let fks = star
            .fact
            .column("fk_supplier")
            .unwrap()
            .data()
            .as_i32()
            .unwrap();
        let jumps = fks
            .windows(2)
            .filter(|w| (w[0] - w[1]).unsigned_abs() > 16)
            .count();
        assert!(jumps > rows / 2, "supplier FK looks clustered: {jumps}");
    }

    #[test]
    fn columns_are_independent() {
        let t = uniform_table(50_000, 2, 7);
        let a = t.column("c0").unwrap().data().as_i32().unwrap();
        let b = t.column("c1").unwrap().data().as_i32().unwrap();
        let both = a
            .iter()
            .zip(b)
            .filter(|(&x, &y)| x < 5000 && y < 5000)
            .count() as f64
            / 50_000.0;
        assert!((both - 0.25).abs() < 0.02, "joint = {both}");
    }

    #[test]
    fn banded_fks_stay_inside_their_band() {
        let rows = 8_192;
        let dim_n = rows;
        let bands = [(0usize, rows / 2), (rows / 2, rows)];
        let (fact, dim) = numa_banded_tables(rows, dim_n, &bands, 0xBA2D);
        assert_eq!(fact.rows(), rows);
        assert_eq!(dim.rows(), dim_n);
        let fks = fact.column("fk").unwrap().data().as_i32().unwrap();
        for &(r0, r1) in &bands {
            let (d0, d1) = (r0 * dim_n / rows, r1 * dim_n / rows);
            for &fk in &fks[r0..r1] {
                let fk = fk as usize;
                assert!(
                    (d0..d1).contains(&fk),
                    "row band [{r0},{r1}) drew fk {fk} outside dim band [{d0},{d1})"
                );
            }
        }
    }

    #[test]
    fn numa_tables_share_one_address_space() {
        // Separate `AddressSpace`s all allocate from the same base, so a
        // placement registered on one table's range would capture the
        // other's. The NUMA builders must hand out disjoint ranges.
        let (fact, dim_a, dim_b) = numa_two_dim_tables(4_096, 1_024, 0x5EED);
        let cols = [
            fact.column("fk_a").unwrap(),
            fact.column("fk_b").unwrap(),
            dim_a.column("payload_a").unwrap(),
            dim_b.column("payload_b").unwrap(),
        ];
        let mut ranges: Vec<(u64, u64)> = cols
            .iter()
            .map(|c| (c.base_addr(), c.addr_of(c.data().len() - 1) + 4))
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "column ranges overlap: {w:?}");
        }
    }
}
