//! Figure 8: model-predicted counter values for a two-predicate selection
//! over the selectivity grid (Section 4.2).
//!
//! Four heat maps — branches not taken (a), mispredicted not-taken (b),
//! mispredicted taken (c), and L3 accesses (d) — computed purely from the
//! Section 3 cost models for 10 M tuples. Two queries are distinguishable
//! whenever they differ in at least one of these surfaces.

use popt_cost::estimate::{estimate_counters, PlanGeometry};

use crate::common::{banner, fmt, header, row, FigureCtx};
use crate::note;

/// Tuples assumed by the figure (matches the paper's 10 M).
pub const TUPLES: u64 = 10_000_000;

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "8", "Two-predicate counter predictions (model only)");
    let geom = PlanGeometry::uniform_i32(TUPLES, 2);
    header(&[
        "sel1",
        "sel2",
        "bnt",
        "mp_not_taken",
        "mp_taken",
        "l3_accesses",
    ]);
    for i in 0..=10 {
        for j in 0..=10 {
            let p1 = f64::from(i) / 10.0;
            let p2 = f64::from(j) / 10.0;
            let n = TUPLES as f64;
            let est = estimate_counters(&geom, &[n * p1, n * p1 * p2]);
            row(&[
                fmt(p1),
                fmt(p2),
                fmt(est.bnt),
                fmt(est.mp_not_taken),
                fmt(est.mp_taken),
                fmt(est.l3_accesses),
            ]);
        }
    }
    // The distinguishability example of Section 4.2: (40%, 20%) vs
    // (20%, 40%).
    let a = estimate_counters(&geom, &[TUPLES as f64 * 0.4, TUPLES as f64 * 0.08]);
    let b = estimate_counters(&geom, &[TUPLES as f64 * 0.2, TUPLES as f64 * 0.08]);
    note!(
        "# (40%,20%) vs (20%,40%): BNT {} vs {}, MP-not-taken {} vs {} — at least one \
         counter separates the two orders",
        fmt(a.bnt),
        fmt(b.bnt),
        fmt(a.mp_not_taken),
        fmt(b.mp_not_taken),
    );
}
