//! Figure 4: measured/predicted branch misprediction ratios for a
//! two-predicate selection over the full selectivity grid (Section 3.2).
//!
//! Heat maps in the paper; here each grid point prints its ratio. Values
//! near 1.0 everywhere mean the multi-predicate composition of the Markov
//! model holds.

use popt_core::exec::scan::CompiledSelection;
use popt_cost::branch_costs::estimate_peo_branches;
use popt_cost::markov::ChainSpec;
use popt_cpu::{CpuConfig, SimCpu};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::{uniform_plan, uniform_table};
use crate::note;

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "4",
        "Two-predicate mispredictions: measured / predicted",
    );
    let rows = ctx.scale(1 << 18, 1 << 14);
    let table = uniform_table(rows, 2, 0xF1604);

    let grid: Vec<(f64, f64)> = (0..=10)
        .flat_map(|i| (0..=10).map(move |j| (i as f64 / 10.0, j as f64 / 10.0)))
        .collect();

    let results = parallel_map(&grid, |&(p1, p2)| {
        let plan = uniform_plan(&[p1, p2]);
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let compiled = CompiledSelection::compile(&table, &plan, &[0, 1]).expect("plan compiles");
        let stats = compiled.run_range(&mut cpu, 0, rows);
        let predicted = estimate_peo_branches(rows as u64, &[p1, p2], &ChainSpec::SIX, true);
        let ratio = |measured: u64, predicted: f64| -> f64 {
            if predicted < 1.0 {
                if measured == 0 {
                    1.0
                } else {
                    measured as f64
                }
            } else {
                measured as f64 / predicted
            }
        };
        (
            ratio(stats.counters.mp_not_taken, predicted.mp_not_taken),
            ratio(stats.counters.mp_taken, predicted.mp_taken),
            ratio(stats.counters.mispredictions(), predicted.mp_total()),
        )
    });

    header(&[
        "sel1",
        "sel2",
        "ratio_not_taken_mp",
        "ratio_taken_mp",
        "ratio_all_mp",
    ]);
    let mut worst: f64 = 1.0;
    for ((p1, p2), (rnt, rt, rall)) in grid.iter().zip(&results) {
        row(&[fmt(*p1), fmt(*p2), fmt(*rnt), fmt(*rt), fmt(*rall)]);
        // Track the worst overall-MP deviation over the interior grid
        // (corners have near-zero counts and noisy ratios).
        if *p1 > 0.05 && *p1 < 0.95 && *p2 > 0.05 && *p2 < 0.95 {
            let r = *rall;
            worst = worst.max(r.max(1.0 / r.max(1e-9)));
        }
    }
    note!("# worst interior all-MP deviation factor: {}", fmt(worst));
}
