//! Figure 9: start-point selection in a two-dimensional search space
//! (Section 4.3).
//!
//! A query with 25% overall selectivity over two predicates: the null
//! hypothesis sits at survivors (50, 25) of 100 input tuples, splitting
//! the space; vertices and largest-subspace centroids follow.

use popt_solver::bounds::SearchBounds;
use popt_solver::start_points::StartPointGenerator;

use crate::common::{banner, fmt, header, row, FigureCtx};

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "9",
        "Start point selection (2-D example, 25% overall selectivity)",
    );
    let bounds = SearchBounds {
        lower: vec![0.0, 0.0],
        upper: vec![100.0, 100.0],
    };
    let null = StartPointGenerator::null_hypothesis(2, 2, 100, 25);
    let generator = StartPointGenerator::new(bounds, null);
    header(&["point", "a1", "a2"]);
    for (i, p) in generator.take(10).enumerate() {
        row(&[format!("C{}", i + 1), fmt(p[0]), fmt(p[1])]);
    }
}
