//! Figure 2: counter overview for a single-predicate selection with
//! varying selectivity (Section 2.2).
//!
//! Six counters, each normalized to its maximum over the sweep: L3
//! accesses, branches taken / not taken, and mispredictions (taken /
//! not-taken / total). Reproduces the saturation of L3 accesses around
//! 20% selectivity and the misprediction peak at 50%.

use popt_core::exec::scan::CompiledSelection;
use popt_cpu::{CpuConfig, SimCpu};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::{uniform_plan, uniform_table};

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "2",
        "Counter overview (single selection, selectivity sweep)",
    );
    let rows = ctx.scale(1 << 20, 1 << 16);
    let table = uniform_table(rows, 1, 0xF1602);

    let sels: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();
    let measured = parallel_map(&sels, |&pct| {
        let plan = uniform_plan(&[pct / 100.0]);
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let compiled = CompiledSelection::compile(&table, &plan, &[0]).expect("plan compiles");
        let stats = compiled.run_range(&mut cpu, 0, rows);
        let c = stats.counters;
        [
            c.l3_accesses as f64,
            c.branches_taken as f64,
            c.branches_not_taken as f64,
            c.mp_taken as f64,
            c.mp_not_taken as f64,
            c.mispredictions() as f64,
        ]
    });

    let mut maxima = [0.0f64; 6];
    for m in &measured {
        for (mx, &v) in maxima.iter_mut().zip(m) {
            *mx = mx.max(v);
        }
    }
    header(&[
        "sel_pct",
        "l3_access_pct",
        "branch_taken_pct",
        "branch_not_taken_pct",
        "taken_mp_pct",
        "not_taken_mp_pct",
        "branch_mp_pct",
    ]);
    for (s, m) in sels.iter().zip(&measured) {
        let mut cells = vec![fmt(*s)];
        for (v, mx) in m.iter().zip(&maxima) {
            cells.push(fmt(if *mx > 0.0 { v / mx * 100.0 } else { 0.0 }));
        }
        row(&cells);
    }
}
