//! Figure 15: foreign-key join ordering under co-clustering
//! (Section 5.6).
//!
//! `lineitem ⋈ orders ⋈ part`, both joins as FK filters with equal
//! selectivity swept 20…100%. A textbook optimizer joins `part` first
//! (it is ~8× smaller than `orders`); the counters reveal that
//! `lineitem`/`orders` are co-clustered, making the orders join
//! near-sequential and cheaper at *every* selectivity. Panel (b): the L3
//! misses behind the effect — and the signal the sortedness detector
//! (Equation 1 comparison) uses to flip the order.

use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::{run_progressive_program, ProgressiveConfig, VectorConfig};
use popt_core::sortedness::{recommend_join_order, JoinObservation};
use popt_cost::join_model::JoinGeometry;
use popt_cpu::{CacheLevelConfig, CpuConfig, SimCpu};
use popt_storage::{AddressSpace, ColumnData, Table};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::DOMAIN;
use crate::note;

/// A hierarchy scaled so that *both* dimension tables exceed the LLC
/// (in the paper, `orders` and `part` both dwarf the 15 MiB L3 at
/// SF 100): 8 KiB L1 / 32 KiB L2 / 128 KiB L3.
pub fn scaled_cpu() -> CpuConfig {
    let mut cfg = CpuConfig::xeon_e5_2630_v2();
    cfg.name = "scaled-down Xeon (128 KiB LLC)";
    cfg.levels = vec![
        CacheLevelConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 0,
        },
        CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency_cycles: 10,
        },
        CacheLevelConfig {
            capacity_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 30,
        },
    ];
    cfg
}

fn tables(rows: usize, seed: u64) -> (Table, Table, Table) {
    let orders_n = rows / 4;
    let part_n = (orders_n / 8).max(16); // "about eight times smaller"
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as i64
    };
    let mut space = AddressSpace::new();
    let mut fact = Table::new("lineitem");
    fact.add_column(
        "l_orderkey",
        ColumnData::I32((0..rows).map(|i| (i / 4) as i32).collect()),
        &mut space,
    );
    fact.add_column(
        "l_partkey",
        ColumnData::I32((0..rows).map(|_| (next() % part_n as i64) as i32).collect()),
        &mut space,
    );
    let mut orders_space = AddressSpace::new();
    let mut orders = Table::new("orders");
    orders.add_column(
        "o_totalprice",
        ColumnData::I32((0..orders_n).map(|_| (next() % DOMAIN) as i32).collect()),
        &mut orders_space,
    );
    let mut part_space = AddressSpace::new();
    let mut part = Table::new("part");
    part.add_column(
        "p_retailprice",
        ColumnData::I32((0..part_n).map(|_| (next() % DOMAIN) as i32).collect()),
        &mut part_space,
    );
    (fact, orders, part)
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "15",
        "Foreign-key join order: orders-first vs. part-first",
    );
    let rows = ctx.scale(1 << 21, 1 << 17);
    let (fact, orders, part) = tables(rows, 0xF1615);
    note!("# frontend: PlanBuilder -> optimizer passes -> CompiledProgram");

    let sels: Vec<f64> = (2..=10).map(|i| i as f64 / 10.0).collect();
    let results = parallel_map(&sels, |&sel| {
        let literal = (sel * DOMAIN as f64) as i64;
        // One fixed logical plan (orders join at plan index 0, part at
        // 1) through the full frontend; the evaluation order is a
        // permutation of it, never a different plan.
        let build = || {
            PlanBuilder::scan(&fact)
                .join(
                    &orders,
                    "l_orderkey",
                    Expr::col("o_totalprice").less_than(literal),
                )
                .join(
                    &part,
                    "l_partkey",
                    Expr::col("p_retailprice").less_than(literal),
                )
                .build()
                .optimize()
                .compile()
                .expect("plan lowers to two joins")
        };
        let run_order = |orders_first: bool| {
            let mut program = build();
            let order: [usize; 2] = if orders_first { [0, 1] } else { [1, 0] };
            program.reorder(&order).expect("valid order");
            let mut cpu = SimCpu::new(scaled_cpu());
            let stats = program.run_range(&mut cpu, 0, fact.rows());
            (cpu.millis(), stats.counters.l3_misses, stats.qualified)
        };
        let (o_ms, o_miss, q1) = run_order(true);
        let (p_ms, p_miss, q2) = run_order(false);
        assert_eq!(q1, q2, "join order must not change the result");

        // Progressive execution from the *textbook* order (the ~8× smaller
        // `part` joined first): the counters must reveal the co-clustered
        // orders join and flip the order at runtime (Section 5.6).
        let mut program = build();
        let mut cpu = SimCpu::new(scaled_cpu());
        let prog = run_progressive_program(
            &mut program,
            &[1, 0],
            VectorConfig {
                vector_tuples: 4096,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval: 2,
                ..Default::default()
            },
        )
        .expect("progressive program runs");
        assert_eq!(prog.qualified, q1, "progressive must not change the result");
        // Plan index 0 is the orders join; [1, 0] started part-first.
        let flipped = prog.final_peo == vec![0, 1];
        (sel, o_ms, p_ms, prog.millis, o_miss, p_miss, flipped)
    });

    header(&[
        "join_sel_pct",
        "orders_first_ms",
        "part_first_ms",
        "progressive_ms",
        "orders_first_l3_misses",
        "part_first_l3_misses",
        "prog_flipped_to_orders_first",
    ]);
    let mut orders_always_faster = true;
    for (sel, o_ms, p_ms, prog_ms, o_miss, p_miss, flipped) in &results {
        // At 100% selectivity nothing filters and the two pipelines do
        // identical work — compare with an epsilon for that tie.
        orders_always_faster &= *o_ms <= p_ms * 1.001;
        row(&[
            fmt(sel * 100.0),
            fmt(*o_ms),
            fmt(*p_ms),
            fmt(*prog_ms),
            o_miss.to_string(),
            p_miss.to_string(),
            flipped.to_string(),
        ]);
    }
    note!("# orders-first faster at every selectivity: {orders_always_faster}");

    // The detector's view (Section 5.6): probe each dimension for one
    // sample and ask which join should go first.
    let cpu_cfg = scaled_cpu();
    let probe = |dim: &Table, fk_col: &str, dim_col: &str, name: &str| {
        let program = PlanBuilder::scan(&fact)
            .join(dim, fk_col, Expr::col(dim_col).less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("probe join lowers");
        let mut cpu = SimCpu::new(cpu_cfg.clone());
        let sample_rows = fact.rows().min(1 << 16);
        let stats = program.run_range(&mut cpu, 0, sample_rows);
        JoinObservation {
            name: name.into(),
            geometry: JoinGeometry {
                relation_tuples: dim.rows() as u64,
                tuple_bytes: 4,
                line_bytes: 64,
                cache_lines: cpu_cfg.llc().lines(),
            },
            accesses: stats.tuples,
            measured_misses: stats.counters.l3_misses,
        }
    };
    let obs = vec![
        probe(&orders, "l_orderkey", "o_totalprice", "orders"),
        probe(&part, "l_partkey", "p_retailprice", "part"),
    ];
    let order = recommend_join_order(&obs);
    note!(
        "# detector recommends joining {} first (patterns: orders={:?}, part={:?})",
        obs[order[0]].name,
        obs[0].pattern(),
        obs[1].pattern()
    );

    convergence_sweep(&fact, &orders, &part);
}

/// The fig12/fig13-style convergence study for operator reordering:
/// sweep `reop_interval` × vector size at a fixed 50% join selectivity
/// and report where the convergence cost (late switching plus trial
/// vectors plus estimator time, all starting from the textbook
/// part-first order) crosses the static-order gap.
fn convergence_sweep(fact: &Table, orders: &Table, part: &Table) {
    let literal = DOMAIN / 2;
    let build = || {
        PlanBuilder::scan(fact)
            .join(
                orders,
                "l_orderkey",
                Expr::col("o_totalprice").less_than(literal),
            )
            .join(
                part,
                "l_partkey",
                Expr::col("p_retailprice").less_than(literal),
            )
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to two joins")
    };
    let static_ms = |orders_first: bool| {
        let mut program = build();
        let order: [usize; 2] = if orders_first { [0, 1] } else { [1, 0] };
        program.reorder(&order).expect("valid order");
        let mut cpu = SimCpu::new(scaled_cpu());
        program.run_range(&mut cpu, 0, fact.rows());
        cpu.millis()
    };
    let best_ms = static_ms(true); // orders-first (co-clustered) wins
    let worst_ms = static_ms(false); // the textbook part-first order

    note!("\n# convergence sweep at 50% join selectivity: where does the");
    note!("# reop_interval x vector-size convergence cost cross the static gap?");
    header(&[
        "reop_interval",
        "vector_tuples",
        "progressive_ms",
        "best_static_ms",
        "worst_static_ms",
        "overhead_vs_best_pct",
        "beats_worst_static",
    ]);
    let grid: Vec<(usize, usize)> = [2usize, 10, 50]
        .into_iter()
        .flat_map(|reop| [1_024usize, 4_096, 16_384].map(|vt| (reop, vt)))
        .collect();
    let sweep = parallel_map(&grid, |&(reop_interval, vector_tuples)| {
        let mut program = build();
        let mut cpu = SimCpu::new(scaled_cpu());
        let prog = run_progressive_program(
            &mut program,
            &[1, 0],
            VectorConfig {
                vector_tuples,
                max_vectors: None,
            },
            &mut cpu,
            &ProgressiveConfig {
                reop_interval,
                ..Default::default()
            },
        )
        .expect("progressive program runs");
        (reop_interval, vector_tuples, prog.millis)
    });
    for (reop_interval, vector_tuples, prog_ms) in sweep {
        row(&[
            reop_interval.to_string(),
            vector_tuples.to_string(),
            fmt(prog_ms),
            fmt(best_ms),
            fmt(worst_ms),
            fmt((prog_ms - best_ms) / best_ms * 100.0),
            (prog_ms < worst_ms).to_string(),
        ]);
    }
    note!(
        "# expectation: short intervals and small vectors converge early enough to \
         beat the worst static order at modest overhead over the best; very long \
         intervals on few vectors approach the worst order's time"
    );
}
