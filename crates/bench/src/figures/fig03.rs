//! Figure 3: Markov chains with 2–8 states (including the uneven +1T/+1NT
//! variants) against a measured sample (Section 3.2).
//!
//! Three panels — taken mispredictions (a), not-taken mispredictions (b),
//! all mispredictions (c) — each as percent of the predicate's branches.
//! The six-state chain should track the measured Ivy-Bridge-like sample
//! "almost exactly".

use popt_core::exec::scan::CompiledSelection;
use popt_cost::markov::ChainSpec;
use popt_cpu::{CpuConfig, SimCpu};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::{uniform_plan, uniform_table};
use crate::note;

/// The chain configurations of the figure's legend.
pub fn chains() -> Vec<ChainSpec> {
    vec![
        ChainSpec::even(2),
        ChainSpec::even(4),
        ChainSpec::plus_one_not_taken(5),
        ChainSpec::plus_one_taken(5),
        ChainSpec::even(6),
        ChainSpec::plus_one_taken(7),
        ChainSpec::plus_one_not_taken(7),
        ChainSpec::even(8),
    ]
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "3", "Markov model state counts vs. measured sample");
    let rows = ctx.scale(1 << 19, 1 << 15);
    let table = uniform_table(rows, 1, 0xF1603);
    let specs = chains();

    let sels: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();
    let samples = parallel_map(&sels, |&pct| {
        let plan = uniform_plan(&[pct / 100.0]);
        let mut cpu = SimCpu::new(CpuConfig::ivy_bridge());
        let compiled = CompiledSelection::compile(&table, &plan, &[0]).expect("plan compiles");
        let stats = compiled.run_range(&mut cpu, 0, rows);
        let n = rows as f64;
        (
            stats.counters.mp_taken as f64 / n * 100.0,
            stats.counters.mp_not_taken as f64 / n * 100.0,
            stats.counters.mispredictions() as f64 / n * 100.0,
        )
    });

    for (panel, label) in [
        (0usize, "(a) taken mispredictions, % of branches"),
        (1, "(b) not-taken mispredictions, % of branches"),
        (2, "(c) all mispredictions, % of branches"),
    ] {
        note!("# panel {label}");
        let mut cols = vec!["sel_pct".to_string()];
        cols.extend(specs.iter().map(|s| s.label()));
        cols.push("ivy_sample".into());
        header(&cols);
        for (s, sample) in sels.iter().zip(&samples) {
            let p = s / 100.0;
            let mut cells = vec![fmt(*s)];
            for spec in &specs {
                let probs = spec.probabilities(p);
                let v = match panel {
                    0 => probs.mp_taken,
                    1 => probs.mp_not_taken,
                    _ => probs.mp_total(),
                };
                cells.push(fmt(v * 100.0));
            }
            let measured = match panel {
                0 => sample.0,
                1 => sample.1,
                _ => sample.2,
            };
            cells.push(fmt(measured));
            row(&cells);
        }
    }
}
