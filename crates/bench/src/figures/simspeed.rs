//! Simulation-speed figure (beyond the paper): host-side throughput of
//! the simulator itself, in millions of simulated tuples per host
//! second.
//!
//! Three workloads, each executed through the batched fast path and
//! through the scalar per-event oracle (`set_scalar_oracle`):
//!
//! * a single-predicate scan at the Figure-14 cache scaling — the shape
//!   where the fast path's closed-form line accounting applies in full;
//! * the 3-join star pipeline, serial — the quiet-API event loop with
//!   per-probe hierarchy walks;
//! * the same pipeline under 4-worker morsel parallelism (reopt off).
//!
//! The two paths are bit-identical in simulated results — every row of
//! this figure re-asserts that before it prints — so the speedup column
//! is pure host-side win. Timings take the best of a few repeats; the
//! recorded metrics carry a deliberately loose tolerance
//! ([`HOST_TOL`]) because host wall throughput on a shared box is
//! elastic in a way simulated cycles are not: the regression gate is
//! meant to catch the fast path silently degenerating to oracle speed,
//! not scheduler jitter.

use std::time::Instant;

use popt_core::exec::scan::CompiledSelection;
use popt_core::parallel::{run_parallel_program, MorselConfig};
use popt_core::plan::SelectionPlan;
use popt_core::predicate::{CompareOp, Predicate};
use popt_cpu::{CpuPool, SimCpu};
use popt_storage::{AddressSpace, ColumnData, Table};

use crate::common::{banner_with, bench_metric_tol, check, fmt, header, row, FigureCtx};
use crate::figures::fig14::scaled_cpu;
use crate::figures::workload::{star_program, star_schema, xorshift64};
use crate::note;

/// Relative tolerance for the host-elastic throughput metrics.
pub const HOST_TOL: f64 = 4.0;

/// Best (fastest) wall seconds of `repeats` runs of `f`.
fn best_secs<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let t0 = Instant::now();
    let mut out = f();
    best = best.min(t0.elapsed().as_secs_f64());
    for _ in 1..repeats {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out)
}

fn mtps(rows: usize, secs: f64) -> f64 {
    rows as f64 / secs / 1e6
}

fn report_row(name: &str, rows: usize, fast_s: f64, slow_s: f64, identical: bool) {
    check(identical, "batched result diverged from the scalar oracle");
    let fast = mtps(rows, fast_s);
    let slow = mtps(rows, slow_s);
    row(&[
        name.to_string(),
        fmt(fast),
        fmt(slow),
        format!("{:.2}x", fast / slow),
        identical.to_string(),
    ]);
    bench_metric_tol(&format!("{name}_batched_mtps"), fast, HOST_TOL);
    bench_metric_tol(&format!("{name}_oracle_mtps"), slow, HOST_TOL);
}

pub fn run(ctx: &FigureCtx) {
    let scan_rows = ctx.scale(1 << 21, 1 << 17);
    let star_rows = ctx.scale(1 << 18, 1 << 14);
    let repeats = ctx.scale(3, 2);
    banner_with(
        ctx,
        "simspeed",
        "host throughput of the simulator (batched fast path vs scalar oracle)",
        &[
            ("scan_rows", scan_rows.to_string()),
            ("star_rows", star_rows.to_string()),
            ("repeats", repeats.to_string()),
        ],
    );
    header(&[
        "workload",
        "batched_mtps",
        "oracle_mtps",
        "speedup",
        "identical",
    ]);

    // Single-predicate scan: the closed-form bulk-accounting shape.
    let mut state = 0x5EEDu64;
    let val: Vec<i32> = (0..scan_rows)
        .map(|_| (xorshift64(&mut state) % 1000) as i32)
        .collect();
    let mut space = AddressSpace::new();
    let mut table = Table::new("t");
    table.add_column("val", ColumnData::I32(val), &mut space);
    let plan = SelectionPlan::new(vec![Predicate::new("val", CompareOp::Lt, 500)], vec![])
        .expect("scan plan");
    let mut compiled = CompiledSelection::compile(&table, &plan, &[0]).expect("scan compiles");
    let mut timed_scan = |oracle: bool| {
        compiled.set_scalar_oracle(oracle);
        best_secs(repeats, || {
            let mut cpu = SimCpu::new(scaled_cpu());
            let stats = compiled.run_range(&mut cpu, 0, scan_rows);
            (stats, cpu.counters())
        })
    };
    let (fast_s, fast_out) = timed_scan(false);
    let (slow_s, slow_out) = timed_scan(true);
    report_row("scan", scan_rows, fast_s, slow_s, fast_out == slow_out);

    // 3-join star pipeline, serial.
    let star = star_schema(star_rows, 0x57A15);
    let timed_star = |oracle: bool| {
        let mut program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
        program.set_scalar_oracle(oracle);
        best_secs(repeats, || {
            let mut cpu = SimCpu::new(scaled_cpu());
            let stats = program.run_range(&mut cpu, 0, star_rows);
            (stats, cpu.counters())
        })
    };
    let (fast_s, fast_out) = timed_star(false);
    let (slow_s, slow_out) = timed_star(true);
    report_row("join3", star_rows, fast_s, slow_s, fast_out == slow_out);

    // Same pipeline, 4-worker morsel parallelism, reopt off (the
    // reopt-off parallel report is fully deterministic, so the two
    // paths must agree on the whole report, per-worker cycles
    // included).
    let order = [0usize, 1, 2, 3];
    let timed_par = |oracle: bool| {
        best_secs(repeats, || {
            let mut program = star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
            program.set_scalar_oracle(oracle);
            let mut pool = CpuPool::new(scaled_cpu(), 4);
            run_parallel_program(
                &mut program,
                &order,
                MorselConfig::new(1024),
                &mut pool,
                None,
            )
            .expect("parallel run")
        })
    };
    let (fast_s, fast_rep) = timed_par(false);
    let (slow_s, slow_rep) = timed_par(true);
    report_row(
        "join3_par4",
        star_rows,
        fast_s,
        slow_s,
        fast_rep == slow_rep,
    );

    note!(
        "# simspeed: batched and scalar-oracle paths re-asserted bit-identical on every workload"
    );
}
