//! Figure 6: branch counter overview across microarchitectures against
//! the Markov estimate and the Zeuch et al. piecewise baseline
//! (Section 3.2).
//!
//! For each selectivity: mispredictions (total, taken, not-taken) measured
//! on the Nehalem / Sandy-Bridge / Ivy-Bridge / Broadwell predictor
//! configurations, the Equation-5 estimates, and Equation 3's piecewise
//! total.

use popt_core::exec::scan::CompiledSelection;
use popt_cost::markov::ChainSpec;
use popt_cost::piecewise;
use popt_cpu::{CpuConfig, SimCpu};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::{uniform_plan, uniform_table};

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "6",
        "Branch counters across microarchitectures vs. estimates",
    );
    let rows = ctx.scale(1 << 20, 1 << 15);
    let table = uniform_table(rows, 1, 0xF1606);
    let archs: Vec<(&str, CpuConfig)> = vec![
        ("nehalem", CpuConfig::nehalem()),
        ("sandy", CpuConfig::sandy_bridge()),
        ("ivy", CpuConfig::ivy_bridge()),
        ("broadwell", CpuConfig::broadwell()),
    ];

    let sels: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();

    let mut cols = vec!["sel_pct".to_string()];
    for (name, _) in &archs {
        cols.push(format!("{name}_mp"));
        cols.push(format!("{name}_tak_mp"));
        cols.push(format!("{name}_nottak_mp"));
    }
    cols.extend([
        "est_mp".into(),
        "est_tak_mp".into(),
        "est_nottak_mp".into(),
        "zeuch_mp".into(),
    ]);
    header(&cols);

    let measurements = parallel_map(&sels, |&pct| {
        archs
            .iter()
            .map(|(_, cfg)| {
                let plan = uniform_plan(&[pct / 100.0]);
                let mut cpu = SimCpu::new(cfg.clone());
                let compiled =
                    CompiledSelection::compile(&table, &plan, &[0]).expect("plan compiles");
                let stats = compiled.run_range(&mut cpu, 0, rows);
                (
                    stats.counters.mispredictions(),
                    stats.counters.mp_taken,
                    stats.counters.mp_not_taken,
                )
            })
            .collect::<Vec<_>>()
    });

    for (s, per_arch) in sels.iter().zip(&measurements) {
        let p = s / 100.0;
        let mut cells = vec![fmt(*s)];
        for (mp, tak, nottak) in per_arch {
            cells.push(fmt(*mp as f64));
            cells.push(fmt(*tak as f64));
            cells.push(fmt(*nottak as f64));
        }
        let probs = ChainSpec::SIX.probabilities(p);
        let n = rows as f64;
        cells.push(fmt(probs.mp_total() * n));
        cells.push(fmt(probs.mp_taken * n));
        cells.push(fmt(probs.mp_not_taken * n));
        cells.push(fmt(piecewise::mp_count(rows as u64, p)));
        row(&cells);
    }
}
