//! Figure 1: best vs. worst physical plan for TPC-H Query 6 as the
//! shipdate selectivity sweeps from 10⁻⁴ % to 10² % (Section 1).
//!
//! The paper's motivating plot: the cost ratio between the worst and best
//! of the 24 predicate orders of the four-predicate Q6 form, largest when
//! the shipdate predicate is very selective (evaluating it late wastes
//! work on every other column).

use popt_core::exec::scan::CompiledSelection;
use popt_core::query::QueryBuilder;
use popt_cpu::{CpuConfig, SimCpu};
use popt_storage::stats;
use popt_storage::tpch::{generate_lineitem, TpchConfig};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::note;

/// Shipdate selectivities in percent (log scale, as in the figure).
pub const SELECTIVITIES_PCT: &[f64] = &[0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "1", "Best v. Worst plan costs for TPC-H Query 6");
    let rows = ctx.scale(1 << 20, 1 << 17);
    let table = generate_lineitem(&TpchConfig::with_rows(rows));
    let shipdate = table.column("l_shipdate").unwrap();

    header(&["shipdate_sel_pct", "best_ms", "worst_ms", "worst/best"]);
    let mut max_ratio: f64 = 0.0;
    for &pct in SELECTIVITIES_PCT {
        let literal = if pct >= 100.0 {
            i64::MAX / 2
        } else {
            stats::quantile(shipdate.data(), pct / 100.0)
        };
        let plan = QueryBuilder::q6_figure1_plan(literal);
        let peos = plan.all_peos();
        let cycles = parallel_map(&peos, |peo| {
            let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
            let compiled =
                CompiledSelection::compile(&table, &plan, peo).expect("figure plan compiles");
            compiled.run_range(&mut cpu, 0, rows);
            cpu.cycles()
        });
        let best = *cycles.iter().min().unwrap() as f64;
        let worst = *cycles.iter().max().unwrap() as f64;
        let to_ms = |c: f64| c / 2.6e6;
        let ratio = worst / best;
        max_ratio = max_ratio.max(ratio);
        row(&[fmt(pct), fmt(to_ms(best)), fmt(to_ms(worst)), fmt(ratio)]);
    }
    note!("# max worst/best ratio: {}", fmt(max_ratio));
}
