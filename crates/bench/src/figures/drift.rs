//! Drift figure (beyond the paper): how accurate is the counter model
//! that steers progressive reoptimization, and where do each stage's
//! cycles actually go?
//!
//! The §4.4 loop trusts two predictions at every reopt round: the fitted
//! counter model (branch/L3 counts at the estimated survivor rates) and
//! the analytic cycles-per-tuple ranking built on it. This figure runs
//! the Figure-14 "Mem" crossover workload — expensive selection against
//! a fully random FK probe whose dimension thrashes the L3 — with the
//! model-drift observatory attached, on four configurations:
//!
//! * the serial §4.4 loop (the crossover itself);
//! * the 4-worker private-LLC pool (fused multi-worker windows);
//! * the 4-worker shared-LLC socket (capacity contention the analytic
//!   model does not price);
//! * a 2-socket NUMA pool (remote-access surcharges likewise outside
//!   the model).
//!
//! Per run, metric and stage key it reports the windowed residual
//! statistics: raw relative error (face value, including the constant
//! bias from the analytic [`CycleParams`] defaults vs the scaled
//! hierarchy the figures simulate), sign bias, the window's best
//! constant scale, and the **calibrated** relative error after dividing
//! that scale out — the model's *shape* accuracy, which is what ranking
//! decisions depend on. The figure's gate: the serial crossover's
//! calibrated mean cycles-per-tuple error stays ≤ 15%.
//!
//! The same runs carry the per-stage cycle profiler; its conservation
//! law (stage + optimizer + idle lanes sum bit-exactly to the pool wall
//! clock) is checked here on real workloads and the serial run's flame
//! summary is printed. Both observers are non-invasive: the serial
//! observed run is asserted bit-identical to the unobserved one.
//!
//! [`CycleParams`]: ../../../popt_cost/cycles/struct.CycleParams.html

use std::sync::Arc;

use popt_core::exec::program::CompiledProgram;
use popt_core::parallel::{run_parallel_program_observed, MorselConfig};
use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::{
    run_progressive_program, run_progressive_program_observed, ProgressiveConfig, VectorConfig,
};
use popt_core::ExecObservers;
use popt_cpu::{CpuPool, LlcMode, SimCpu};
use popt_obs::{DriftObservatory, MetricsRegistry, Profiler};

use crate::common::{banner, bench_metric, bench_metric_tol, check, fmt, header, row, FigureCtx};
use crate::figures::fig15::scaled_cpu;
use crate::figures::workload::{fig14_mem_tables, DOMAIN};
use crate::note;

/// The ≤ 15% calibrated cycles-per-tuple gate of the figure.
pub const CPT_GATE: f64 = 0.15;

/// Print one observatory's series under a run label and return the
/// worst calibrated mean cycles-per-tuple error (None when the run
/// never fitted).
fn print_drift(run: &str, drift: &DriftObservatory) -> Option<f64> {
    for ((metric, key), s) in drift.series() {
        row(&[
            run.to_string(),
            metric.clone(),
            format!("{key:016x}"),
            s.samples.to_string(),
            fmt(s.mean_rel_err),
            fmt(s.max_rel_err),
            fmt(s.sign_bias),
            fmt(s.scale),
            fmt(s.calibrated_mean_rel_err),
            fmt(s.calibrated_max_rel_err),
        ]);
    }
    drift.worst_calibrated_mean("cpt")
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "drift",
        "Model-drift observatory and per-stage cycle profiler on the L3-crossover workload",
    );
    let rows = ctx.scale(1 << 19, 1 << 16);
    let (fact, dim) = fig14_mem_tables(rows, 0x5CA1E);
    let build = || -> CompiledProgram<'_> {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    // Started join-first (the worse static order at full shuffle) so the
    // loop reoptimizes — every fit is one drift sample.
    let initial = [1usize, 0];
    let serial_config = ProgressiveConfig {
        reop_interval: 2,
        ..Default::default()
    };
    let pool_config = ProgressiveConfig {
        reop_interval: 4,
        ..Default::default()
    };
    let vectors = VectorConfig {
        vector_tuples: 4_096,
        max_vectors: None,
    };
    let morsels = MorselConfig::cache_friendly(&scaled_cpu(), 12);

    // Ground truth for exactness checks (order-invariant).
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    header(&[
        "run",
        "metric",
        "stage_key",
        "n",
        "mean_err",
        "max_err",
        "sign_bias",
        "scale",
        "cal_mean_err",
        "cal_max_err",
    ]);

    // --- Serial crossover: the gated run. ---
    let drift_serial = Arc::new(DriftObservatory::new());
    let prof_serial = Arc::new(Profiler::new(1));
    let obs = ExecObservers::none()
        .with_drift(Arc::clone(&drift_serial))
        .with_profiler(Arc::clone(&prof_serial));
    let mut program = build();
    let mut cpu = SimCpu::new(scaled_cpu());
    let observed = run_progressive_program_observed(
        &mut program,
        &initial,
        vectors,
        &mut cpu,
        &serial_config,
        &obs,
    )
    .expect("observed serial run");

    // Non-invasiveness, demonstrated on the figure's own workload: the
    // unobserved serial run must be bit-identical, field for field.
    let mut plain_program = build();
    let mut plain_cpu = SimCpu::new(scaled_cpu());
    let plain = run_progressive_program(
        &mut plain_program,
        &initial,
        vectors,
        &mut plain_cpu,
        &serial_config,
    )
    .expect("plain serial run");
    check(
        observed.qualified == plain.qualified
            && observed.sum == plain.sum
            && observed.cycles == plain.cycles
            && observed.final_peo == plain.final_peo
            && observed.switches == plain.switches,
        "attaching drift+profiler must not change the serial run",
    );
    check(
        observed.qualified == expect.qualified && observed.sum == expect.sum,
        "serial crossover result must match the static executor",
    );
    let serial_worst = print_drift("serial", &drift_serial);

    // --- 4-worker private pool. ---
    let run_pool = |label: &str, mut pool: CpuPool| {
        let drift = Arc::new(DriftObservatory::new());
        let prof = Arc::new(Profiler::new(pool.cores().len()));
        let obs = ExecObservers::none()
            .with_drift(Arc::clone(&drift))
            .with_profiler(Arc::clone(&prof));
        let mut program = build();
        let report = run_parallel_program_observed(
            &mut program,
            &initial,
            morsels,
            &mut pool,
            Some(&pool_config),
            &obs,
        )
        .expect("observed parallel run");
        check(
            report.qualified == expect.qualified && report.sum == expect.sum,
            "parallel observed result must match the static executor",
        );
        check(
            prof.conserves(),
            "profiled cycles must sum bit-exactly to the pool wall clock",
        );
        check(
            prof.total_attributed() == prof.wall_cycles() * report.workers as u64,
            "attributed total must equal wall x workers",
        );
        let worst = print_drift(label, &drift);
        (report, prof, worst)
    };
    let (par_report, _par_prof, par_worst) = run_pool("parallel-4w", CpuPool::new(scaled_cpu(), 4));
    let (_shared_report, _shared_prof, shared_worst) = run_pool(
        "shared-llc-4w",
        CpuPool::with_mode(scaled_cpu(), 4, LlcMode::Shared),
    );
    let (numa_report, _numa_prof, numa_worst) = run_pool(
        "numa-2s",
        CpuPool::with_topology(scaled_cpu(), 4, LlcMode::Private, 2),
    );

    // --- Serial profile: conservation + flame. ---
    check(
        prof_serial.conserves(),
        "serial profile must conserve against the reported cycles",
    );
    check(
        prof_serial.wall_cycles() == observed.cycles,
        "serial profile wall must equal the report's total cycles",
    );
    note!("# serial flame (cycles per lane, share of attributed total):");
    for line in prof_serial.flame().lines() {
        note!("#   {line}");
    }
    let totals = prof_serial.stage_totals();
    let join_cycles = totals.get(&1).copied().unwrap_or(0);
    let scan_cycles = totals.get(&0).copied().unwrap_or(0);
    // Once converged the selection runs first over every tuple while the
    // LLC-thrashing probe only sees survivors — which lane accumulates
    // more *total* cycles depends on how long convergence took, but both
    // stages must have executed and been attributed.
    check(
        join_cycles > 0 && scan_cycles > 0,
        "both stages must receive profile attribution",
    );
    let (_, opt_cycles, _) = prof_serial.worker_lanes(0);
    check(
        opt_cycles == observed.optimizer_cycles,
        "the profiler's optimizer lane must equal the report's optimizer cycles",
    );

    // --- The gate + registry export. ---
    let serial_worst = serial_worst.expect("serial run fitted at least once");
    let mut reg = MetricsRegistry::new();
    drift_serial.export(&mut reg);
    note!(
        "# drift: serial crossover recorded {} samples over {} series",
        reg.counter("drift.samples"),
        reg.counter("drift.series"),
    );
    let show = |w: Option<f64>| w.map_or("n/a".to_string(), fmt);
    note!(
        "# drift: worst calibrated cpt mean error — serial {} | parallel {} | shared {} | numa {}",
        fmt(serial_worst),
        show(par_worst),
        show(shared_worst),
        show(numa_worst),
    );
    note!(
        "# drift gate: serial calibrated cpt mean {} <= {}: {}",
        fmt(serial_worst),
        CPT_GATE,
        serial_worst <= CPT_GATE,
    );
    check(
        serial_worst <= CPT_GATE,
        "calibrated cycles-per-tuple drift exceeded the 15% gate",
    );

    // Regression-gate metrics: the serial run is a pure function of the
    // simulation (tight tolerance); pool walls and their drift errors
    // are host-elastic under reoptimization (loose tolerance).
    bench_metric("serial.cycles", observed.cycles as f64);
    bench_metric("serial.qualified", observed.qualified as f64);
    bench_metric("serial.stage1_profile_cycles", join_cycles as f64);
    bench_metric_tol("serial.cal_cpt_worst", serial_worst, 0.5);
    bench_metric_tol("parallel.wall_cycles", par_report.wall_cycles as f64, 0.35);
    bench_metric_tol(
        "numa.remote_access_pct",
        numa_report.remote_access_pct,
        0.35,
    );

    note!(
        "# expectation: the raw cycles-per-tuple error carries the constant bias \
         between the analytic CycleParams defaults and the scaled simulated \
         hierarchy (visible as a stable window scale), while the calibrated \
         error — the model's shape accuracy, the thing order ranking depends \
         on — stays within the 15% gate on the crossover; contention the model \
         does not price (shared-LLC capacity, NUMA remote surcharges) shows up \
         as extra calibrated error, and the profiler's stage/optimizer/idle \
         lanes conserve bit-exactly on every configuration"
    );
}
