//! One module per figure of the paper. See each module's docs for what
//! the corresponding figure shows and which paper section it comes from.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod scale;
pub mod workload;

use crate::common::FigureCtx;

/// All figure ids in paper order, plus the beyond-the-paper parallel
/// scaling study (`scale`).
pub const ALL: &[&str] = &[
    "1", "2", "3", "4", "6", "7", "8", "9", "11", "12", "13", "14", "15", "16", "scale",
];

/// Dispatch a figure by id; returns false for unknown ids.
pub fn run(id: &str, ctx: &FigureCtx) -> bool {
    match id {
        "1" => fig01::run(ctx),
        "2" => fig02::run(ctx),
        "3" => fig03::run(ctx),
        "4" => fig04::run(ctx),
        "6" => fig06::run(ctx),
        "7" => fig07::run(ctx),
        "8" => fig08::run(ctx),
        "9" => fig09::run(ctx),
        "11" => fig11::run(ctx),
        "12" => fig12::run(ctx),
        "13" => fig13::run(ctx),
        "14" => fig14::run(ctx),
        "15" => fig15::run(ctx),
        "16" => fig16::run(ctx),
        "scale" => scale::run(ctx),
        _ => return false,
    }
    true
}
