//! One module per figure of the paper. See each module's docs for what
//! the corresponding figure shows and which paper section it comes from.

pub mod drift;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod scale;
pub mod serve;
pub mod simspeed;
pub mod trace;
pub mod workload;

use crate::common::FigureCtx;

/// All figure ids in paper order, plus the beyond-the-paper parallel
/// scaling study (`scale`), the multi-query serving study (`serve`),
/// the observability demonstration (`trace`), the model-drift /
/// profiler study (`drift`), and the host-side simulator-throughput
/// study (`simspeed`).
pub const ALL: &[&str] = &[
    "1", "2", "3", "4", "6", "7", "8", "9", "11", "12", "13", "14", "15", "16", "scale", "serve",
    "trace", "drift", "simspeed",
];

/// Dispatch a figure by id; returns false for unknown ids (the CLI turns
/// that into a non-zero exit with the known ids printed).
pub fn run(id: &str, ctx: &FigureCtx) -> bool {
    match id {
        "1" => fig01::run(ctx),
        "2" => fig02::run(ctx),
        "3" => fig03::run(ctx),
        "4" => fig04::run(ctx),
        "6" => fig06::run(ctx),
        "7" => fig07::run(ctx),
        "8" => fig08::run(ctx),
        "9" => fig09::run(ctx),
        "11" => fig11::run(ctx),
        "12" => fig12::run(ctx),
        "13" => fig13::run(ctx),
        "14" => fig14::run(ctx),
        "15" => fig15::run(ctx),
        "16" => fig16::run(ctx),
        "scale" => scale::run(ctx),
        "serve" => serve::run(ctx),
        "simspeed" => simspeed::run(ctx),
        "trace" => trace::run(ctx),
        "drift" => drift::run(ctx),
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_ids_are_rejected_and_known_ids_are_unique() {
        // `run` must refuse ids it does not know (the CLI exits non-zero
        // and prints `ALL` when it sees `false`), and every advertised
        // id must be unique and non-empty.
        let mut ctx = FigureCtx::plain();
        ctx.quick = true;
        assert!(!run("not-a-figure", &ctx));
        assert!(!run("", &ctx));
        assert!(!run("Serve", &ctx), "ids are case-sensitive");
        let mut seen = std::collections::HashSet::new();
        for id in ALL {
            assert!(!id.is_empty());
            assert!(seen.insert(id), "duplicate figure id {id:?}");
        }
        assert!(ALL.contains(&"serve"), "the serving figure must be listed");
    }
}
