//! Figure 16: overhead of enumerator-based instrumentation vs.
//! performance-counter sampling, for 1–10 predicates (Section 5.7).
//!
//! The enumerator pays a counter update per predicate *evaluation* (work
//! proportional to the data); the PMU pays a fixed readout per sampled
//! vector. Percent overhead over the uninstrumented scan, log scale in
//! the paper.

use popt_core::exec::enumerator::EnumeratedSelection;
use popt_core::exec::scan::CompiledSelection;
use popt_cpu::{CpuConfig, SimCpu};

use crate::common::{banner, fmt, header, parallel_map, row, FigureCtx};
use crate::figures::workload::{uniform_plan, uniform_table};
use crate::note;

/// Tuples per vector for the PMU-sampled variant.
pub const VECTOR_TUPLES: usize = 8_192;

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(ctx, "16", "Overhead: enumerator vs. performance counters");
    let rows = ctx.scale(1 << 19, 1 << 15);
    let max_preds = 10usize;
    let table = uniform_table(rows, max_preds, 0xF1616);

    let counts: Vec<usize> = (1..=max_preds).collect();
    let results = parallel_map(&counts, |&p| {
        // High per-predicate selectivity so deep positions actually run.
        let plan = uniform_plan(&vec![0.9; p]);
        let peo: Vec<usize> = (0..p).collect();

        let plain = CompiledSelection::compile(&table, &plan, &peo).expect("compiles");
        let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
        plain.run_range(&mut cpu, 0, rows);
        let base = cpu.cycles() as f64;

        // PMU variant: identical scan, one counter sample per vector.
        let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
        let mut start = 0;
        while start < rows {
            let end = (start + VECTOR_TUPLES).min(rows);
            plain.run_range(&mut cpu, start, end);
            let _ = cpu.sample();
            start = end;
        }
        let pmu = cpu.cycles() as f64;

        // Enumerator variant: counter update per evaluation.
        let inst = EnumeratedSelection::compile(&table, &plan, &peo).expect("compiles");
        let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
        inst.run_range(&mut cpu, 0, rows);
        let enumerated = cpu.cycles() as f64;

        (
            p,
            (enumerated - base) / base * 100.0,
            (pmu - base) / base * 100.0,
        )
    });

    header(&["predicates", "enumerator_overhead_pct", "papi_overhead_pct"]);
    for (p, enum_pct, pmu_pct) in &results {
        row(&[p.to_string(), fmt(*enum_pct), fmt(*pmu_pct)]);
    }
    let max_enum = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let max_pmu = results.iter().map(|r| r.2).fold(0.0f64, f64::max);
    note!(
        "# max enumerator overhead {}%, max PMU overhead {}% (ratio {}x)",
        fmt(max_enum),
        fmt(max_pmu),
        fmt(max_enum / max_pmu.max(1e-9))
    );
}
