//! Figure 13: Q6 on differently sorted shipdate layouts (Section 5.4).
//!
//! Three data sets — sorted (a), month-clustered (b), random (c) — each
//! swept over the 120 PEOs with the baseline and progressive runs at
//! reoptimization intervals 10, 75, 200. On sorted data short intervals
//! win (the optimal PEO changes between data partitions); on random data
//! the premise "the sampled vector predicts the future" fails and
//! improvements shrink.

use popt_core::progressive::{run_baseline, run_progressive, ProgressiveConfig, VectorConfig};
use popt_core::query::QueryBuilder;
use popt_cpu::{CpuConfig, SimCpu};
use popt_storage::distribution::Layout;
use popt_storage::tpch::{generate_lineitem, TpchConfig};

use crate::common::{banner, fmt, header, parallel_map, row, subsample, FigureCtx};
use crate::note;

/// The reoptimization intervals of the figure.
pub const REOP_INTERVALS: &[usize] = &[10, 75, 200];

/// One sampled PEO's results: baseline millis plus one progressive
/// millis per reoptimization interval.
type PeoRun = (f64, Vec<f64>);

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    banner(
        ctx,
        "13",
        "Q6 on sorted / clustered / random shipdate layouts",
    );
    let rows = ctx.scale(1 << 20, 1 << 17);
    let vector_tuples = ctx.scale(4_096, 2_048);
    let peo_sample = ctx.scale(40, 12);
    let month = TpchConfig::month_window(rows);
    let layouts: Vec<(&str, Layout)> = vec![
        ("(a) sorted", Layout::Sorted),
        ("(b) clustered", Layout::Clustered(month)),
        ("(c) random", Layout::Random),
    ];
    let plan = QueryBuilder::q6_plan();
    let peos = subsample(&plan.all_peos(), peo_sample);
    let vectors = VectorConfig {
        vector_tuples,
        max_vectors: None,
    };

    for (label, layout) in layouts {
        note!("# panel {label}");
        let table = generate_lineitem(&TpchConfig::with_rows(rows).shipdate_layout(layout));
        let runs: Vec<(f64, Vec<f64>)> = parallel_map(&peos, |peo| {
            let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
            let base = run_baseline(&table, &plan, peo, vectors, &mut cpu)
                .expect("baseline runs")
                .millis;
            let mut reops = Vec::new();
            for &reop in REOP_INTERVALS {
                let config = ProgressiveConfig {
                    reop_interval: reop,
                    ..Default::default()
                };
                let mut cpu = SimCpu::new(CpuConfig::xeon_e5_2630_v2());
                reops.push(
                    run_progressive(&table, &plan, peo, vectors, &mut cpu, &config)
                        .expect("progressive runs")
                        .millis,
                );
            }
            (base, reops)
        });
        let mut sorted = runs;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        header(&[
            "permutation_rank",
            "baseline_ms",
            "reop10_ms",
            "reop75_ms",
            "reop200_ms",
        ]);
        for (rank, (base, reops)) in sorted.iter().enumerate() {
            row(&[
                rank.to_string(),
                fmt(*base),
                fmt(reops[0]),
                fmt(reops[1]),
                fmt(reops[2]),
            ]);
        }
        let avg = |f: &dyn Fn(&PeoRun) -> f64| -> f64 {
            sorted.iter().map(f).sum::<f64>() / sorted.len() as f64
        };
        note!(
            "# avg baseline {} ms; avg reop10 {} ms; avg reop75 {} ms; avg reop200 {} ms",
            fmt(avg(&|r| r.0)),
            fmt(avg(&|r| r.1[0])),
            fmt(avg(&|r| r.1[1])),
            fmt(avg(&|r| r.1[2])),
        );
    }
}
