//! Scaling figure (beyond the paper): morsel-driven parallel execution
//! with shared progressive reoptimization.
//!
//! Two workloads, each swept over worker counts:
//!
//! * the Figure-14-style "Mem" workload (expensive selection + fully
//!   random FK probe into an LLC-thrashing dimension), started from the
//!   *worse* static order so the pool has to converge while scaling;
//! * the 3-join star schema (co-clustered customer join + two random
//!   joins + a selection), started from the fully reversed order.
//!
//! Reported per worker count: wall-clock time (the busiest simulated
//! core, optimizer rounds included), speedup over one worker, whether
//! the result is bit-identical to the single-core executor, and whether
//! the pool converged to the same operator order as the serial
//! progressive loop. The speedup column is the headline: morsel
//! dispatch has no barrier, so the only losses are coordination (one
//! estimator round per interval, charged to the core that ran it) and
//! trial morsels (leased to exactly one core).

use popt_core::exec::program::CompiledProgram;
use popt_core::parallel::{run_parallel_program, MorselConfig};
use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::{run_progressive_program, ProgressiveConfig, VectorConfig};
use popt_cpu::{CpuPool, LlcMode, SimCpu};

use crate::common::{banner, fmt, row, FigureCtx};
use crate::figures::fig15::scaled_cpu;
use crate::figures::workload::{
    fig14_mem_tables, mem_tables_with_dim, star_program, star_schema, DOMAIN,
};

/// Worker counts of the sweep.
pub const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

struct SweepPoint {
    workers: usize,
    wall_ms: f64,
    speedup: f64,
    exact: bool,
    final_order: String,
    matches_serial: bool,
}

/// Run one workload's sweep: serial ground truth + progressive
/// reference, then the worker-count scan. `build` must hand back a fresh
/// compiled program in plan order each call; `hot_bytes_per_tuple` sizes
/// the morsels so a worker's hot column data fits its private L2.
fn sweep<'t>(
    build: &dyn Fn() -> CompiledProgram<'t>,
    initial_order: &[usize],
    hot_bytes_per_tuple: usize,
) -> Vec<SweepPoint> {
    let rows = build().rows();
    let morsels = MorselConfig::cache_friendly(&scaled_cpu(), hot_bytes_per_tuple);
    // Single-core executor ground truth (static order — results are
    // order-invariant, so any order gives the reference bits).
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    // Serial progressive reference: the order the §4.4 loop converges to.
    // A coarser interval than the convergence figures use: with N workers
    // sampling concurrently, one interval already fuses several morsels
    // of counters, and each estimator round bills simulated cycles to
    // the core that ran it — reoptimizing every other morsel would put
    // optimization time, not execution, on the critical path.
    let config = ProgressiveConfig {
        reop_interval: 4,
        ..Default::default()
    };
    let mut serial_program = build();
    let mut serial_cpu = SimCpu::new(scaled_cpu());
    let serial = run_progressive_program(
        &mut serial_program,
        initial_order,
        VectorConfig {
            vector_tuples: 4_096,
            max_vectors: None,
        },
        &mut serial_cpu,
        &config,
    )
    .expect("serial progressive runs");

    let mut one_worker_wall = 0u64;
    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut program = build();
            let mut pool = CpuPool::new(scaled_cpu(), workers);
            let report = run_parallel_program(
                &mut program,
                initial_order,
                morsels,
                &mut pool,
                Some(&config),
            )
            .expect("parallel progressive runs");
            if workers == 1 {
                one_worker_wall = report.wall_cycles;
            }
            SweepPoint {
                workers,
                wall_ms: report.millis,
                speedup: report.speedup_over(one_worker_wall),
                exact: report.qualified == expect.qualified && report.sum == expect.sum,
                final_order: format!("{:?}", report.final_order),
                matches_serial: report.final_order == serial.final_peo,
            }
        })
        .collect()
}

fn print_sweep(label: &str, points: &[SweepPoint]) {
    for p in points {
        row(&[
            label.to_string(),
            p.workers.to_string(),
            fmt(p.wall_ms),
            fmt(p.speedup),
            p.exact.to_string(),
            p.final_order.replace(' ', ""),
            p.matches_serial.to_string(),
        ]);
    }
    let four = points
        .iter()
        .find(|p| p.workers == 4)
        .expect("sweep includes 4 workers");
    assert!(
        points.iter().all(|p| p.exact),
        "{label}: parallel result must be bit-identical to the single-core executor"
    );
    assert!(
        four.speedup >= 2.5,
        "{label}: 4-worker speedup {:.2} < 2.5",
        four.speedup
    );
    println!(
        "# {label}: 4-worker speedup {} (>= 2.5: {}), converged to serial order: {}",
        fmt(four.speedup),
        four.speedup >= 2.5,
        four.matches_serial
    );
}

/// One workload's private-vs-shared contention sweep: the same pipeline
/// on a private-LLC pool and on a single shared socket, workers 1→8.
struct ContentionSweep {
    /// 4-worker wall cycles per mode, `[private, shared]`.
    wall_4w: [u64; 2],
    /// 4-worker speedup over the same mode's 1-worker run.
    speedup_4w: [f64; 2],
    exact: bool,
}

/// Sweep a selection + random-join pipeline whose dimension holds
/// `dim_rows` tuples over both LLC modes. The dimension is the knob: a
/// dim that fits the socket but not a contended share thrashes only in
/// shared mode; a dim small enough for the worst share never notices the
/// partition.
fn contention_sweep(label: &str, rows: usize, dim_rows: usize, seed: u64) -> ContentionSweep {
    let (fact, dim) = mem_tables_with_dim(rows, dim_rows, seed);
    let build = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    let mut sweep = ContentionSweep {
        wall_4w: [0; 2],
        speedup_4w: [0.0; 2],
        exact: true,
    };
    for (m, mode) in [LlcMode::Private, LlcMode::Shared].into_iter().enumerate() {
        let mode_label = match mode {
            LlcMode::Private => "private",
            LlcMode::Shared => "shared",
        };
        let mut one_worker_wall = 0u64;
        for &workers in WORKER_COUNTS {
            // Size morsels against the share each core will actually get
            // (equal footprints: the socket splits evenly).
            let full_llc = scaled_cpu().llc().capacity_bytes;
            let share = match mode {
                LlcMode::Private => full_llc,
                LlcMode::Shared => full_llc / workers as u64,
            };
            let morsels = MorselConfig::cache_friendly_for_share(&scaled_cpu(), 12, share);
            let mut program = build();
            let mut pool = CpuPool::with_mode(scaled_cpu(), workers, mode);
            // Baseline (no reopt): the sweep isolates *capacity* effects,
            // and without trial scheduling the interleaved placement
            // makes per-core cycles — and with them every column below —
            // exactly reproducible on any host.
            let report = run_parallel_program(&mut program, &[0, 1], morsels, &mut pool, None)
                .expect("parallel baseline runs");
            if workers == 1 {
                one_worker_wall = report.wall_cycles;
            }
            let speedup = report.speedup_over(one_worker_wall);
            let exact = report.qualified == expect.qualified && report.sum == expect.sum;
            sweep.exact &= exact;
            if workers == 4 {
                sweep.wall_4w[m] = report.wall_cycles;
                sweep.speedup_4w[m] = speedup;
            }
            row(&[
                label.to_string(),
                mode_label.to_string(),
                workers.to_string(),
                (pool.min_effective_llc_bytes() / 1024).to_string(),
                morsels.morsel_tuples.to_string(),
                fmt(report.millis),
                fmt(speedup),
                exact.to_string(),
            ]);
        }
    }
    sweep
}

/// The `--shared-llc` variant: where the private model's near-linear
/// speedup survives the socket and where it breaks.
fn run_shared(ctx: &FigureCtx) {
    banner(
        "scale",
        "Shared-LLC socket: capacity contention vs near-linear scaling",
    );
    let rows = ctx.scale(1 << 20, 1 << 18);
    row(&[
        "workload",
        "llc_mode",
        "workers",
        "llc_share_kib",
        "morsel_tuples",
        "wall_ms",
        "speedup_vs_1w",
        "bit_identical",
    ]);
    // Dimensions sized against the scaled CPU's 128 KiB socket LLC:
    // 24 Ki tuples (96 KiB) fit the socket but thrash a 4-worker share;
    // 2 Ki tuples (8 KiB) fit even the 8-worker share.
    let thrash = contention_sweep("llc-thrash", rows, 24 * 1024, 0x5CA1E);
    let resident = contention_sweep("llc-resident", rows, 2 * 1024, 0x0D1);

    assert!(
        thrash.exact && resident.exact,
        "shared-LLC contention moves cycles, never results"
    );
    let slowdown = |s: &ContentionSweep| (s.wall_4w[1] as f64 / s.wall_4w[0] as f64 - 1.0) * 100.0;
    let (thrash_pct, resident_pct) = (slowdown(&thrash), slowdown(&resident));
    println!(
        "# llc-thrash: shared-socket 4-worker slowdown {}% vs private, speedup {} -> {}",
        fmt(thrash_pct),
        fmt(thrash.speedup_4w[0]),
        fmt(thrash.speedup_4w[1]),
    );
    println!(
        "# llc-resident: shared-socket 4-worker slowdown {}% vs private, speedup {} -> {}",
        fmt(resident_pct),
        fmt(resident.speedup_4w[0]),
        fmt(resident.speedup_4w[1]),
    );
    assert!(
        resident.speedup_4w[1] >= 2.5,
        "cache-resident workload must stay near-linear on the shared socket \
         (got {:.2})",
        resident.speedup_4w[1]
    );
    assert!(
        thrash.speedup_4w[1] < resident.speedup_4w[1],
        "LLC-thrashing speedup {:.2} must fall below cache-resident {:.2}",
        thrash.speedup_4w[1],
        resident.speedup_4w[1]
    );
    assert!(
        thrash_pct >= 10.0,
        "LLC-thrashing workload must pay measurably for the shared socket \
         (got {thrash_pct:.2}%)"
    );
    assert!(
        resident_pct < 5.0,
        "cache-resident workload must not pay for a partition it fits \
         (got {resident_pct:.2}%)"
    );
    println!(
        "# expectation: the partition leaves each of N cores 1/N of the socket; a \
         probed dimension that fits the socket but not the share turns LLC hits \
         into memory misses and sub-linear speedup, while a share-resident \
         working set keeps the private model's near-linear scaling — and results \
         are bit-identical in both modes at every worker count"
    );
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    if ctx.shared_llc {
        run_shared(ctx);
        return;
    }
    banner(
        "scale",
        "Morsel-driven parallel scaling with shared progressive reoptimization",
    );
    // The quick scale stays large enough (64 morsels) that convergence
    // and per-interval optimizer time amortize — with fewer morsels the
    // speedup column measures coordination overhead, not scaling.
    let rows = ctx.scale(1 << 21, 1 << 18);

    row(&[
        "workload",
        "workers",
        "wall_ms",
        "speedup_vs_1w",
        "bit_identical",
        "final_order",
        "matches_serial_order",
    ]);

    // Workload A: selection vs. random join, started join-first (the
    // worse order at "Mem" sortedness).
    let (fact, dim) = fig14_mem_tables(rows, 0x5CA1E);
    let build_fig14 = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    // Hot bytes per tuple: fk + val + dimension probe, 4 B each.
    print_sweep("fig14-mem", &sweep(&build_fig14, &[1, 0], 12));

    // Workload B: the 3-join star schema, started fully reversed (random
    // part and supplier joins first, then the co-clustered customer
    // join, with the cheap selection dead last).
    let star = star_schema(rows, 0x57A12);
    let build_star = || star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    // Hot bytes per tuple: val + 3 FKs + 3 probes + agg, 4 B each.
    print_sweep("star-3join", &sweep(&build_star, &[3, 2, 1, 0], 32));

    println!(
        "# expectation: near-linear speedup (morsel dispatch is barrier-free; the \
         optimizer runs once per interval on one core), identical results at every \
         worker count, and the pool converging to the serial loop's final order — \
         at high worker counts, ties between near-equal tail stages may \
         occasionally resolve into a different near-optimal order (the locality \
         ranking itself, co-clustered join ahead of random joins, always holds)"
    );
}
