//! Scaling figure (beyond the paper): morsel-driven parallel execution
//! with shared progressive reoptimization.
//!
//! Two workloads, each swept over worker counts:
//!
//! * the Figure-14-style "Mem" workload (expensive selection + fully
//!   random FK probe into an LLC-thrashing dimension), started from the
//!   *worse* static order so the pool has to converge while scaling;
//! * the 3-join star schema (co-clustered customer join + two random
//!   joins + a selection), started from the fully reversed order.
//!
//! Reported per worker count: wall-clock time (the busiest simulated
//! core, optimizer rounds included), speedup over one worker, whether
//! the result is bit-identical to the single-core executor, and whether
//! the pool converged to the same operator order as the serial
//! progressive loop. The speedup column is the headline: morsel
//! dispatch has no barrier, so the only losses are coordination (one
//! estimator round per interval, charged to the core that ran it) and
//! trial morsels (leased to exactly one core).

use popt_core::exec::program::CompiledProgram;
use popt_core::parallel::{
    run_parallel_program, run_parallel_program_traced, MorselConfig, MorselDispatcher,
    ParallelReport,
};
use popt_core::plan::{Expr, PlanBuilder};
use popt_core::progressive::{run_progressive_program, ProgressiveConfig, VectorConfig};
use popt_cost::cycles::fleet_occupancy_per_socket;
use popt_cpu::{CpuPool, LlcMode, NumaPlacement, SimCpu};

use crate::common::{
    banner, bench_metric, bench_metric_tol, fmt, header, row, FigureCtx, TraceCapture,
};
use crate::figures::fig15::scaled_cpu;
use crate::figures::workload::{
    fig14_mem_tables, mem_tables_with_dim, numa_banded_tables, numa_two_dim_tables, star_program,
    star_schema, DOMAIN,
};
use crate::note;

/// Worker counts of the sweep.
pub const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Run a parallel program, captured into the figure's trace when
/// `--trace-out` asked for one. Tracing is non-invasive, so every
/// assertion downstream of this helper holds identically either way.
fn run_pool(
    program: &mut CompiledProgram<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    trace: Option<&TraceCapture>,
) -> ParallelReport {
    match trace {
        Some(capture) => run_parallel_program_traced(
            program,
            initial_order,
            morsels,
            pool,
            reopt,
            capture.tracer(),
            capture.next_query(),
        ),
        None => run_parallel_program(program, initial_order, morsels, pool, reopt),
    }
    .expect("parallel run")
}

struct SweepPoint {
    workers: usize,
    wall_ms: f64,
    speedup: f64,
    exact: bool,
    final_order: String,
    matches_serial: bool,
}

/// Run one workload's sweep: serial ground truth + progressive
/// reference, then the worker-count scan. `build` must hand back a fresh
/// compiled program in plan order each call; `hot_bytes_per_tuple` sizes
/// the morsels so a worker's hot column data fits its private L2.
fn sweep<'t>(
    build: &dyn Fn() -> CompiledProgram<'t>,
    initial_order: &[usize],
    hot_bytes_per_tuple: usize,
    trace: Option<&TraceCapture>,
) -> Vec<SweepPoint> {
    let rows = build().rows();
    let morsels = MorselConfig::cache_friendly(&scaled_cpu(), hot_bytes_per_tuple);
    // Single-core executor ground truth (static order — results are
    // order-invariant, so any order gives the reference bits).
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    // Serial progressive reference: the order the §4.4 loop converges to.
    // A coarser interval than the convergence figures use: with N workers
    // sampling concurrently, one interval already fuses several morsels
    // of counters, and each estimator round bills simulated cycles to
    // the core that ran it — reoptimizing every other morsel would put
    // optimization time, not execution, on the critical path.
    let config = ProgressiveConfig {
        reop_interval: 4,
        ..Default::default()
    };
    let mut serial_program = build();
    let mut serial_cpu = SimCpu::new(scaled_cpu());
    let serial = run_progressive_program(
        &mut serial_program,
        initial_order,
        VectorConfig {
            vector_tuples: 4_096,
            max_vectors: None,
        },
        &mut serial_cpu,
        &config,
    )
    .expect("serial progressive runs");

    let mut one_worker_wall = 0u64;
    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut program = build();
            let mut pool = CpuPool::new(scaled_cpu(), workers);
            let report = run_pool(
                &mut program,
                initial_order,
                morsels,
                &mut pool,
                Some(&config),
                trace,
            );
            if workers == 1 {
                one_worker_wall = report.wall_cycles;
            }
            SweepPoint {
                workers,
                wall_ms: report.millis,
                speedup: report.speedup_over(one_worker_wall),
                exact: report.qualified == expect.qualified && report.sum == expect.sum,
                final_order: format!("{:?}", report.final_order),
                matches_serial: report.final_order == serial.final_peo,
            }
        })
        .collect()
}

fn print_sweep(label: &str, points: &[SweepPoint]) {
    for p in points {
        row(&[
            label.to_string(),
            p.workers.to_string(),
            fmt(p.wall_ms),
            fmt(p.speedup),
            p.exact.to_string(),
            p.final_order.replace(' ', ""),
            p.matches_serial.to_string(),
        ]);
    }
    let four = points
        .iter()
        .find(|p| p.workers == 4)
        .expect("sweep includes 4 workers");
    let one = points
        .iter()
        .find(|p| p.workers == 1)
        .expect("sweep includes 1 worker");
    // Regression-gate metrics: the 1-worker wall is a pure function of
    // the simulation (the bit-identity invariant covers workers == 1
    // even under reoptimization) — tight default tolerance; multi-worker
    // speedup is host-elastic under reoptimization — loose tolerance.
    bench_metric(&format!("{label}.wall_ms_1w"), one.wall_ms);
    bench_metric_tol(&format!("{label}.speedup_4w"), four.speedup, 0.35);
    assert!(
        points.iter().all(|p| p.exact),
        "{label}: parallel result must be bit-identical to the single-core executor"
    );
    assert!(
        four.speedup >= 2.5,
        "{label}: 4-worker speedup {:.2} < 2.5",
        four.speedup
    );
    note!(
        "# {label}: 4-worker speedup {} (>= 2.5: {}), converged to serial order: {}",
        fmt(four.speedup),
        four.speedup >= 2.5,
        four.matches_serial
    );
}

/// One workload's private-vs-shared contention sweep: the same pipeline
/// on a private-LLC pool and on a single shared socket, workers 1→8.
struct ContentionSweep {
    /// 4-worker wall cycles per mode, `[private, shared]`.
    wall_4w: [u64; 2],
    /// 4-worker speedup over the same mode's 1-worker run.
    speedup_4w: [f64; 2],
    exact: bool,
}

/// Sweep a selection + random-join pipeline whose dimension holds
/// `dim_rows` tuples over both LLC modes. The dimension is the knob: a
/// dim that fits the socket but not a contended share thrashes only in
/// shared mode; a dim small enough for the worst share never notices the
/// partition.
fn contention_sweep(
    label: &str,
    rows: usize,
    dim_rows: usize,
    seed: u64,
    trace: Option<&TraceCapture>,
) -> ContentionSweep {
    let (fact, dim) = mem_tables_with_dim(rows, dim_rows, seed);
    let build = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    let mut sweep = ContentionSweep {
        wall_4w: [0; 2],
        speedup_4w: [0.0; 2],
        exact: true,
    };
    for (m, mode) in [LlcMode::Private, LlcMode::Shared].into_iter().enumerate() {
        let mode_label = match mode {
            LlcMode::Private => "private",
            LlcMode::Shared => "shared",
        };
        let mut one_worker_wall = 0u64;
        for &workers in WORKER_COUNTS {
            // Size morsels against the share each core will actually get
            // (equal footprints: the socket splits evenly).
            let full_llc = scaled_cpu().llc().capacity_bytes;
            let share = match mode {
                LlcMode::Private => full_llc,
                LlcMode::Shared => full_llc / workers as u64,
            };
            let morsels = MorselConfig::cache_friendly_for_share(&scaled_cpu(), 12, share);
            let mut program = build();
            let mut pool = CpuPool::with_mode(scaled_cpu(), workers, mode);
            // Baseline (no reopt): the sweep isolates *capacity* effects,
            // and without trial scheduling the interleaved placement
            // makes per-core cycles — and with them every column below —
            // exactly reproducible on any host.
            let report = run_pool(&mut program, &[0, 1], morsels, &mut pool, None, trace);
            if workers == 1 {
                one_worker_wall = report.wall_cycles;
            }
            let speedup = report.speedup_over(one_worker_wall);
            let exact = report.qualified == expect.qualified && report.sum == expect.sum;
            sweep.exact &= exact;
            if workers == 4 {
                sweep.wall_4w[m] = report.wall_cycles;
                sweep.speedup_4w[m] = speedup;
            }
            row(&[
                label.to_string(),
                mode_label.to_string(),
                workers.to_string(),
                (pool.min_effective_llc_bytes() / 1024).to_string(),
                morsels.morsel_tuples.to_string(),
                fmt(report.millis),
                fmt(speedup),
                exact.to_string(),
            ]);
        }
    }
    sweep
}

/// The `--shared-llc` variant: where the private model's near-linear
/// speedup survives the socket and where it breaks.
fn run_shared(ctx: &FigureCtx) {
    banner(
        ctx,
        "scale",
        "Shared-LLC socket: capacity contention vs near-linear scaling",
    );
    let rows = ctx.scale(1 << 20, 1 << 18);
    header(&[
        "workload",
        "llc_mode",
        "workers",
        "llc_share_kib",
        "morsel_tuples",
        "wall_ms",
        "speedup_vs_1w",
        "bit_identical",
    ]);
    let capture = TraceCapture::from_ctx(ctx, *WORKER_COUNTS.last().expect("sweep counts"));
    // Dimensions sized against the scaled CPU's 128 KiB socket LLC:
    // 24 Ki tuples (96 KiB) fit the socket but thrash a 4-worker share;
    // 2 Ki tuples (8 KiB) fit even the 8-worker share.
    let thrash = contention_sweep("llc-thrash", rows, 24 * 1024, 0x5CA1E, capture.as_ref());
    let resident = contention_sweep("llc-resident", rows, 2 * 1024, 0x0D1, capture.as_ref());

    assert!(
        thrash.exact && resident.exact,
        "shared-LLC contention moves cycles, never results"
    );
    let slowdown = |s: &ContentionSweep| (s.wall_4w[1] as f64 / s.wall_4w[0] as f64 - 1.0) * 100.0;
    let (thrash_pct, resident_pct) = (slowdown(&thrash), slowdown(&resident));
    note!(
        "# llc-thrash: shared-socket 4-worker slowdown {}% vs private, speedup {} -> {}",
        fmt(thrash_pct),
        fmt(thrash.speedup_4w[0]),
        fmt(thrash.speedup_4w[1]),
    );
    note!(
        "# llc-resident: shared-socket 4-worker slowdown {}% vs private, speedup {} -> {}",
        fmt(resident_pct),
        fmt(resident.speedup_4w[0]),
        fmt(resident.speedup_4w[1]),
    );
    assert!(
        resident.speedup_4w[1] >= 2.5,
        "cache-resident workload must stay near-linear on the shared socket \
         (got {:.2})",
        resident.speedup_4w[1]
    );
    assert!(
        thrash.speedup_4w[1] < resident.speedup_4w[1],
        "LLC-thrashing speedup {:.2} must fall below cache-resident {:.2}",
        thrash.speedup_4w[1],
        resident.speedup_4w[1]
    );
    assert!(
        thrash_pct >= 10.0,
        "LLC-thrashing workload must pay measurably for the shared socket \
         (got {thrash_pct:.2}%)"
    );
    assert!(
        resident_pct < 5.0,
        "cache-resident workload must not pay for a partition it fits \
         (got {resident_pct:.2}%)"
    );
    note!(
        "# expectation: the partition leaves each of N cores 1/N of the socket; a \
         probed dimension that fits the socket but not the share turns LLC hits \
         into memory misses and sub-linear speedup, while a share-resident \
         working set keeps the private model's near-linear scaling — and results \
         are bit-identical in both modes at every worker count"
    );
    if let Some(capture) = &capture {
        capture.write();
    }
}

/// One printed row of the NUMA study: per-socket occupancy and accepted
/// orders are `|`-joined so each socket gets a column slot.
fn numa_row(
    experiment: &str,
    placement: &str,
    report: &ParallelReport,
    sockets: usize,
    exact: bool,
) {
    let occ: Vec<String> = fleet_occupancy_per_socket(&report.per_worker_cycles, sockets)
        .iter()
        .map(|&o| fmt(o))
        .collect();
    let orders: Vec<String> = report
        .socket_orders
        .iter()
        .map(|o| format!("{o:?}").replace(' ', ""))
        .collect();
    row(&[
        experiment.to_string(),
        placement.to_string(),
        report.workers.to_string(),
        fmt(report.millis),
        fmt(report.remote_access_pct),
        occ.join("|"),
        orders.join("|"),
        exact.to_string(),
    ]);
}

/// The `--sockets N` variant: remote-access pricing on the NUMA pool.
///
/// Two experiments:
///
/// * **affinity** — a remote-heavy workload (banded-random FK probes
///   into an LLC-thrashing dimension) run twice: with the OS-default
///   line-interleaved homing, and with every fact band and its matching
///   dimension slice pinned to the socket whose workers claim it. The
///   same morsels touch the same addresses in both runs; only the home
///   sockets differ, so the wall-clock gap is purely the remote
///   surcharge the affinity pin removes.
/// * **divergence** — two cost-symmetric random joins whose dimensions
///   are homed on *different* sockets, progressive reoptimization on.
///   Each socket's loop should converge to probing its local dimension
///   first: the published per-socket orders end up different while
///   results stay bit-identical to the single-core executor.
fn run_numa(ctx: &FigureCtx) {
    let sockets = ctx.sockets;
    banner(
        ctx,
        "scale",
        "NUMA pool: affinity-pinned placement vs interleave, per-socket order divergence",
    );
    let rows = ctx.scale(1 << 20, 1 << 18);
    let workers = 4.max(sockets);
    let capture = TraceCapture::from_ctx(ctx, workers);
    header(&[
        "experiment",
        "placement",
        "workers",
        "wall_ms",
        "remote_access_pct",
        "occ_per_socket",
        "socket_orders",
        "bit_identical",
    ]);

    // --- Experiment A: affinity-pinned vs interleaved placement. ---
    // The dimension matches the fact in row count, so each socket's band
    // is `4 * rows / sockets` bytes — far past the 128 KiB scaled LLC,
    // which keeps the banded-random probes memory-served (an LLC hit
    // never pays the remote surcharge, so a cache-resident dim would
    // show no placement effect at all).
    let morsels = MorselConfig::cache_friendly(&scaled_cpu(), 12);
    let bands: Vec<(usize, usize)> = {
        let d = MorselDispatcher::with_affinity(rows, morsels.morsel_tuples, workers, sockets)
            .expect("affinity dispatcher");
        (0..sockets).map(|s| d.socket_row_range(s)).collect()
    };
    let dim_n = rows;
    let (fact, dim) = numa_banded_tables(rows, dim_n, &bands, 0x0AFF1);
    let build = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    let mut static_cpu = SimCpu::new(scaled_cpu());
    let expect = build().run_range(&mut static_cpu, 0, rows);

    // Pin each fact band — and the dimension slice its FKs address — to
    // the socket whose workers the affinity dispatcher hands that band.
    let mut pinned = NumaPlacement::interleaved(sockets);
    for (s, &(r0, r1)) in bands.iter().enumerate() {
        for col in ["fk", "val"] {
            let c = fact.column(col).expect("fact column");
            pinned.register(c.base_addr() + 4 * r0 as u64, 4 * (r1 - r0) as u64, s);
        }
        let (d0, d1) = (r0 * dim_n / rows, r1 * dim_n / rows);
        let c = dim.column("payload").expect("dim payload");
        pinned.register(c.base_addr() + 4 * d0 as u64, 4 * (d1 - d0) as u64, s);
    }

    // Static order, no reopt: the A/B pair isolates *placement*.
    let run_placement = |label: &str, placement: Option<&NumaPlacement>| {
        let mut program = build();
        let mut pool = CpuPool::with_topology(scaled_cpu(), workers, LlcMode::Private, sockets);
        if let Some(p) = placement {
            pool.set_placement(p);
        }
        let report = run_pool(
            &mut program,
            &[0, 1],
            morsels,
            &mut pool,
            None,
            capture.as_ref(),
        );
        let exact = report.qualified == expect.qualified && report.sum == expect.sum;
        numa_row("affinity", label, &report, sockets, exact);
        assert!(
            exact,
            "affinity/{label}: NUMA placement moves cycles, never results"
        );
        report
    };
    let interleave = run_placement("interleave", None);
    let pin = run_placement("pinned", Some(&pinned));

    let margin = (interleave.wall_cycles as f64 / pin.wall_cycles as f64 - 1.0) * 100.0;
    note!(
        "# affinity: pinned placement beats interleave by {}% wall clock \
         (remote accesses {}% -> {}%)",
        fmt(margin),
        fmt(interleave.remote_access_pct),
        fmt(pin.remote_access_pct),
    );
    assert!(
        pin.remote_access_pct < interleave.remote_access_pct,
        "pinning the bands must cut remote accesses ({} -> {})",
        interleave.remote_access_pct,
        pin.remote_access_pct
    );
    assert!(
        margin >= 5.0,
        "affinity-pinned placement must beat interleave by >= 5% on the \
         remote-heavy workload (got {margin:.2}%)"
    );

    // --- Experiment B: per-socket order divergence. ---
    // Both joins are the same size, selectivity and access pattern; the
    // only asymmetry is *where* the dimensions live. `dim_a` is homed on
    // socket 0, `dim_b` on socket 1, so each socket's remote-adjusted
    // Equation 1 ranks its local probe cheaper.
    let morsels_b = MorselConfig::cache_friendly(&scaled_cpu(), 16);
    let bands_b: Vec<(usize, usize)> = {
        let d = MorselDispatcher::with_affinity(rows, morsels_b.morsel_tuples, workers, sockets)
            .expect("affinity dispatcher");
        (0..sockets).map(|s| d.socket_row_range(s)).collect()
    };
    let dim_n_b = rows / 2;
    let (fact_b, dim_a, dim_b) = numa_two_dim_tables(rows, dim_n_b, 0x0D1F2);
    let build_b = || {
        PlanBuilder::scan(&fact_b)
            .join(&dim_a, "fk_a", Expr::col("payload_a").less_than(DOMAIN / 2))
            .join(&dim_b, "fk_b", Expr::col("payload_b").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-join program")
    };
    let mut static_cpu_b = SimCpu::new(scaled_cpu());
    let expect_b = build_b().run_range(&mut static_cpu_b, 0, rows);

    let mut homes = NumaPlacement::interleaved(sockets);
    for (s, &(r0, r1)) in bands_b.iter().enumerate() {
        for col in ["fk_a", "fk_b"] {
            let c = fact_b.column(col).expect("fact column");
            homes.register(c.base_addr() + 4 * r0 as u64, 4 * (r1 - r0) as u64, s);
        }
    }
    let ca = dim_a.column("payload_a").expect("dim_a payload");
    homes.register(ca.base_addr(), 4 * dim_n_b as u64, 0);
    let cb = dim_b.column("payload_b").expect("dim_b payload");
    homes.register(cb.base_addr(), 4 * dim_n_b as u64, 1);

    let config = ProgressiveConfig {
        reop_interval: 4,
        ..Default::default()
    };
    let mut program_b = build_b();
    let mut pool = CpuPool::with_topology(scaled_cpu(), workers, LlcMode::Private, sockets);
    pool.set_placement(&homes);
    let report_b = run_pool(
        &mut program_b,
        &[0, 1],
        morsels_b,
        &mut pool,
        Some(&config),
        capture.as_ref(),
    );
    let exact_b = report_b.qualified == expect_b.qualified && report_b.sum == expect_b.sum;
    numa_row("divergence", "dim-homed", &report_b, sockets, exact_b);
    note!(
        "# divergence: per-socket accepted orders {}",
        report_b
            .socket_orders
            .iter()
            .map(|o| format!("{o:?}").replace(' ', ""))
            .collect::<Vec<_>>()
            .join(" | "),
    );
    assert!(
        exact_b,
        "divergence: per-socket orders move cycles, never results"
    );
    assert_eq!(
        report_b.socket_orders[0][0], 0,
        "socket 0 must probe its local dim_a first"
    );
    assert_eq!(
        report_b.socket_orders[1][0], 1,
        "socket 1 must converge to probing its local dim_b first"
    );

    note!(
        "# expectation: pinning morsel bands and their dimension slices to the \
         claiming socket removes the remote-access surcharge the interleaved \
         default pays (the same addresses are touched either way — only the \
         homes differ), and with reoptimization on, sockets whose placements \
         price the same dims differently publish *different* accepted orders, \
         each probing its local dimension first — results bit-identical to the \
         single-core executor throughout"
    );
    if let Some(capture) = &capture {
        capture.write();
    }
}

/// Run the figure.
pub fn run(ctx: &FigureCtx) {
    if ctx.sockets > 1 {
        run_numa(ctx);
        return;
    }
    if ctx.shared_llc {
        run_shared(ctx);
        return;
    }
    banner(
        ctx,
        "scale",
        "Morsel-driven parallel scaling with shared progressive reoptimization",
    );
    // The quick scale stays large enough (64 morsels) that convergence
    // and per-interval optimizer time amortize — with fewer morsels the
    // speedup column measures coordination overhead, not scaling.
    let rows = ctx.scale(1 << 21, 1 << 18);

    header(&[
        "workload",
        "workers",
        "wall_ms",
        "speedup_vs_1w",
        "bit_identical",
        "final_order",
        "matches_serial_order",
    ]);

    // Workload A: selection vs. random join, started join-first (the
    // worse order at "Mem" sortedness).
    let (fact, dim) = fig14_mem_tables(rows, 0x5CA1E);
    let build_fig14 = || {
        PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(DOMAIN / 2), 50)
            .join(&dim, "fk", Expr::col("payload").less_than(DOMAIN / 2))
            .build()
            .optimize()
            .compile()
            .expect("plan lowers to a two-stage program")
    };
    let capture = TraceCapture::from_ctx(ctx, *WORKER_COUNTS.last().expect("sweep counts"));
    // Hot bytes per tuple: fk + val + dimension probe, 4 B each.
    print_sweep(
        "fig14-mem",
        &sweep(&build_fig14, &[1, 0], 12, capture.as_ref()),
    );

    // Workload B: the 3-join star schema, started fully reversed (random
    // part and supplier joins first, then the co-clustered customer
    // join, with the cheap selection dead last).
    let star = star_schema(rows, 0x57A12);
    let build_star = || star_program(&star, Some(0.5), [0.5, 0.5, 0.5]);
    // Hot bytes per tuple: val + 3 FKs + 3 probes + agg, 4 B each.
    print_sweep(
        "star-3join",
        &sweep(&build_star, &[3, 2, 1, 0], 32, capture.as_ref()),
    );

    note!(
        "# expectation: near-linear speedup (morsel dispatch is barrier-free; the \
         optimizer runs once per interval on one core), identical results at every \
         worker count, and the pool converging to the serial loop's final order — \
         at high worker counts, ties between near-equal tail stages may \
         occasionally resolve into a different near-optimal order (the locality \
         ranking itself, co-clustered join ahead of random joins, always holds)"
    );
    if let Some(capture) = &capture {
        capture.write();
    }
}
