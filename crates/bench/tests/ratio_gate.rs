//! Release-mode host-speed ratio gate: the batched fast path must beat
//! the scalar per-event oracle by at least 3x on the single-predicate
//! scan microbench (the shape where the closed-form line accounting
//! applies in full).
//!
//! The assertion is a *ratio* measured within one process — both sides
//! see the same machine, load, and frequency — so it is far more stable
//! than any absolute wall-clock bound. Still, it is host timing, so the
//! test is `#[ignore]`d by default and CI runs it explicitly in release
//! (`cargo test --release -p popt-bench --test ratio_gate -- --ignored`);
//! a debug-mode run would gate nothing but noise.

use std::time::Instant;

use popt_bench::figures::fig14::scaled_cpu;
use popt_bench::figures::workload::xorshift64;
use popt_core::exec::scan::CompiledSelection;
use popt_core::plan::SelectionPlan;
use popt_core::predicate::{CompareOp, Predicate};
use popt_cpu::SimCpu;
use popt_storage::{AddressSpace, ColumnData, Table};

const ROWS: usize = 1 << 21;
const REPEATS: usize = 5;
const MIN_RATIO: f64 = 3.0;

#[test]
#[ignore = "host-timing gate; CI runs it in release via -- --ignored"]
fn batched_scan_is_at_least_3x_scalar_oracle() {
    let mut state = 0x5EEDu64;
    let val: Vec<i32> = (0..ROWS)
        .map(|_| (xorshift64(&mut state) % 1000) as i32)
        .collect();
    let mut space = AddressSpace::new();
    let mut table = Table::new("t");
    table.add_column("val", ColumnData::I32(val), &mut space);
    let plan = SelectionPlan::new(vec![Predicate::new("val", CompareOp::Lt, 500)], vec![])
        .expect("scan plan");
    let mut compiled = CompiledSelection::compile(&table, &plan, &[0]).expect("scan compiles");

    let mut best = |oracle: bool| {
        compiled.set_scalar_oracle(oracle);
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..REPEATS {
            let mut cpu = SimCpu::new(scaled_cpu());
            let t0 = Instant::now();
            let stats = compiled.run_range(&mut cpu, 0, ROWS);
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some((stats, cpu.counters()));
        }
        (best, out.expect("at least one repeat"))
    };
    let (fast_s, fast_out) = best(false);
    let (slow_s, slow_out) = best(true);

    assert_eq!(fast_out, slow_out, "fast path diverged from the oracle");
    let ratio = slow_s / fast_s;
    println!(
        "batched {:.2} ns/row, scalar oracle {:.2} ns/row, ratio {ratio:.2}x (gate {MIN_RATIO}x)",
        fast_s * 1e9 / ROWS as f64,
        slow_s * 1e9 / ROWS as f64,
    );
    assert!(
        ratio >= MIN_RATIO,
        "batched fast path is only {ratio:.2}x the scalar oracle (need >= {MIN_RATIO}x)"
    );
}
