//! Value layout and distribution utilities.
//!
//! Sections 5.4–5.5 of the paper study progressive optimization under
//! different *physical layouts* of the same logical data: fully sorted,
//! clustered (Knuth-shuffled within a bounded window — "within the time
//! frame of a month"), and fully random. Figure 14 generalizes the window
//! to a sweep from one tuple up to "Mem" (unbounded). This module provides
//! those layouts plus Zipf skew and correlated pair generation (Section
//! 4.5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Physical layout of an otherwise ordered value sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Ascending order.
    Sorted,
    /// Knuth shuffle constrained to a window of the given number of tuples:
    /// every value ends up within roughly `window` positions of its sorted
    /// position. `Clustered(1)` equals `Sorted`.
    Clustered(usize),
    /// Unconstrained Knuth (Fisher–Yates) shuffle.
    Random,
}

impl Layout {
    /// Human-readable label used by the figure harness (matches the x-axis
    /// labels of Figure 14: `1T`, `CL`, `100T`, `1KT`, `L1`, `L2`, `L3`,
    /// `Mem`).
    pub fn label(&self) -> String {
        match self {
            Layout::Sorted => "sorted".into(),
            Layout::Clustered(w) => format!("clustered({w})"),
            Layout::Random => "random".into(),
        }
    }
}

/// Apply `layout` to `data` in place, deterministically from `seed`.
pub fn apply_layout<T>(data: &mut [T], layout: Layout, seed: u64) {
    match layout {
        Layout::Sorted | Layout::Clustered(0) | Layout::Clustered(1) => {}
        Layout::Clustered(window) => knuth_shuffle_window(data, window, seed),
        Layout::Random => knuth_shuffle(data, seed),
    }
}

/// Unconstrained Fisher–Yates ("Knuth") shuffle.
pub fn knuth_shuffle<T>(data: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        data.swap(i, j);
    }
}

/// Knuth shuffle restricted to a window: the data is partitioned into
/// consecutive blocks of `window` tuples and each block is Fisher–Yates
/// shuffled independently. Displacement is strictly bounded by the window
/// size, producing the "clustered" data sets of Sections 5.4–5.5 ("we
/// shuffle lineitems based on the shipdate column within the time frame of
/// a month").
pub fn knuth_shuffle_window<T>(data: &mut [T], window: usize, seed: u64) {
    assert!(window >= 1, "window must be at least one tuple");
    let mut rng = StdRng::seed_from_u64(seed);
    for block in data.chunks_mut(window) {
        let n = block.len();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            block.swap(i, j);
        }
    }
}

/// Draw `n` samples from a Zipf distribution over `1..=universe` with
/// exponent `theta` (θ = 0 is uniform; θ ≈ 1 is classic Zipf), using
/// inverse-CDF sampling over precomputed cumulative weights.
///
/// Used to generate the skewed value distributions of Section 4.5.
pub fn zipf(n: usize, universe: u32, theta: f64, seed: u64) -> Vec<i32> {
    assert!(universe >= 1);
    assert!(theta >= 0.0);
    let mut cdf = Vec::with_capacity(universe as usize);
    let mut acc = 0.0f64;
    for k in 1..=universe {
        acc += 1.0 / f64::from(k).powf(theta);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            // Binary search for the first cumulative weight >= u.
            let idx = cdf.partition_point(|&c| c < u);
            (idx as i32) + 1
        })
        .collect()
}

/// Generate a pair of correlated columns: `b[i] = a[i] + noise` where noise
/// is uniform in `±noise_span`. With `noise_span = 0` the columns are
/// perfectly correlated; large spans decorrelate them. Exercises the
/// correlation hazard of Section 4.5 (predicates on `a` and `b` are *not*
/// independent).
pub fn correlated_pair(n: usize, domain: u32, noise_span: u32, seed: u64) -> (Vec<i32>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    for _ in 0..n {
        let x = rng.gen_range(0..domain as i32);
        let noise = if noise_span == 0 {
            0
        } else {
            rng.gen_range(-(noise_span as i32)..=noise_span as i32)
        };
        a.push(x);
        b.push((x + noise).clamp(0, domain as i32 - 1));
    }
    (a, b)
}

/// Maximum absolute displacement of any element from its position in the
/// sorted order (a direct measure of "sortedness" for tests).
pub fn max_displacement(data: &[i32]) -> usize {
    let mut sorted: Vec<(i32, usize)> = data.iter().copied().zip(0..).collect();
    sorted.sort_by_key(|&(v, i)| (v, i));
    // For duplicate values, matching by stable rank gives the minimal
    // displacement interpretation.
    let mut max = 0usize;
    for (rank, &(_, original_idx)) in sorted.iter().enumerate() {
        max = max.max(rank.abs_diff(original_idx));
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<i32> = (0..1000).collect();
        knuth_shuffle(&mut v, 42);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn window_shuffle_bounds_displacement() {
        let mut v: Vec<i32> = (0..10_000).collect();
        knuth_shuffle_window(&mut v, 64, 7);
        // Block-local shuffling bounds displacement by the window size.
        assert!(max_displacement(&v) < 64, "d = {}", max_displacement(&v));
        assert!(max_displacement(&v) > 0, "shuffle did nothing");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn window_one_is_identity() {
        let mut v: Vec<i32> = (0..100).collect();
        knuth_shuffle_window(&mut v, 1, 3);
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn layout_sorted_is_identity() {
        let mut v: Vec<i32> = (0..50).collect();
        apply_layout(&mut v, Layout::Sorted, 1);
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a: Vec<i32> = (0..500).collect();
        let mut b: Vec<i32> = (0..500).collect();
        knuth_shuffle(&mut a, 9);
        knuth_shuffle(&mut b, 9);
        assert_eq!(a, b);
        let mut c: Vec<i32> = (0..500).collect();
        knuth_shuffle(&mut c, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skews_towards_small_values() {
        let samples = zipf(100_000, 100, 1.0, 5);
        let ones = samples.iter().filter(|&&v| v == 1).count();
        let hundreds = samples.iter().filter(|&&v| v == 100).count();
        assert!(
            ones > 50 * hundreds.max(1),
            "ones={ones} hundreds={hundreds}"
        );
        assert!(samples.iter().all(|&v| (1..=100).contains(&v)));
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let samples = zipf(100_000, 10, 0.0, 5);
        for k in 1..=10 {
            let c = samples.iter().filter(|&&v| v == k).count();
            assert!((8_000..12_000).contains(&c), "value {k}: {c}");
        }
    }

    #[test]
    fn correlated_pair_tracks() {
        let (a, b) = correlated_pair(10_000, 1000, 0, 3);
        assert_eq!(a, b);
        let (a, b) = correlated_pair(10_000, 1000, 10, 3);
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x - y).unsigned_abs())
            .max()
            .unwrap();
        assert!(max_diff <= 10);
    }

    #[test]
    fn max_displacement_of_sorted_is_zero() {
        let v: Vec<i32> = (0..100).collect();
        assert_eq!(max_displacement(&v), 0);
    }

    #[test]
    fn max_displacement_of_reversed_is_n_minus_one() {
        let v: Vec<i32> = (0..100).rev().collect();
        assert_eq!(max_displacement(&v), 99);
    }
}
