//! Tables: named collections of equal-length columns.

use crate::addr::AddressSpace;
use crate::column::{Column, ColumnData};

/// A relation stored column-wise.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Create an empty table (columns added via [`Table::add_column`]).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a column; all columns must have the same length.
    ///
    /// # Panics
    /// If the column length disagrees with the existing rows, or the name
    /// is already taken.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        data: ColumnData,
        space: &mut AddressSpace,
    ) -> usize {
        let name = name.into();
        assert!(
            self.column(&name).is_none(),
            "duplicate column name {name:?} in table {:?}",
            self.name
        );
        if self.columns.is_empty() {
            self.rows = data.len();
        } else {
            assert_eq!(
                data.len(),
                self.rows,
                "column {name:?} length mismatch in table {:?}",
                self.name
            );
        }
        self.columns.push(Column::new(name, data, space));
        self.columns.len() - 1
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// All columns, in insertion order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Column by positional index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Total payload bytes across all columns.
    pub fn bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.len() as u64 * u64::from(c.width()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1, 2, 3]), &mut space);
        t.add_column("b", ColumnData::I32(vec![4, 5, 6]), &mut space);
        t
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = two_col_table();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("a").unwrap().get(2), 3);
        assert_eq!(t.column_index("b"), Some(1));
        assert!(t.column("z").is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_length_rejected() {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1]), &mut space);
        t.add_column("b", ColumnData::I32(vec![1, 2]), &mut space);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_name_rejected() {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1]), &mut space);
        t.add_column("a", ColumnData::I32(vec![2]), &mut space);
    }

    #[test]
    fn bytes_sums_columns() {
        let t = two_col_table();
        assert_eq!(t.bytes(), 24);
    }
}
