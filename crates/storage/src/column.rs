//! Typed, fixed-width columns with simulated physical placement.

use crate::addr::AddressSpace;

/// The value buffer of a column.
///
/// The engine's hot loops specialize on the 32-bit layout (all TPC-H Q6
/// attributes fit after dictionary/scale encoding, Section 2.1 notes the
/// date→timestamp rewrite for the same reason); 64-bit columns exist for
/// wide keys and aggregates.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 4-byte signed integers (dates as day numbers, scaled decimals, keys).
    I32(Vec<i32>),
    /// 8-byte signed integers.
    I64(Vec<i64>),
}

impl ColumnData {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of one value in bytes.
    pub fn width(&self) -> u32 {
        match self {
            ColumnData::I32(_) => 4,
            ColumnData::I64(_) => 8,
        }
    }

    /// Read one value widened to `i64`.
    #[inline]
    pub fn get(&self, idx: usize) -> i64 {
        match self {
            ColumnData::I32(v) => i64::from(v[idx]),
            ColumnData::I64(v) => v[idx],
        }
    }

    /// Borrow the raw `i32` buffer, if this is a 32-bit column.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            ColumnData::I32(v) => Some(v),
            ColumnData::I64(_) => None,
        }
    }

    /// Borrow the raw `i64` buffer, if this is a 64-bit column.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            ColumnData::I64(v) => Some(v),
            ColumnData::I32(_) => None,
        }
    }
}

/// A named column placed in the simulated address space.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
    base_addr: u64,
}

impl Column {
    /// Create a column and allocate its address range from `space`.
    pub fn new(name: impl Into<String>, data: ColumnData, space: &mut AddressSpace) -> Self {
        let bytes = data.len() as u64 * u64::from(data.width());
        let base_addr = space.alloc(bytes);
        Self {
            name: name.into(),
            data,
            base_addr,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Width of one value in bytes.
    pub fn width(&self) -> u32 {
        self.data.width()
    }

    /// The value buffer.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Base of the simulated address range.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Simulated address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.base_addr + idx as u64 * u64::from(self.data.width())
    }

    /// Read one value widened to `i64`.
    #[inline]
    pub fn get(&self, idx: usize) -> i64 {
        self.data.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_lengths() {
        let d32 = ColumnData::I32(vec![1, 2, 3]);
        let d64 = ColumnData::I64(vec![1, 2]);
        assert_eq!(d32.width(), 4);
        assert_eq!(d64.width(), 8);
        assert_eq!(d32.len(), 3);
        assert_eq!(d64.len(), 2);
        assert!(!d32.is_empty());
    }

    #[test]
    fn get_widens() {
        let d = ColumnData::I32(vec![-5, 7]);
        assert_eq!(d.get(0), -5);
        assert_eq!(d.get(1), 7);
    }

    #[test]
    fn addresses_are_contiguous_per_column() {
        let mut space = AddressSpace::new();
        let c = Column::new("x", ColumnData::I32(vec![0; 100]), &mut space);
        assert_eq!(c.addr_of(1) - c.addr_of(0), 4);
        assert_eq!(c.addr_of(99), c.base_addr() + 396);
    }

    #[test]
    fn two_columns_never_overlap() {
        let mut space = AddressSpace::new();
        let a = Column::new("a", ColumnData::I32(vec![0; 1000]), &mut space);
        let b = Column::new("b", ColumnData::I32(vec![0; 1000]), &mut space);
        let a_end = a.addr_of(999) + 4;
        assert!(b.base_addr() >= a_end);
    }

    #[test]
    fn slice_borrows() {
        let d = ColumnData::I32(vec![9, 8]);
        assert_eq!(d.as_i32().unwrap(), &[9, 8]);
        assert!(d.as_i64().is_none());
    }
}
