//! Exact data statistics, used as ground truth by tests and experiments.
//!
//! The paper's whole point is that these numbers are *not* available to the
//! optimizer at compile time; the estimator must recover them from
//! performance counters. The figure harness and the test suite use this
//! module to (a) plant predicates with known selectivities and (b) measure
//! how close the counter-based estimates come.

use crate::column::ColumnData;

/// Fraction of values satisfying `pred` (exact scan).
pub fn selectivity(data: &ColumnData, pred: impl Fn(i64) -> bool) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let hits = count(data, pred);
    hits as f64 / data.len() as f64
}

/// Number of values satisfying `pred` (exact scan).
pub fn count(data: &ColumnData, pred: impl Fn(i64) -> bool) -> usize {
    match data {
        ColumnData::I32(v) => v.iter().filter(|&&x| pred(i64::from(x))).count(),
        ColumnData::I64(v) => v.iter().filter(|&&x| pred(x)).count(),
    }
}

/// The `q`-quantile value of the column (0 ≤ q ≤ 1): the smallest value `v`
/// such that at least `q·n` values are ≤ `v`.
pub fn quantile(data: &ColumnData, q: f64) -> i64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    assert!(!data.is_empty(), "quantile of empty column");
    let mut values: Vec<i64> = match data {
        ColumnData::I32(v) => v.iter().map(|&x| i64::from(x)).collect(),
        ColumnData::I64(v) => v.clone(),
    };
    values.sort_unstable();
    let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
    values[idx]
}

/// Minimum and maximum value of the column.
pub fn min_max(data: &ColumnData) -> (i64, i64) {
    assert!(!data.is_empty(), "min_max of empty column");
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for i in 0..data.len() {
        let v = data.get(i);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> ColumnData {
        ColumnData::I32((0..100).collect())
    }

    #[test]
    fn selectivity_counts_fraction() {
        let c = col();
        assert!((selectivity(&c, |v| v < 25) - 0.25).abs() < 1e-12);
        assert_eq!(count(&c, |v| v >= 90), 10);
    }

    #[test]
    fn quantile_inverts_selectivity() {
        let c = col();
        let v = quantile(&c, 0.3);
        assert!((selectivity(&c, |x| x <= v) - 0.3).abs() < 0.011);
    }

    #[test]
    fn quantile_extremes() {
        let c = col();
        assert_eq!(quantile(&c, 1.0), 99);
        assert_eq!(quantile(&c, 0.0), 0);
    }

    #[test]
    fn min_max_of_known_column() {
        let c = ColumnData::I64(vec![5, -3, 12]);
        assert_eq!(min_max(&c), (-3, 12));
    }

    #[test]
    fn empty_selectivity_is_zero() {
        let c = ColumnData::I32(vec![]);
        assert_eq!(selectivity(&c, |_| true), 0.0);
    }
}
