//! Simulated physical address space.
//!
//! Every column receives a disjoint, cache-line-pair-aligned address range
//! so the `popt-cpu` hierarchy observes the same set-index distribution and
//! prefetch behaviour a real columnar layout would. Allocations are padded
//! with a guard gap so the adjacent-line prefetcher never strays from one
//! column into the next.

/// Bump allocator over a simulated 64-bit physical address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    alignment: u64,
    guard_bytes: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Conventional base: skip the zero page.
    const BASE: u64 = 0x1_0000;

    /// A space with 128-byte alignment (one adjacent-line prefetch pair)
    /// and a 4 KiB guard gap between allocations.
    pub fn new() -> Self {
        Self {
            next: Self::BASE,
            alignment: 128,
            guard_bytes: 4096,
        }
    }

    /// Allocate `bytes` and return the base address of the range.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        debug_assert_eq!(base % self.alignment, 0);
        let end = base + bytes + self.guard_bytes;
        self.next = end.next_multiple_of(self.alignment);
        base
    }

    /// Total bytes handed out so far (including guard gaps).
    pub fn used(&self) -> u64 {
        self.next - Self::BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let x = a.alloc(1000);
        let y = a.alloc(1000);
        assert_eq!(x % 128, 0);
        assert_eq!(y % 128, 0);
        assert!(y >= x + 1000 + 4096, "guard gap missing: {x} {y}");
    }

    #[test]
    fn base_skips_zero_page() {
        let mut a = AddressSpace::new();
        assert!(a.alloc(1) >= 0x1_0000);
    }

    #[test]
    fn used_tracks_growth() {
        let mut a = AddressSpace::new();
        assert_eq!(a.used(), 0);
        a.alloc(64);
        let u1 = a.used();
        a.alloc(64);
        assert!(a.used() > u1);
    }
}
