//! A from-scratch TPC-H-style data generator.
//!
//! Generates the three tables the paper's evaluation touches —
//! `lineitem`, `orders`, `part` (Sections 5.1–5.6) — with the schema
//! reduced to the attributes the experiments read. Key properties are
//! preserved from `dbgen`:
//!
//! * `lineitem` and `orders` are **co-clustered**: lineitems of one order
//!   are adjacent and orderkeys ascend with the row index, so the FK access
//!   pattern into `orders` is near-sequential (the effect behind Figure 15);
//! * `part` keys are **random**, so the FK access pattern into `part`
//!   thrashes the cache;
//! * `l_shipdate` is **weakly clustered** by default ("real life databases
//!   are bulk loaded and, hence, weakly clustered on the date column",
//!   Section 1) with the layout selectable per Figure 13;
//! * value domains are dictionary/scale encoded into `i32` (dates as day
//!   numbers, discounts as percents), mirroring the paper's date→timestamp
//!   rewrite that avoids string comparisons (Section 2.1).
//!
//! Scale is expressed directly in lineitem rows rather than TPC-H SF; the
//! paper's SF 100 (≈600 M rows) shrinks to a laptop-scale default without
//! affecting plan rankings (see DESIGN.md, substitutions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::AddressSpace;
use crate::column::ColumnData;
use crate::distribution::{apply_layout, Layout};
use crate::table::Table;

/// Span of the shipdate domain in days (1992-01-01 .. ≈1998-12-01).
pub const SHIPDATE_DAYS: i32 = 2526;
/// Number of days in the "month" clustering window of Section 5.4.
pub const DAYS_PER_MONTH: i32 = 30;
/// Quantity domain is `1..=50`.
pub const QUANTITY_MAX: i32 = 50;
/// Discount domain is `0..=10` percent.
pub const DISCOUNT_MAX: i32 = 10;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of lineitem rows.
    pub lineitem_rows: usize,
    /// Average lineitems per order (TPC-H: 4).
    pub lineitems_per_order: usize,
    /// Number of parts (TPC-H ratio: lineitems / 30).
    pub parts: usize,
    /// Physical layout of `l_shipdate`.
    pub shipdate_layout: Layout,
    /// RNG seed; every run with the same config yields identical data.
    pub seed: u64,
}

impl TpchConfig {
    /// Laptop-scale default: ~4.2 M lineitems, weakly (month-)clustered
    /// shipdates — the "common case" configuration of Section 5.2.
    pub fn default_scale() -> Self {
        Self::with_rows(1 << 22)
    }

    /// Small configuration for tests and examples (~260 k rows).
    pub fn small() -> Self {
        Self::with_rows(1 << 18)
    }

    /// Tiny configuration for unit tests (~16 k rows).
    pub fn tiny() -> Self {
        Self::with_rows(1 << 14)
    }

    /// A configuration with the given lineitem row count and the default
    /// month-clustered shipdate layout.
    pub fn with_rows(rows: usize) -> Self {
        let month_window = Self::month_window(rows);
        Self {
            lineitem_rows: rows,
            lineitems_per_order: 4,
            parts: (rows / 30).max(16),
            shipdate_layout: Layout::Clustered(month_window),
            seed: 0x7057_2016,
        }
    }

    /// Rows falling into one month of the shipdate domain — the window the
    /// "clustered" layout of Section 5.4 shuffles within.
    pub fn month_window(rows: usize) -> usize {
        (rows * DAYS_PER_MONTH as usize / SHIPDATE_DAYS as usize).max(2)
    }

    /// Number of orders implied by the configuration.
    pub fn orders(&self) -> usize {
        (self.lineitem_rows / self.lineitems_per_order).max(1)
    }

    /// Replace the shipdate layout (builder style).
    pub fn shipdate_layout(mut self, layout: Layout) -> Self {
        self.shipdate_layout = layout;
        self
    }

    /// Replace the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate the `lineitem` table.
pub fn generate_lineitem(config: &TpchConfig) -> Table {
    let n = config.lineitem_rows;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut space = AddressSpace::new();
    let mut t = Table::new("lineitem");

    // Shipdate: ascending base sequence, then the configured layout.
    let mut shipdate: Vec<i32> = (0..n)
        .map(|i| ((i as u64 * SHIPDATE_DAYS as u64) / n.max(1) as u64) as i32)
        .collect();
    apply_layout(&mut shipdate, config.shipdate_layout, config.seed ^ 0xDA7E);

    let orderkey: Vec<i32> = (0..n)
        .map(|i| (i / config.lineitems_per_order) as i32)
        .collect();
    let partkey: Vec<i32> = (0..n)
        .map(|_| rng.gen_range(0..config.parts as i32))
        .collect();
    let quantity: Vec<i32> = (0..n).map(|_| rng.gen_range(1..=QUANTITY_MAX)).collect();
    let discount: Vec<i32> = (0..n).map(|_| rng.gen_range(0..=DISCOUNT_MAX)).collect();
    let tax: Vec<i32> = (0..n).map(|_| rng.gen_range(0..=8)).collect();
    let extendedprice: Vec<i32> = (0..n).map(|_| rng.gen_range(1_000..100_000)).collect();

    t.add_column("l_orderkey", ColumnData::I32(orderkey), &mut space);
    t.add_column("l_partkey", ColumnData::I32(partkey), &mut space);
    t.add_column("l_quantity", ColumnData::I32(quantity), &mut space);
    t.add_column(
        "l_extendedprice",
        ColumnData::I32(extendedprice),
        &mut space,
    );
    t.add_column("l_discount", ColumnData::I32(discount), &mut space);
    t.add_column("l_tax", ColumnData::I32(tax), &mut space);
    t.add_column("l_shipdate", ColumnData::I32(shipdate), &mut space);
    t
}

/// Generate the `orders` table (dimension side of the co-clustered join).
pub fn generate_orders(config: &TpchConfig) -> Table {
    let n = config.orders();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0BDE);
    let mut space = AddressSpace::new();
    let mut t = Table::new("orders");
    let totalprice: Vec<i32> = (0..n).map(|_| rng.gen_range(10_000..500_000)).collect();
    let orderdate: Vec<i32> = (0..n)
        .map(|i| ((i as u64 * SHIPDATE_DAYS as u64) / n.max(1) as u64) as i32)
        .collect();
    t.add_column("o_totalprice", ColumnData::I32(totalprice), &mut space);
    t.add_column("o_orderdate", ColumnData::I32(orderdate), &mut space);
    t
}

/// Generate the `part` table (dimension side of the random-access join;
/// roughly eight times smaller than `orders` in the paper's Figure 15
/// discussion — preserved here through the TPC-H row ratios).
pub fn generate_part(config: &TpchConfig) -> Table {
    let n = config.parts;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9AB7);
    let mut space = AddressSpace::new();
    let mut t = Table::new("part");
    let retailprice: Vec<i32> = (0..n).map(|_| rng.gen_range(900..2_100)).collect();
    let size: Vec<i32> = (0..n).map(|_| rng.gen_range(1..=50)).collect();
    t.add_column("p_retailprice", ColumnData::I32(retailprice), &mut space);
    t.add_column("p_size", ColumnData::I32(size), &mut space);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::max_displacement;
    use crate::stats;

    #[test]
    fn lineitem_has_expected_schema() {
        let t = generate_lineitem(&TpchConfig::tiny());
        for name in [
            "l_orderkey",
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_shipdate",
        ] {
            assert!(t.column(name).is_some(), "missing {name}");
        }
        assert_eq!(t.rows(), TpchConfig::tiny().lineitem_rows);
    }

    #[test]
    fn domains_are_respected() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let q = t.column("l_quantity").unwrap().data().as_i32().unwrap();
        assert!(q.iter().all(|&v| (1..=QUANTITY_MAX).contains(&v)));
        let d = t.column("l_discount").unwrap().data().as_i32().unwrap();
        assert!(d.iter().all(|&v| (0..=DISCOUNT_MAX).contains(&v)));
        let s = t.column("l_shipdate").unwrap().data().as_i32().unwrap();
        assert!(s.iter().all(|&v| (0..SHIPDATE_DAYS).contains(&v)));
    }

    #[test]
    fn orderkeys_are_co_clustered() {
        let cfg = TpchConfig::tiny();
        let t = generate_lineitem(&cfg);
        let ok = t.column("l_orderkey").unwrap().data().as_i32().unwrap();
        assert!(
            ok.windows(2).all(|w| w[1] >= w[0]),
            "orderkeys not ascending"
        );
        assert_eq!(*ok.last().unwrap() as usize, cfg.orders() - 1);
    }

    #[test]
    fn partkeys_are_random_within_domain() {
        let cfg = TpchConfig::tiny();
        let t = generate_lineitem(&cfg);
        let pk = t.column("l_partkey").unwrap().data().as_i32().unwrap();
        assert!(pk.iter().all(|&v| (0..cfg.parts as i32).contains(&v)));
        // Random keys must not be sorted.
        assert!(pk.windows(2).any(|w| w[1] < w[0]));
    }

    #[test]
    fn default_shipdate_is_weakly_clustered() {
        let cfg = TpchConfig::tiny();
        let t = generate_lineitem(&cfg);
        let s = t.column("l_shipdate").unwrap().data().as_i32().unwrap();
        let d = max_displacement(s);
        assert!(d > 0, "default layout should not be perfectly sorted");
        assert!(
            d <= TpchConfig::month_window(cfg.lineitem_rows) * 4,
            "displacement {d} exceeds month clustering"
        );
    }

    #[test]
    fn sorted_layout_sorts_shipdate() {
        let cfg = TpchConfig::tiny().shipdate_layout(Layout::Sorted);
        let t = generate_lineitem(&cfg);
        let s = t.column("l_shipdate").unwrap().data().as_i32().unwrap();
        assert!(s.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn shipdate_quantile_tracks_selectivity() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let col = t.column("l_shipdate").unwrap();
        let v = stats::quantile(col.data(), 0.25);
        let sel = stats::selectivity(col.data(), |x| x <= v);
        assert!((sel - 0.25).abs() < 0.02, "sel = {sel}");
    }

    #[test]
    fn orders_and_part_tables_scale() {
        let cfg = TpchConfig::tiny();
        assert_eq!(generate_orders(&cfg).rows(), cfg.orders());
        assert_eq!(generate_part(&cfg).rows(), cfg.parts);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_lineitem(&TpchConfig::tiny());
        let b = generate_lineitem(&TpchConfig::tiny());
        assert_eq!(
            a.column("l_quantity").unwrap().data(),
            b.column("l_quantity").unwrap().data()
        );
    }
}
