//! # popt-storage — column store and data generation
//!
//! The in-memory, column-oriented storage layer underneath the execution
//! engine, plus a from-scratch TPC-H-style data generator covering the
//! tables the paper's evaluation uses (`lineitem`, `orders`, `part`,
//! Section 5.1) and the value-distribution knobs of Sections 5.3–5.6:
//! sorted, window-clustered (Knuth shuffle within a bounded window) and
//! fully random layouts, plus Zipf skew and correlated column pairs.
//!
//! Columns live in a **simulated address space** ([`addr::AddressSpace`])
//! so the `popt-cpu` cache hierarchy sees realistic, non-aliasing physical
//! addresses.
//!
//! ```
//! use popt_storage::tpch::{generate_lineitem, TpchConfig};
//!
//! let table = generate_lineitem(&TpchConfig::small());
//! assert!(table.rows() > 0);
//! let shipdate = table.column("l_shipdate").unwrap();
//! assert_eq!(shipdate.len(), table.rows());
//! ```

pub mod addr;
pub mod column;
pub mod distribution;
pub mod stats;
pub mod table;
pub mod tpch;

pub use addr::AddressSpace;
pub use column::{Column, ColumnData};
pub use distribution::Layout;
pub use table::Table;
