//! The query server: admission, interleaved scheduling, and per-query
//! progressive reoptimization over one shared [`CpuPool`].
//!
//! A [`QueryServer`] holds a batch of [`QuerySpec`]s — scan or pipeline
//! targets, each with a [`Priority`] and an arrival time in simulated
//! cycles — and executes them as *interleaved morsel streams*:
//!
//! * **Admission** — a query becomes schedulable once a worker's
//!   wall-clock position (busy + idle + charged optimizer cycles)
//!   reaches its arrival time; a pool with no admissible work idles
//!   forward to the next arrival instead of spinning.
//! * **Scheduling** — at every morsel boundary the worker asks the
//!   [`StrideScheduler`] which active query to serve next; shares
//!   converge to the priority weights, and no query starves.
//! * **Per-query coordination** — each admitted query owns a full
//!   [`CoordState`]: its own epoch-published order, sample windows,
//!   trial leasing and rejection memory, exactly as if it ran alone on
//!   the pool. Estimator fits run outside the scheduler lock and their
//!   cycles are charged to the core that ran them.
//! * **Order reuse** — on admission the server consults its
//!   [`OrderCache`] by workload signature; a warm hit starts the query
//!   from the template's last converged order and clustering
//!   calibration instead of the caller's (textbook) order.
//! * **Socket placement** — on a multi-socket pool every query is homed
//!   on *one* socket (greedy least-loaded-by-footprint in submission
//!   order, ties to the lowest socket — a pure function of the batch)
//!   and its morsels interleave only across that socket's cores, so a
//!   query never pays cross-socket coordination and each socket's LLC
//!   partition sees only the queries actually running there.
//!
//! Results are bit-identical to running each query alone on a single
//! core: every query's qualified count and aggregate sum are integer
//! accumulations over its own disjoint morsels, so neither the
//! interleaving, the priorities, nor mid-query order switches can change
//! them.

use std::sync::{Arc, Mutex};

use popt_cost::cycles::{fleet_occupancy, fleet_wall_cycles_interleaved};
use popt_cpu::{CpuConfig, CpuPool, SimCpu};
use popt_obs::{DriftObservatory, MetricsRegistry, TraceEvent, Tracer};
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::program::CompiledProgram;
use crate::exec::scan::VectorStats;
use crate::parallel::coordinator::{
    normal_round, trial_round, BoundaryAction, CoordState, WithCoord,
};
use crate::parallel::{MorselConfig, MorselDispatcher, ShardableTarget, TargetShard};
use crate::plan::{Peo, SelectionPlan};
use crate::progressive::{ProgressiveConfig, ProgressiveTarget, SwitchEvent};

use super::cache::{OrderCache, WorkloadSignature};
use super::scheduler::StrideScheduler;
use super::target::{ServeShard, ServeTarget};

/// Scheduling priority of a served query. Weights are proportional
/// shares of morsel slots, not preemption levels: a `High` query gets
/// 16× the slots of a `Low` one while both are active, and even a `Low`
/// query is never starved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Background work (weight 1).
    Low,
    /// Default traffic (weight 4).
    Normal,
    /// Latency-sensitive foreground queries (weight 16).
    High,
}

impl Priority {
    /// The stride-scheduling weight of the priority class.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 4,
            Priority::High => 16,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// What a served query executes.
pub enum QueryKind<'t> {
    /// A multi-selection scan.
    Scan {
        /// The scanned table.
        table: &'t Table,
        /// The selection plan.
        plan: SelectionPlan,
        /// Evaluation order to start from on a cache miss.
        initial_peo: Peo,
    },
    /// A mixed selection/join-filter pipeline.
    Pipeline {
        /// The pipeline (stages borrow immutable column data).
        pipeline: Pipeline<'t>,
        /// Evaluation order to start from on a cache miss.
        initial_order: Peo,
    },
    /// A compiled frontend program ([`crate::plan::LogicalPlan`] →
    /// [`CompiledProgram`]). Signatures are literal-free, so sliding a
    /// plan's literals keeps the template warm across arrivals.
    Compiled {
        /// The compiled program (stages borrow immutable column data).
        program: CompiledProgram<'t>,
        /// Evaluation order to start from on a cache miss.
        initial_order: Peo,
    },
}

/// One query submitted to the server.
pub struct QuerySpec<'t> {
    /// Human-readable identity carried into the report.
    pub label: String,
    /// What to execute.
    pub kind: QueryKind<'t>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Arrival time in simulated cycles since server start (0 = already
    /// queued when the pool starts — a closed-loop workload).
    pub arrival_cycles: u64,
}

impl<'t> QuerySpec<'t> {
    /// A scan query.
    pub fn scan(
        label: impl Into<String>,
        table: &'t Table,
        plan: SelectionPlan,
        initial_peo: Peo,
        priority: Priority,
        arrival_cycles: u64,
    ) -> Self {
        Self {
            label: label.into(),
            kind: QueryKind::Scan {
                table,
                plan,
                initial_peo,
            },
            priority,
            arrival_cycles,
        }
    }

    /// A pipeline query.
    pub fn pipeline(
        label: impl Into<String>,
        pipeline: Pipeline<'t>,
        initial_order: Peo,
        priority: Priority,
        arrival_cycles: u64,
    ) -> Self {
        Self {
            label: label.into(),
            kind: QueryKind::Pipeline {
                pipeline,
                initial_order,
            },
            priority,
            arrival_cycles,
        }
    }

    /// A compiled-program query, starting from the program's lowering
    /// (plan) order on a cache miss.
    pub fn compiled(
        label: impl Into<String>,
        program: CompiledProgram<'t>,
        priority: Priority,
        arrival_cycles: u64,
    ) -> Self {
        let initial_order = program.order().to_vec();
        Self {
            label: label.into(),
            kind: QueryKind::Compiled {
                program,
                initial_order,
            },
            priority,
            arrival_cycles,
        }
    }

    /// Optimize and compile a logical plan into a served query — the
    /// frontend entry door for the serving layer.
    pub fn from_plan(
        label: impl Into<String>,
        plan: crate::plan::LogicalPlan<'t>,
        priority: Priority,
        arrival_cycles: u64,
    ) -> Result<Self, EngineError> {
        let program = plan.optimize().compile()?;
        Ok(Self::compiled(label, program, priority, arrival_cycles))
    }
}

/// Server-wide execution knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Morsel sizing shared by all queries.
    pub morsels: MorselConfig,
    /// Progressive reoptimization settings (`None` = every query runs
    /// its submitted order statically).
    pub reopt: Option<ProgressiveConfig>,
    /// Whether to consult and feed the cross-query order cache.
    /// Effective only with `reopt` enabled: a static run never
    /// converges anywhere, so recording its start order as a template's
    /// "converged" state would poison later warm starts — with `reopt:
    /// None` the cache is bypassed entirely.
    pub use_order_cache: bool,
    /// Dynamically repartition each core's LLC ways among the queries
    /// that core is *still serving*: when a worker drains its share of a
    /// query (a local completion event), the survivors' footprint-
    /// proportional sub-shares of the core's batch-boundary way slice
    /// grow at that worker's next morsel. Events are keyed to the
    /// worker's **own claim stream** — ordered by its own simulated
    /// clock, at most one drain per morsel boundary, live set iterated
    /// in query-id order — never to other workers' completions: reacting
    /// to a *global* completion would make this core's cycles depend on
    /// the host thread interleaving, the exact hazard that reverted the
    /// shared morsel cursor. Shared-LLC pools only (inert on private
    /// LLCs, where there is no partition to re-divide). Off by default:
    /// with it off, every core keeps its batch-boundary slice for the
    /// whole run, the pre-repartitioning behavior bit-for-bit.
    pub dynamic_repartition: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            morsels: MorselConfig::default(),
            // Finer than the single-query default (10): a served query
            // owns only a slice of the pool's morsel slots, so its
            // stream is short in rounds and must converge within it.
            // One estimator round per interval still serves the whole
            // pool, so the finer cadence stays off the critical path.
            reopt: Some(ProgressiveConfig {
                reop_interval: 4,
                ..Default::default()
            }),
            use_order_cache: true,
            dynamic_repartition: false,
        }
    }
}

/// Per-query slice of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The spec's label.
    pub label: String,
    /// The spec's priority.
    pub priority: Priority,
    /// The spec's arrival time.
    pub arrival_cycles: u64,
    /// Qualifying tuples (bit-identical to a solo single-core run).
    pub qualified: u64,
    /// Aggregate sum (bit-identical to a solo single-core run).
    pub sum: i64,
    /// Morsels executed for this query.
    pub morsels: usize,
    /// Busy cycles its morsels cost, summed across the cores that ran
    /// them (excludes optimizer time and queueing).
    pub exec_cycles: u64,
    /// Estimator cycles charged on behalf of this query.
    pub optimizer_cycles: u64,
    /// Completion latency: finish wall-clock position − arrival.
    pub latency_cycles: u64,
    /// Time from arrival to the first executed morsel.
    pub queue_cycles: u64,
    /// Order switches attempted while serving the query.
    pub switches: Vec<SwitchEvent>,
    /// Estimator invocations.
    pub estimates: usize,
    /// The published order when the query finished.
    pub final_order: Peo,
    /// Whether the query started from a cached template order.
    pub warm_start: bool,
}

impl QueryOutcome {
    /// Execution plus optimizer cycles: the query's total cost to the
    /// pool, the figure the warm/cold convergence comparison uses.
    pub fn cost_cycles(&self) -> u64 {
        self.exec_cycles + self.optimizer_cycles
    }
}

/// Outcome of one [`QueryServer::run`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<QueryOutcome>,
    /// Workers (= pool cores) that served the batch.
    pub workers: usize,
    /// Wall-clock cycles of the batch: the furthest wall-clock position
    /// any worker reached (busy + idle).
    pub wall_cycles: u64,
    /// Wall-clock simulated milliseconds.
    pub wall_millis: f64,
    /// Busy cycles summed across workers (execution + optimizer).
    pub busy_cycles: u64,
    /// Idle cycles summed across workers (admission gaps).
    pub idle_cycles: u64,
    /// Busy share of the wall-clock capacity (`1.0` for an empty batch).
    pub occupancy: f64,
    /// Per-worker busy cycles (execution + that worker's optimizer
    /// rounds), for scaling plots.
    pub per_worker_busy_cycles: Vec<u64>,
    /// Per-worker idle cycles.
    pub per_worker_idle_cycles: Vec<u64>,
}

impl ServeReport {
    /// Completed queries per simulated second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_millis == 0.0 {
            return 0.0;
        }
        self.queries.len() as f64 / (self.wall_millis / 1e3)
    }

    /// Latency percentile in cycles over the batch, optionally
    /// restricted to one priority class. `fraction` is in `[0, 1]`
    /// (0.5 = median). `None` when no query matches.
    pub fn latency_percentile(&self, priority: Option<Priority>, fraction: f64) -> Option<u64> {
        let mut latencies: Vec<u64> = self
            .queries
            .iter()
            .filter(|q| priority.is_none_or(|p| q.priority == p))
            .map(|q| q.latency_cycles)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let idx = ((latencies.len() - 1) as f64 * fraction.clamp(0.0, 1.0)).round() as usize;
        Some(latencies[idx])
    }

    /// Fold the batch outcome into a metrics registry: batch counters
    /// (`serve.*`), occupancy/throughput gauges, and latency/queueing
    /// histograms both pooled and split per priority class.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("serve.batches", 1);
        reg.inc("serve.queries", self.queries.len() as u64);
        reg.inc("serve.wall_cycles", self.wall_cycles);
        reg.inc("serve.busy_cycles", self.busy_cycles);
        reg.inc("serve.idle_cycles", self.idle_cycles);
        reg.set_gauge("serve.occupancy", self.occupancy);
        reg.set_gauge("serve.throughput_qps", self.throughput_qps());
        for q in &self.queries {
            reg.inc("serve.morsels", q.morsels as u64);
            reg.inc("serve.switches", q.switches.len() as u64);
            reg.inc(
                "serve.switches_reverted",
                q.switches.iter().filter(|s| s.reverted).count() as u64,
            );
            reg.inc("serve.estimates", q.estimates as u64);
            reg.inc("serve.optimizer_cycles", q.optimizer_cycles);
            if q.warm_start {
                reg.inc("serve.warm_starts", 1);
            }
            reg.observe("serve.latency_cycles", q.latency_cycles);
            reg.observe("serve.queue_cycles", q.queue_cycles);
            let by_class = match q.priority {
                Priority::Low => "serve.latency_cycles.low",
                Priority::Normal => "serve.latency_cycles.normal",
                Priority::High => "serve.latency_cycles.high",
            };
            reg.observe(by_class, q.latency_cycles);
        }
    }
}

/// The multi-query serving layer. Holds the submitted batch and the
/// cross-run order cache; [`QueryServer::run`] drains the batch over a
/// pool, [`QueryServer::admit`] queues the next one. The cache persists
/// across runs — that is what makes repeated templates warm.
pub struct QueryServer<'t> {
    specs: Vec<QuerySpec<'t>>,
    cache: OrderCache,
    config: ServeConfig,
    tracer: Option<Arc<Tracer>>,
    drift: Option<Arc<DriftObservatory>>,
}

impl<'t> QueryServer<'t> {
    /// A server with an empty queue and a cold cache.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            specs: Vec::new(),
            cache: OrderCache::new(),
            config,
            tracer: None,
            drift: None,
        }
    }

    /// Attach a tracer: subsequent [`QueryServer::run`] batches emit the
    /// full decision/event stream (admission, socket homing, cache
    /// consultation, morsel claims, reopt rounds, trial leases, order
    /// publications, completion) into the tracer's sink. Tracing is
    /// non-invasive — simulated cycles, results, and accepted orders are
    /// bit-identical with the tracer attached, detached, or disabled.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Detach the tracer (runs stop emitting).
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Attach a model-drift observatory: every query's reopt-round and
    /// trial fits record their predicted-vs-observed residuals there,
    /// keyed by literal-free stage key (so repeated templates aggregate
    /// into shared series). Non-invasive, like the tracer.
    pub fn set_drift(&mut self, drift: Arc<DriftObservatory>) {
        self.drift = Some(drift);
    }

    /// Queue a query for the next [`QueryServer::run`].
    pub fn admit(&mut self, spec: QuerySpec<'t>) {
        self.specs.push(spec);
    }

    /// Queries currently queued.
    pub fn queued(&self) -> usize {
        self.specs.len()
    }

    /// The cross-query order cache (inspection; fed automatically).
    pub fn cache(&self) -> &OrderCache {
        &self.cache
    }

    /// Serve the queued batch over `pool`. Queries are admitted by
    /// arrival time, scheduled by priority, reoptimized independently,
    /// and their converged orders recorded into the cache when the
    /// batch completes. The queue is drained only on success — a batch
    /// rejected for an invalid spec or config stays queued, so the
    /// caller can fix the problem and retry without losing the valid
    /// queries.
    pub fn run(&mut self, pool: &mut CpuPool) -> Result<ServeReport, EngineError> {
        if let Some(cfg) = &self.config.reopt {
            if cfg.reop_interval == 0 {
                return Err(EngineError::InvalidVectorConfig("reop_interval = 0".into()));
            }
        }
        let workers = pool.len();
        if self.specs.is_empty() {
            return Ok(ServeReport {
                queries: Vec::new(),
                workers,
                wall_cycles: 0,
                wall_millis: 0.0,
                busy_cycles: 0,
                idle_cycles: 0,
                occupancy: 1.0,
                per_worker_busy_cycles: vec![0; workers],
                per_worker_idle_cycles: vec![0; workers],
            });
        }
        let cpu_cfg = pool.config().clone();
        let freq = cpu_cfg.timing.frequency_ghz;
        let reopt = self.config.reopt.as_ref();
        let morsel_tuples = self.config.morsels.morsel_tuples;
        // Without reoptimization nothing converges, so a "converged
        // order" cache would just replay whatever order the first
        // instance happened to start with — bypass it entirely.
        let cache_on = self.config.use_order_cache && reopt.is_some();
        // One branch decides observability for the whole batch: with no
        // tracer (or a disabled sink) every emission below is a single
        // `if` on a `None`/false and no event payload is ever built.
        let trace: Option<&Arc<Tracer>> = self.tracer.as_ref().filter(|t| t.enabled());

        let metas: Vec<(String, Priority, u64)> = self
            .specs
            .iter()
            .map(|s| (s.label.clone(), s.priority, s.arrival_cycles))
            .collect();

        // Build one master target per query, warm-started from the order
        // cache when the workload signature hits at admission. (Open-loop
        // later arrivals get a second chance mid-run: completed template
        // mates publish at completion, and the first morsel claim of an
        // `arrival > 0` query re-consults the cache under the lock.)
        let mut targets = Vec::with_capacity(metas.len());
        let mut signatures = Vec::with_capacity(metas.len());
        let mut warms = Vec::with_capacity(metas.len());
        for spec in self.specs.iter_mut() {
            let (target, signature, warm_seed) =
                build_target(&mut spec.kind, cache_on.then_some(&mut self.cache))?;
            targets.push(target);
            signatures.push(signature);
            warms.push(warm_seed);
        }

        // Placement: home every query on one socket, greedy least-
        // loaded-by-footprint in submission order with ties to the
        // lowest socket — a pure function of the admitted batch. On a
        // single-socket pool every query lands on socket 0 and the whole
        // scheme reduces to the flat pre-NUMA server.
        let sockets = pool.sockets();
        let footprints: Vec<u64> = targets
            .iter()
            .map(crate::progressive::ProgressiveTarget::hot_set_bytes)
            .collect();
        let mut socket_load = vec![0u64; sockets];
        let mut socket_footprint = vec![0u64; sockets];
        let homes: Vec<usize> = footprints
            .iter()
            .map(|&f| {
                let s = (0..sockets)
                    .min_by_key(|&s| (socket_load[s], s))
                    .expect("a pool has at least one socket");
                // Even a zero-footprint query occupies morsel slots;
                // weight it so placement still spreads the batch.
                socket_load[s] += f.max(1);
                socket_footprint[s] += f;
                s
            })
            .collect();

        // Socket boundary: a query's rows interleave across its home
        // socket's cores, so each core co-runs exactly the queries homed
        // on its socket — its declared footprint is that socket's
        // aggregate hot set. On a shared-LLC pool the partition shrinks
        // every core's slice accordingly (a pure function of the
        // admitted batch, recomputed at this batch boundary; reacting to
        // *other workers'* completions would make shares depend on host
        // thread timing — the same hazard that reverted the shared
        // morsel cursor; the opt-in `dynamic_repartition` re-divides
        // only within a worker's own claim stream). Each query's
        // estimator then prices against its footprint-proportional slice
        // of its home socket's core share, so reoptimization sees what
        // the co-runners actually left it.
        let core_footprints: Vec<u64> = (0..workers)
            .map(|c| socket_footprint[pool.socket_of(c)])
            .collect();
        pool.declare_footprints(&core_footprints);
        let shared_socket = pool.llc_mode() == popt_cpu::LlcMode::Shared;
        let dynamic_repartition = shared_socket && self.config.dynamic_repartition;
        let line_bytes = cpu_cfg.line_bytes();
        let budgets: Vec<u64> = footprints
            .iter()
            .zip(&homes)
            .map(|(&f, &s)| {
                let core_share = pool.min_effective_llc_bytes_socket(s);
                let local_total = socket_footprint[s];
                if shared_socket && local_total > 0 {
                    let slice =
                        u128::from(core_share) * u128::from(f) / u128::from(local_total.max(1));
                    (slice as u64).max(line_bytes)
                } else {
                    core_share
                }
            })
            .collect();
        let member_range: Vec<(usize, usize)> = (0..sockets)
            .map(|s| {
                let members = pool.socket_members(s);
                (members[0], members.len())
            })
            .collect();

        // Admission-time decisions, stamped on the coordinator lane at
        // each query's arrival position: what arrived, where the cache
        // left it, where it was homed, and how the batch divided the LLC.
        if let Some(tracer) = trace {
            let lane = tracer.coordinator_lane();
            for (qid, (label, priority, arrival)) in metas.iter().enumerate() {
                tracer.emit_at(lane, qid, *arrival, || TraceEvent::Admit {
                    label: label.clone(),
                    priority: priority.label(),
                    arrival_cycles: *arrival,
                });
                if cache_on {
                    tracer.emit_at(lane, qid, *arrival, || TraceEvent::CacheLookup {
                        hit: warms[qid].is_some(),
                        mid_run: false,
                        order: warms[qid].clone(),
                    });
                }
                tracer.emit_at(lane, qid, *arrival, || TraceEvent::SocketHome {
                    socket: homes[qid],
                    footprint_bytes: footprints[qid],
                });
            }
            tracer.emit_at(lane, 0, 0, || TraceEvent::LlcRepartition {
                scope: "batch",
                mode: if shared_socket { "shared" } else { "private" },
                shares: budgets.clone(),
            });
        }

        // Per-(worker, query) shards, minted before the mutable borrows
        // below: each worker re-chains its own executors independently.
        let mut worker_shards: Vec<Vec<ServeShard<'_, 't>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shards: Result<Vec<_>, EngineError> =
                targets.iter().map(ShardableTarget::shard).collect();
            worker_shards.push(shards?);
        }

        // Work division: each query's rows are interleaved across its
        // home socket's workers exactly like the dedicated-pool executor
        // (morsel k → member k mod M), so every worker's share of every
        // query is a pure function of the batch (see the `morsel` module
        // docs for why a greedy shared cursor would not be). Without
        // reopt the per-core simulated cycles — and with them the
        // latency figures — reproduce exactly on any host; with reopt
        // enabled the same residual, single-morsel-bounded scheduling
        // sensitivity as the dedicated-pool executor remains (which
        // worker leases a trial and where an epoch lands follow the
        // cross-worker completion interleaving; results stay
        // bit-identical regardless). Dispatcher claims are per-worker
        // atomics, so they live outside the scheduler lock.
        let mut dispatchers = Vec::with_capacity(targets.len());
        let mut entries = Vec::with_capacity(targets.len());
        let arrivals: Vec<u64> = metas.iter().map(|(_, _, arrival)| *arrival).collect();
        let weights: Vec<u64> = metas
            .iter()
            .map(|(_, priority, _)| priority.weight())
            .collect();
        for ((((target, &budget), &home), signature), warm_seed) in targets
            .iter_mut()
            .zip(&budgets)
            .zip(&homes)
            .zip(signatures)
            .zip(warms)
        {
            let (member_start, members) = member_range[home];
            let inner = MorselDispatcher::new(target.rows(), morsel_tuples, members)?;
            let total_morsels = inner.total_morsels();
            let arrival = metas[entries.len()].2;
            dispatchers.push(QueryDispatch {
                inner,
                member_start,
                members,
            });
            let mut coord = CoordState::new(target, workers, budget);
            if let Some(tracer) = trace {
                // The query's own coordination protocol (trial leasing,
                // reopt rounds, epoch publication) emits through the same
                // tracer under its query id.
                coord.set_trace(Arc::clone(tracer), entries.len());
            }
            if let Some(drift) = &self.drift {
                coord.set_drift(Arc::clone(drift));
            }
            entries.push(QueryEntry {
                coord,
                totals: VectorStats::zero(),
                exec_cycles: 0,
                first_vt: None,
                finish_vt: None,
                completed: 0,
                total_morsels,
                signature,
                warm_seed,
                seed_checked: false,
                arrival,
            });
        }

        let state = Mutex::new(ServerState {
            queries: entries,
            error: None,
            cache: if cache_on {
                Some(&mut self.cache)
            } else {
                None
            },
        });

        let worker_socket: Vec<usize> = (0..workers).map(|c| pool.socket_of(c)).collect();
        let mut worker_clocks: Vec<(u64, u64, u64)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pool
                .cores_mut()
                .iter_mut()
                .zip(worker_shards)
                .enumerate()
                .map(|(w, (core, mut shards))| {
                    let state = &state;
                    let cpu_cfg = &cpu_cfg;
                    let dispatchers = &dispatchers;
                    let arrivals = &arrivals;
                    let weights = &weights;
                    let footprints = &footprints;
                    let socket = worker_socket[w];
                    scope.spawn(move || {
                        serve_worker(
                            w,
                            socket,
                            core,
                            &mut shards,
                            state,
                            dispatchers,
                            arrivals,
                            weights,
                            footprints,
                            dynamic_repartition,
                            reopt,
                            cpu_cfg,
                            trace,
                        )
                    })
                })
                .collect();
            for handle in handles {
                worker_clocks.push(handle.join().expect("serve worker panicked"));
            }
        });

        let mut st = state.into_inner().expect("no worker held the lock");
        if let Some(err) = st.error.take() {
            return Err(err);
        }

        // Converged orders were already published to the cache at each
        // query's completion (under the coordination lock); assembling
        // the report only reads.
        let mut queries = Vec::with_capacity(st.queries.len());
        for (entry, (label, priority, arrival)) in st.queries.into_iter().zip(metas) {
            let mut coord = entry.coord;
            coord.abandon_unleased_trial();
            let final_order = coord.published_order(0).clone();
            let finish = entry.finish_vt.unwrap_or(arrival);
            let first = entry.first_vt.unwrap_or(arrival);
            queries.push(QueryOutcome {
                label,
                priority,
                arrival_cycles: arrival,
                qualified: entry.totals.qualified,
                sum: entry.totals.sum,
                morsels: entry.completed,
                exec_cycles: entry.exec_cycles,
                optimizer_cycles: coord.optimizer_cycles.iter().sum(),
                latency_cycles: finish.saturating_sub(arrival),
                queue_cycles: first.saturating_sub(arrival),
                switches: coord.switches,
                estimates: coord.estimates,
                final_order,
                warm_start: entry.warm_seed.is_some(),
            });
        }

        // The batch completed: only now does the queue drain (targets
        // still borrow the specs; release them first).
        drop(targets);
        self.specs.clear();

        let per_worker_busy_cycles: Vec<u64> = worker_clocks
            .iter()
            .map(|&(busy, _, opt)| busy + opt)
            .collect();
        let per_worker_idle_cycles: Vec<u64> =
            worker_clocks.iter().map(|&(_, idle, _)| idle).collect();
        let wall_cycles =
            fleet_wall_cycles_interleaved(&per_worker_busy_cycles, &per_worker_idle_cycles);
        Ok(ServeReport {
            queries,
            workers,
            wall_cycles,
            wall_millis: wall_cycles as f64 / (freq * 1e6),
            busy_cycles: per_worker_busy_cycles.iter().sum(),
            idle_cycles: per_worker_idle_cycles.iter().sum(),
            occupancy: fleet_occupancy(&per_worker_busy_cycles, &per_worker_idle_cycles),
            per_worker_busy_cycles,
            per_worker_idle_cycles,
        })
    }
}

/// Build a query's master target, consulting the order cache (when
/// given) for a warm-start order and calibration. Returns the target,
/// its workload signature, and the cached order the target was seeded
/// with (`None` = cold start).
fn build_target<'p, 't>(
    kind: &'p mut QueryKind<'t>,
    cache: Option<&mut OrderCache>,
) -> Result<(ServeTarget<'p, 't>, WorkloadSignature, Option<Peo>), EngineError> {
    match kind {
        QueryKind::Scan {
            table,
            plan,
            initial_peo,
        } => {
            let signature = WorkloadSignature::of_scan(table, plan)?;
            let cached = cache.and_then(|c| c.lookup(&signature));
            let start = cached
                .as_ref()
                .map_or(&initial_peo[..], |entry| &entry.order[..]);
            let target = crate::progressive::ScanTarget::new(table, plan, start)?;
            Ok((
                ServeTarget::Scan(target),
                signature,
                cached.map(|entry| entry.order),
            ))
        }
        QueryKind::Pipeline {
            pipeline,
            initial_order,
        } => {
            let signature = WorkloadSignature::of_pipeline(pipeline);
            let cached = cache.and_then(|c| c.lookup(&signature));
            match cached.as_ref() {
                Some(entry) => pipeline.reorder(&entry.order)?,
                None => pipeline.reorder(initial_order)?,
            }
            let mut target = crate::progressive::PipelineTarget::new(pipeline);
            if let Some(calibration) = cached.as_ref().and_then(|e| e.calibration.as_ref()) {
                target.restore_calibration(calibration);
            }
            Ok((
                ServeTarget::Pipeline(target),
                signature,
                cached.map(|entry| entry.order),
            ))
        }
        QueryKind::Compiled {
            program,
            initial_order,
        } => {
            let signature = WorkloadSignature::of_compiled(program);
            let cached = cache.and_then(|c| c.lookup(&signature));
            match cached.as_ref() {
                Some(entry) => program.reorder(&entry.order)?,
                None => program.reorder(initial_order)?,
            }
            let mut target = crate::progressive::CompiledTarget::new(program);
            if let Some(calibration) = cached.as_ref().and_then(|e| e.calibration.as_ref()) {
                target.restore_calibration(calibration);
            }
            Ok((
                ServeTarget::Compiled(target),
                signature,
                cached.map(|entry| entry.order),
            ))
        }
    }
}

/// One query's work division over its home socket: the inner dispatcher
/// spans only the socket's member cores (contiguous, `member_start ..
/// member_start + members`), and the wrapper maps pool-wide worker ids
/// onto those local slots. A non-member worker simply has no share of
/// the query. On a single-socket pool every worker is a member and this
/// is exactly the flat pool-wide dispatcher.
struct QueryDispatch {
    inner: MorselDispatcher,
    member_start: usize,
    members: usize,
}

impl QueryDispatch {
    /// The local dispatcher slot of pool worker `w`, if it is a member
    /// of the query's home socket.
    fn slot(&self, w: usize) -> Option<usize> {
        (self.member_start..self.member_start + self.members)
            .contains(&w)
            .then(|| w - self.member_start)
    }

    fn has_morsels(&self, w: usize) -> bool {
        self.slot(w).is_some_and(|s| self.inner.has_morsels(s))
    }

    fn next(&self, w: usize) -> Option<(usize, usize)> {
        self.inner.next(self.slot(w)?)
    }

    fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }
}

/// Per-query serving state behind the coordination lock: the query's
/// progressive coordination plus its completion accounting. (The work
/// division itself — dispatchers, arrivals, weights — is immutable or
/// atomic and lives outside the lock.)
struct QueryEntry<'a, 'p, 't> {
    coord: CoordState<'a, ServeTarget<'p, 't>>,
    totals: VectorStats,
    exec_cycles: u64,
    first_vt: Option<u64>,
    finish_vt: Option<u64>,
    completed: usize,
    total_morsels: usize,
    /// The template identity, for mid-run cache publication/consultation.
    signature: WorkloadSignature,
    /// The cached order the query was seeded with (`None` = cold start),
    /// whether at admission to the batch or by a mid-run warm start.
    warm_seed: Option<Peo>,
    /// Whether the mid-run cache was already consulted for a late seed.
    seed_checked: bool,
    /// The query's arrival time (gates mid-run warm starts to open-loop
    /// later arrivals).
    arrival: u64,
}

struct ServerState<'a, 'p, 't> {
    queries: Vec<QueryEntry<'a, 'p, 't>>,
    error: Option<EngineError>,
    /// The server's order cache, shared with the workers so converged
    /// state publishes at query *completion* (under this same lock)
    /// instead of at batch drain — a long open-loop stream warms its own
    /// later arrivals online. `None` when the cache is bypassed.
    cache: Option<&'a mut OrderCache>,
}

/// What a worker decided to do after consulting its scheduler.
enum Step {
    /// Serve one morsel of query `qid`.
    Run {
        qid: usize,
        start: usize,
        end: usize,
        action: BoundaryAction,
    },
    /// No admissible work: idle forward to the next arrival.
    Idle(u64),
    /// This worker's share of every query has been claimed.
    Done,
}

/// One serving worker: interleave the worker's shares of all admitted
/// queries in stride order, execute each morsel on the private core,
/// and run the owning query's coordination protocol — estimator fits
/// outside the lock, their cycles charged to this core.
///
/// The scheduler is *worker-local*: each worker divides its own morsel
/// slots across the queries it has admitted (by its own clock), over
/// its own deterministic share of each query's rows. Pool-wide shares
/// still converge to the priority weights — every worker enforces the
/// same ratios — while the only cross-worker coupling left is the
/// per-query coordination itself (epoch publication, trial leasing),
/// which is bounded to single-morsel effects exactly as in the
/// dedicated-pool executor. `w` is the worker's slot in the pool, used
/// as its window index in every query's coordination state. Returns
/// (busy, idle, optimizer) cycles.
#[allow(clippy::too_many_arguments)]
fn serve_worker<'a, 'p, 't>(
    w: usize,
    socket: usize,
    core: &mut SimCpu,
    shards: &mut [ServeShard<'p, 't>],
    state: &Mutex<ServerState<'a, 'p, 't>>,
    dispatchers: &[QueryDispatch],
    arrivals: &[u64],
    weights: &[u64],
    footprints: &[u64],
    dynamic_repartition: bool,
    reopt: Option<&ProgressiveConfig>,
    cpu_cfg: &CpuConfig,
    trace: Option<&Arc<Tracer>>,
) -> (u64, u64, u64) {
    let base_cycles = core.cycles();
    let base_idle = core.idle_cycles();
    let mut opt_cycles = 0u64;
    let mut local_epochs = vec![0u64; shards.len()];
    let mut sched = StrideScheduler::new(shards.len());
    let mut admitted = vec![false; shards.len()];
    // Dynamic way repartition state: this core's batch-boundary way
    // slice, sub-divided among the queries this worker is still serving
    // (`live`). Both the live set and the drain events that shrink it
    // are pure functions of the worker's own claim stream, so the cycles
    // this produces never depend on host thread interleaving (see
    // [`ServeConfig::dynamic_repartition`]).
    let base_ways = core.hierarchy().llc_ways();
    let mut live = vec![false; shards.len()];

    loop {
        let idle_now = core.idle_cycles() - base_idle;
        let now = (core.cycles() - base_cycles) + idle_now + opt_cycles;
        // Admission: every arrived query with a non-empty share for this
        // worker joins the worker's scheduler at the worker's clock.
        for qid in 0..arrivals.len() {
            if !admitted[qid] && arrivals[qid] <= now {
                admitted[qid] = true;
                if dispatchers[qid].has_morsels(w) {
                    sched.admit(qid, weights[qid]);
                    live[qid] = true;
                }
            }
        }
        let step = match sched.pick(|qid| dispatchers[qid].has_morsels(w)) {
            Some(qid) => {
                let (start, end) = dispatchers[qid]
                    .next(w)
                    .expect("an eligible query has a morsel in this worker's share");
                if !dispatchers[qid].has_morsels(w) {
                    // Share drained: out of this worker's scheduler
                    // (completion is tracked separately). This is the
                    // local completion event dynamic repartition keys
                    // on: at most one query drains per boundary, in the
                    // worker's own simulated-cycle order.
                    sched.retire(qid);
                    live[qid] = false;
                }
                let mut guard = state.lock().expect("coordination lock");
                if guard.error.is_some() {
                    break;
                }
                let st = &mut *guard;
                let entry = &mut st.queries[qid];
                // Mid-run warm start: the first claim of an open-loop
                // later arrival re-consults the cache once, under the
                // same lock publication uses — a template mate that
                // completed earlier in the stream seeds this instance
                // even though both were admitted in one batch. Closed-
                // loop queries (arrival 0) co-start with their mates and
                // keep the batch-admission semantics. On a multi-worker
                // pool, whether a mate's completion lands before this
                // first claim follows the *host* completion interleaving
                // when the two are close, so warm-vs-cold here — like
                // trial leasing — is bounded perf-only nondeterminism:
                // it can move switches and cycles, never results. With
                // one worker (or arrival gaps that dwarf query runtimes,
                // the open-loop regime this path exists for) the choice
                // is fully deterministic.
                if !entry.seed_checked {
                    entry.seed_checked = true;
                    if entry.warm_seed.is_none() && entry.arrival > 0 {
                        if let Some(cache) = st.cache.as_deref_mut() {
                            let hit = cache.lookup(&entry.signature);
                            if let Some(tracer) = trace {
                                tracer.emit_at(w, qid, now, || TraceEvent::CacheLookup {
                                    hit: hit.is_some(),
                                    mid_run: true,
                                    order: hit.as_ref().map(|h| h.order.clone()),
                                });
                            }
                            if let Some(hit) = hit {
                                if entry.coord.reseed(&hit.order, hit.calibration.as_ref()) {
                                    entry.warm_seed = Some(hit.order);
                                }
                            }
                        }
                    }
                }
                // Queue delay is measured to the *earliest* service
                // across workers.
                entry.first_vt = Some(entry.first_vt.map_or(now, |f| f.min(now)));
                let action = entry.coord.begin_morsel(w, local_epochs[qid]);
                Step::Run {
                    qid,
                    start,
                    end,
                    action,
                }
            }
            None => {
                let next_arrival = (0..arrivals.len())
                    .filter(|&qid| !admitted[qid])
                    .map(|qid| arrivals[qid])
                    .min();
                match next_arrival {
                    Some(arrival) => {
                        // The pool is ahead of the arrival process: idle
                        // forward instead of spinning. A peer's failure
                        // is only checked here (and under the claim
                        // path's own lock) — the busy path must not pay
                        // an extra acquisition of the shared mutex per
                        // morsel just for the error flag.
                        if state.lock().expect("coordination lock").error.is_some() {
                            break;
                        }
                        Step::Idle(arrival.saturating_sub(now).max(1))
                    }
                    None => Step::Done,
                }
            }
        };

        match step {
            Step::Done => break,
            Step::Idle(gap) => {
                core.idle(gap);
                continue;
            }
            Step::Run {
                qid,
                start,
                end,
                action,
            } => {
                let (is_trial, epoch) = match action {
                    BoundaryAction::Trial(order) => {
                        if let Err(err) = shards[qid].set_order(&order) {
                            state.lock().expect("scheduler lock").error = Some(err);
                            break;
                        }
                        (true, local_epochs[qid])
                    }
                    BoundaryAction::Adopt { order, epoch } => {
                        if let Err(err) = shards[qid].set_order(&order) {
                            state.lock().expect("scheduler lock").error = Some(err);
                            break;
                        }
                        local_epochs[qid] = epoch;
                        (false, epoch)
                    }
                    BoundaryAction::Keep { epoch } => (false, epoch),
                };

                if dynamic_repartition {
                    // Serve this morsel with the query's footprint-
                    // proportional sub-share of the core's way slice
                    // among the queries this worker still serves. The
                    // just-drained query keeps its share for its own
                    // last morsel (`q == qid`); survivors see the larger
                    // share from their next claim on. Query-id iteration
                    // order makes equal-footprint ties deterministic.
                    let co: Vec<usize> = (0..live.len()).filter(|&q| live[q] || q == qid).collect();
                    let fps: Vec<u64> = co.iter().map(|&q| footprints[q]).collect();
                    let shares = popt_cpu::partition_llc_ways(base_ways as u32, &fps);
                    let mine = co.iter().position(|&q| q == qid).expect("qid is in co");
                    core.set_llc_ways(shares[mine] as usize);
                    if let Some(tracer) = trace {
                        tracer.emit_at(w, qid, now, || TraceEvent::LlcRepartition {
                            scope: "worker",
                            mode: "shared",
                            shares: shares.iter().map(|&s| u64::from(s)).collect(),
                        });
                    }
                }
                let start_pos =
                    (core.cycles() - base_cycles) + (core.idle_cycles() - base_idle) + opt_cycles;
                let stats = shards[qid].run_range(core, start, end);
                if let Some(tracer) = trace {
                    // Publish this worker's wall position so the locked
                    // round below stamps its decisions at the morsel's
                    // end, then log the claim itself.
                    tracer.set_clock(
                        w,
                        (core.cycles() - base_cycles)
                            + (core.idle_cycles() - base_idle)
                            + opt_cycles,
                    );
                    tracer.emit(w, qid, || TraceEvent::MorselClaim {
                        socket,
                        start_row: start,
                        rows: end - start,
                        start_cycles: start_pos,
                        cycles: stats.counters.cycles,
                        trial: is_trial,
                        epoch,
                    });
                }

                // The shared trial/reopt choreography from the
                // coordinator, with the estimator cycles it charged to
                // this worker mirrored into the wall-clock position.
                let coord_ref = QueryCoordRef { state, qid };
                let outcome = if is_trial {
                    let cfg = reopt.expect("trials are only scheduled when reopt is on");
                    match trial_round(&coord_ref, w, &stats, cfg, cpu_cfg) {
                        Ok(((published, new_epoch), opt)) => {
                            // Adopt whatever order the resolution left
                            // published (the trial order if accepted,
                            // the incumbent if not).
                            opt_cycles += opt;
                            local_epochs[qid] = new_epoch;
                            shards[qid].set_order(&published)
                        }
                        Err(err) => Err(err),
                    }
                } else {
                    opt_cycles += normal_round(
                        &coord_ref,
                        w,
                        epoch,
                        &stats,
                        reopt,
                        cpu_cfg,
                        // A trial can be leased by any worker still
                        // serving this query, so "work remains" is
                        // pool-wide, not this worker's share.
                        !dispatchers[qid].exhausted(),
                    );
                    Ok(())
                };
                if let Err(err) = outcome {
                    state.lock().expect("scheduler lock").error = Some(err);
                    break;
                }

                // Completion accounting: the query finishes at the
                // wall-clock position of the worker that ran its last
                // morsel.
                let mut guard = state.lock().expect("scheduler lock");
                let st = &mut *guard;
                let entry = &mut st.queries[qid];
                entry.totals.accumulate(&stats);
                entry.exec_cycles += stats.counters.cycles;
                entry.completed += 1;
                // The query is done when its last morsel completes; with
                // per-worker clocks the finish position is the furthest
                // wall-clock position any of its morsels reached (a
                // lagging core's completion never rewinds the clock of
                // an earlier one).
                let idle_total = core.idle_cycles() - base_idle;
                let vt = (core.cycles() - base_cycles) + idle_total + opt_cycles;
                entry.finish_vt = Some(entry.finish_vt.unwrap_or(0).max(vt));
                // Mid-run publication: the query just completed (every
                // one of its morsels has resolved — a leased trial
                // resolves before its morsel counts), so its converged
                // order and calibration go to the cache *now*, under the
                // coordination lock we already hold. Later arrivals of
                // the template in this same batch can warm from it; a
                // warm instance feeds the staleness accounting instead.
                if entry.completed == entry.total_morsels {
                    entry.coord.abandon_unleased_trial();
                    if let Some(tracer) = trace {
                        tracer.emit_at(w, qid, vt, || TraceEvent::Complete {
                            qualified: entry.totals.qualified,
                            sum: entry.totals.sum,
                            morsels: entry.completed,
                            wall_cycles: vt,
                        });
                    }
                    if let Some(cache) = st.cache.as_deref_mut() {
                        let final_order = entry.coord.published_order(0).clone();
                        let calibration = entry.coord.target.calibration_snapshot();
                        if entry.warm_seed.is_some() {
                            let outcome = cache.record_warm(
                                entry.signature.clone(),
                                final_order.clone(),
                                calibration,
                            );
                            if let Some(tracer) = trace {
                                tracer.emit_at(w, qid, vt, || TraceEvent::CacheRecord {
                                    warm: true,
                                    order: final_order,
                                    diverged: outcome.diverged,
                                    evicted: outcome.evicted,
                                    streak_reset: false,
                                });
                            }
                        } else {
                            let discarded_streak = cache.record(
                                entry.signature.clone(),
                                final_order.clone(),
                                calibration,
                            );
                            if let Some(tracer) = trace {
                                tracer.emit_at(w, qid, vt, || TraceEvent::CacheRecord {
                                    warm: false,
                                    order: final_order,
                                    diverged: false,
                                    evicted: false,
                                    streak_reset: discarded_streak > 0,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    if dynamic_repartition {
        // Leave the core at its batch-boundary slice; the next batch's
        // footprint declaration repartitions it anyway.
        core.set_llc_ways(base_ways);
    }
    (
        core.cycles() - base_cycles,
        core.idle_cycles() - base_idle,
        opt_cycles,
    )
}

/// Locked access to one served query's coordination state: the server's
/// single mutex plus the query index, plugged into the coordinator's
/// shared [`trial_round`] / [`normal_round`] choreography.
struct QueryCoordRef<'s, 'a, 'p, 't> {
    state: &'s Mutex<ServerState<'a, 'p, 't>>,
    qid: usize,
}

impl<'a, 'p, 't> WithCoord<'a, ServeTarget<'p, 't>> for QueryCoordRef<'_, 'a, 'p, 't> {
    fn with<R>(&self, f: impl FnOnce(&mut CoordState<'a, ServeTarget<'p, 't>>) -> R) -> R {
        f(&mut self.state.lock().expect("coordination lock").queries[self.qid].coord)
    }
}
