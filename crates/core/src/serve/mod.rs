//! Multi-query serving: admission, priority scheduling, and cross-query
//! order reuse on the shared [`popt_cpu::CpuPool`].
//!
//! The paper optimizes one query at a time; a production system serves a
//! *stream* of them. This module layers a serving loop over the
//! morsel-driven parallel executor without touching the execution or
//! optimization machinery — the non-invasive theme, one level up:
//!
//! * [`server::QueryServer`] admits [`server::QuerySpec`]s (scan,
//!   pipeline, or compiled frontend program — see
//!   [`server::QuerySpec::from_plan`] — each with a [`server::Priority`]
//!   and an arrival time) and
//!   executes them as interleaved morsel streams over one pool. Each
//!   query keeps its own progressive coordination state — epoch-published
//!   orders, trial leasing, rejection memory — exactly as if it ran
//!   alone; the epoch mechanism already isolates per-query orders, so
//!   concurrency costs no new invariants.
//! * [`scheduler::StrideScheduler`] divides morsel slots across active
//!   queries in proportion to priority weights, with a starvation bound
//!   of one stride.
//! * [`cache::OrderCache`] keys each finished query's converged operator
//!   order and probe-clustering calibration by its workload signature
//!   (table + predicate/probe *structure*; literals are features, not
//!   identity), so a repeated query *template* — including a
//!   parameterized one whose literals slide between arrivals — starts
//!   from the last converged state instead of the textbook order — the
//!   paper's convergence win amortized across the workload.
//!
//! Results are bit-identical to solo single-core execution for every
//! admitted query, for any worker count, priority mix, or arrival
//! pattern: see `tests/proptest_serve.rs`.
//!
//! ```
//! use popt_core::plan::SelectionPlan;
//! use popt_core::predicate::{CompareOp, Predicate};
//! use popt_core::serve::{Priority, QueryServer, QuerySpec, ServeConfig};
//! use popt_cpu::{CpuConfig, CpuPool};
//! use popt_storage::{AddressSpace, ColumnData, Table};
//!
//! let mut space = AddressSpace::new();
//! let mut table = Table::new("t");
//! table.add_column(
//!     "a",
//!     ColumnData::I32((0..8192).map(|i| (i % 128) as i32).collect()),
//!     &mut space,
//! );
//! let plan =
//!     SelectionPlan::new(vec![Predicate::new("a", CompareOp::Lt, 50)], vec![]).unwrap();
//!
//! let mut server = QueryServer::new(ServeConfig::default());
//! server.admit(QuerySpec::scan("q0", &table, plan.clone(), vec![0], Priority::High, 0));
//! server.admit(QuerySpec::scan("q1", &table, plan, vec![0], Priority::Low, 10_000));
//!
//! let mut pool = CpuPool::new(CpuConfig::tiny_test(), 2);
//! let report = server.run(&mut pool).unwrap();
//! assert_eq!(report.queries.len(), 2);
//! assert_eq!(report.queries[0].qualified, 3200); // identical to solo
//! assert_eq!(report.queries[1].qualified, 3200);
//! assert_eq!(server.cache().len(), 1); // one template, now warm
//! ```

pub mod cache;
pub mod scheduler;
pub mod server;
mod target;

pub use cache::{
    CacheEntry, CacheStats, OrderCache, StageSignature, WarmRecordOutcome, WorkloadSignature,
};
pub use scheduler::StrideScheduler;
pub use server::{
    Priority, QueryKind, QueryOutcome, QueryServer, QuerySpec, ServeConfig, ServeReport,
};
