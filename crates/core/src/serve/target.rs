//! The uniform target type the server schedules: a served query is a
//! multi-selection scan, a mixed selection/join-filter pipeline, or a
//! compiled frontend program, and the scheduler must hold a
//! heterogeneous set of them in one collection. A closed enum (rather
//! than trait objects) keeps the [`ShardableTarget`] associated-type
//! machinery — and with it the zero-cost shard dispatch in the morsel
//! hot path — fully static.

use popt_cost::estimate::PlanGeometry;
use popt_cpu::{CpuConfig, SimCpu};
use popt_solver::{CalibrationSnapshot, SampledCounters};

use crate::error::EngineError;
use crate::exec::scan::VectorStats;
use crate::parallel::{CompiledShard, PipelineShard, ShardableTarget, TargetShard};
use crate::plan::Peo;
use crate::progressive::{CompiledTarget, PipelineTarget, ProgressiveTarget, ScanTarget};

/// A served query's master target: scan, pipeline, or compiled program.
pub(crate) enum ServeTarget<'p, 't> {
    Scan(ScanTarget<'p, 't>),
    Pipeline(PipelineTarget<'p, 't>),
    Compiled(CompiledTarget<'p, 't>),
}

impl ProgressiveTarget for ServeTarget<'_, '_> {
    fn rows(&self) -> usize {
        match self {
            Self::Scan(t) => t.rows(),
            Self::Pipeline(t) => t.rows(),
            Self::Compiled(t) => t.rows(),
        }
    }

    fn order(&self) -> Peo {
        match self {
            Self::Scan(t) => ProgressiveTarget::order(t),
            Self::Pipeline(t) => ProgressiveTarget::order(t),
            Self::Compiled(t) => ProgressiveTarget::order(t),
        }
    }

    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        match self {
            Self::Scan(t) => ProgressiveTarget::set_order(t, order),
            Self::Pipeline(t) => ProgressiveTarget::set_order(t, order),
            Self::Compiled(t) => ProgressiveTarget::set_order(t, order),
        }
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        match self {
            Self::Scan(t) => ProgressiveTarget::run_range(t, cpu, start, end),
            Self::Pipeline(t) => ProgressiveTarget::run_range(t, cpu, start, end),
            Self::Compiled(t) => ProgressiveTarget::run_range(t, cpu, start, end),
        }
    }

    fn plan_geometry(&self, n_input: u64, cpu: &CpuConfig, llc_bytes: u64) -> PlanGeometry {
        match self {
            Self::Scan(t) => t.plan_geometry(n_input, cpu, llc_bytes),
            Self::Pipeline(t) => t.plan_geometry(n_input, cpu, llc_bytes),
            Self::Compiled(t) => t.plan_geometry(n_input, cpu, llc_bytes),
        }
    }

    fn hot_set_bytes(&self) -> u64 {
        match self {
            Self::Scan(t) => t.hot_set_bytes(),
            Self::Pipeline(t) => t.hot_set_bytes(),
            Self::Compiled(t) => t.hot_set_bytes(),
        }
    }

    fn propose_order(&self, geom: &PlanGeometry, selectivities: &[f64]) -> Peo {
        match self {
            Self::Scan(t) => t.propose_order(geom, selectivities),
            Self::Pipeline(t) => t.propose_order(geom, selectivities),
            Self::Compiled(t) => t.propose_order(geom, selectivities),
        }
    }

    fn calibrate(&mut self, geom: &PlanGeometry, sampled: &SampledCounters, survivors: &[f64]) {
        match self {
            Self::Scan(t) => t.calibrate(geom, sampled, survivors),
            Self::Pipeline(t) => t.calibrate(geom, sampled, survivors),
            Self::Compiled(t) => t.calibrate(geom, sampled, survivors),
        }
    }

    fn take_probe_order(&mut self) -> Option<Peo> {
        match self {
            Self::Scan(t) => t.take_probe_order(),
            Self::Pipeline(t) => t.take_probe_order(),
            Self::Compiled(t) => t.take_probe_order(),
        }
    }

    fn wants_trial_calibration(&self) -> bool {
        match self {
            Self::Scan(t) => t.wants_trial_calibration(),
            Self::Pipeline(t) => t.wants_trial_calibration(),
            Self::Compiled(t) => t.wants_trial_calibration(),
        }
    }

    fn calibration_snapshot(&self) -> Option<CalibrationSnapshot> {
        match self {
            Self::Scan(t) => t.calibration_snapshot(),
            Self::Pipeline(t) => t.calibration_snapshot(),
            Self::Compiled(t) => t.calibration_snapshot(),
        }
    }

    fn restore_calibration(&mut self, snapshot: &CalibrationSnapshot) {
        match self {
            Self::Scan(t) => t.restore_calibration(snapshot),
            Self::Pipeline(t) => t.restore_calibration(snapshot),
            Self::Compiled(t) => t.restore_calibration(snapshot),
        }
    }
}

/// A worker's private executor for one served query.
pub(crate) enum ServeShard<'p, 't> {
    Scan(ScanTarget<'p, 't>),
    Pipeline(PipelineShard<'t>),
    Compiled(CompiledShard<'t>),
}

impl TargetShard for ServeShard<'_, '_> {
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        match self {
            Self::Scan(s) => TargetShard::set_order(s, order),
            Self::Pipeline(s) => TargetShard::set_order(s, order),
            Self::Compiled(s) => TargetShard::set_order(s, order),
        }
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        match self {
            Self::Scan(s) => TargetShard::run_range(s, cpu, start, end),
            Self::Pipeline(s) => TargetShard::run_range(s, cpu, start, end),
            Self::Compiled(s) => TargetShard::run_range(s, cpu, start, end),
        }
    }
}

impl<'p, 't> ShardableTarget for ServeTarget<'p, 't> {
    type Shard = ServeShard<'p, 't>;

    fn shard(&self) -> Result<Self::Shard, EngineError> {
        Ok(match self {
            Self::Scan(t) => ServeShard::Scan(t.shard()?),
            Self::Pipeline(t) => ServeShard::Pipeline(t.shard()?),
            Self::Compiled(t) => ServeShard::Compiled(t.shard()?),
        })
    }
}
