//! Cross-query order/calibration cache.
//!
//! A serving workload repeats query *templates*: the same table, the
//! same predicate/probe set, different arrival times. The progressive
//! loop converges each instance to the same operator order and the same
//! probe-clustering calibration — so re-deriving them from the textbook
//! order on every arrival wastes exactly the convergence overhead the
//! paper measures. The cache keys a finished query's converged state by
//! its **workload signature** (the structural identity of its stage
//! set, independent of the evaluation order the instance happened to
//! start or finish in) and seeds the next instance of the template with
//! it.
//!
//! A warm start is a *prior*, never a promise: the seeded order still
//! runs under full progressive supervision (sampling, trials, revert on
//! regression), so a stale cache entry — data drifted, literal tweaked
//! into a new signature, plain collision — costs at most the same
//! convergence the cold start would have paid. Correctness is never at
//! stake: operator orders cannot change query results.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use popt_solver::CalibrationSnapshot;
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::program::CompiledProgram;
use crate::plan::{Peo, SelectionPlan};
use crate::predicate::{CompareOp, Predicate};

/// Structural identity of one pipeline stage, in *plan* order — what the
/// stage computes and which simulated columns it touches, independent of
/// where the evaluation order currently places it. Deliberately
/// **literal-free**: a converged operator order and probe calibration are
/// properties of the stage *shapes* (which columns stream, which
/// dimensions probe), so a parameterized template — the same query with a
/// sliding literal — keeps one cache identity. The literals live next to
/// the signature as a feature vector ([`WorkloadSignature::literals`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StageSignature {
    /// A predicate on a fact-table column.
    Select {
        /// Simulated base address of the predicate column (column
        /// identity across queries over the same stored table).
        base: u64,
        /// Comparison operator.
        op: CompareOp,
        /// Extra per-evaluation instructions (expensive predicates).
        extra_instructions: u64,
    },
    /// A foreign-key join filter.
    Join {
        /// Base address of the FK column on the fact table.
        fk_base: u64,
        /// Base address of the probed dimension payload.
        dim_base: u64,
        /// Rows of the probed dimension.
        dim_rows: usize,
        /// Comparison operator applied to the probed payload.
        op: CompareOp,
    },
}

/// A query template's identity: the scanned row count plus the plan-order
/// stage set. Two queries share a signature exactly when they run the
/// same stage *structure* over the same stored columns — the unit of
/// order reuse. Literals ride along as features but do not participate
/// in equality or hashing, so instances of a parameterized template
/// (`val < 500`, `val < 501`, …) warm-hit each other while any structural
/// change — a different column, operator, or dimension — still misses.
#[derive(Debug, Clone)]
pub struct WorkloadSignature {
    rows: usize,
    stages: Vec<StageSignature>,
    literals: Vec<i64>,
}

impl PartialEq for WorkloadSignature {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.stages == other.stages
    }
}

impl Eq for WorkloadSignature {}

impl Hash for WorkloadSignature {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Literals are features, not identity: keep the hash consistent
        // with the structural equality above.
        self.rows.hash(state);
        self.stages.hash(state);
    }
}

impl WorkloadSignature {
    /// Signature of a multi-selection scan over `table`.
    pub fn of_scan(table: &Table, plan: &SelectionPlan) -> Result<Self, EngineError> {
        let stages = plan
            .predicates
            .iter()
            .map(|p: &Predicate| {
                let col = table
                    .column(&p.column)
                    .ok_or_else(|| EngineError::UnknownColumn(p.column.clone()))?;
                Ok(StageSignature::Select {
                    base: col.base_addr(),
                    op: p.op,
                    extra_instructions: p.extra_instructions,
                })
            })
            .collect::<Result<Vec<_>, EngineError>>()?;
        Ok(Self {
            rows: table.rows(),
            stages,
            literals: plan.predicates.iter().map(|p| p.literal).collect(),
        })
    }

    /// Signature of a filter pipeline, taken over the stages in plan
    /// (construction) order so it is invariant under reordering.
    pub fn of_pipeline(pipeline: &Pipeline<'_>) -> Self {
        let stages = (0..pipeline.len())
            .map(|j| {
                let op = pipeline.op(j);
                match op.dim_rows() {
                    Some(dim_rows) => StageSignature::Join {
                        fk_base: op.column_base(),
                        dim_base: op.dim_base().expect("joins have a dimension"),
                        dim_rows,
                        op: op.compare_op(),
                    },
                    None => StageSignature::Select {
                        base: op.column_base(),
                        op: op.compare_op(),
                        extra_instructions: op.extra_instructions(),
                    },
                }
            })
            .collect();
        Self {
            rows: pipeline.rows(),
            stages,
            literals: (0..pipeline.len())
                .map(|j| pipeline.op(j).literal())
                .collect(),
        }
    }

    /// Signature of a compiled program, taken over the stages in plan
    /// (lowering) order so it is invariant under reordering.
    pub fn of_compiled(program: &CompiledProgram<'_>) -> Self {
        let stages = (0..program.len())
            .map(|j| {
                let stage = program.stage(j);
                match stage.dim_rows() {
                    Some(dim_rows) => StageSignature::Join {
                        fk_base: stage.column_base(),
                        dim_base: stage.dim_base().expect("joins have a dimension"),
                        dim_rows,
                        op: stage.compare_op(),
                    },
                    None => StageSignature::Select {
                        base: stage.column_base(),
                        op: stage.compare_op(),
                        extra_instructions: stage.extra_instructions(),
                    },
                }
            })
            .collect();
        Self {
            rows: program.rows(),
            stages,
            literals: (0..program.len())
                .map(|j| program.stage(j).literal())
                .collect(),
        }
    }

    /// Number of plan stages in the signature.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// The per-stage literal operands, in plan order — the template's
    /// parameter feature vector (not part of its identity).
    pub fn literals(&self) -> &[i64] {
        &self.literals
    }
}

/// What the cache remembers about a converged template.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The operator order the last instance converged to (plan indices).
    pub order: Peo,
    /// The last instance's probe-clustering calibration (`None` for
    /// targets that learn nothing at runtime, e.g. plain scans).
    pub calibration: Option<CalibrationSnapshot>,
    /// Warm lookups served so far.
    pub hits: u64,
    /// Times the entry was (re-)recorded by a finishing query.
    pub updates: u64,
    /// Consecutive warm completions whose converged order diverged from
    /// the order they were seeded with. Reaching the cache's staleness
    /// threshold evicts the entry: a template whose warm starts keep
    /// getting re-reordered is tracking drifted data, and replaying its
    /// order only buys each instance a failed trial.
    pub diverged_streak: u32,
}

/// Consecutive divergent warm completions after which a template entry
/// is dropped (see [`OrderCache::with_stale_after`]).
pub const STALE_AFTER_DEFAULT: u32 = 3;

/// What [`OrderCache::record_warm`] observed about a warm completion —
/// the cache's lifecycle decisions, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmRecordOutcome {
    /// The completion converged away from the template's current order.
    pub diverged: bool,
    /// The divergence streak reached the staleness bound: entry dropped.
    pub evicted: bool,
}

/// Cumulative lifecycle counters for an [`OrderCache`]: every lookup,
/// record, divergence, eviction, and streak reset since construction.
/// Feed them into a metrics registry with [`OrderCache::record_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Warm-start lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing (or a malformed entry).
    pub misses: u64,
    /// Cold completions recorded.
    pub cold_records: u64,
    /// Warm completions recorded.
    pub warm_records: u64,
    /// Warm completions that diverged from the template's current order.
    pub divergences: u64,
    /// Entries evicted by a divergence streak reaching the bound.
    pub evictions: u64,
    /// Cold records that discarded a non-zero divergence streak — the
    /// formerly silent reset-on-cold, now counted.
    pub cold_streak_resets: u64,
}

impl CacheStats {
    /// Warm-hit rate over all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cross-query order/calibration cache a [`crate::serve::QueryServer`]
/// carries between runs.
#[derive(Debug)]
pub struct OrderCache {
    entries: HashMap<WorkloadSignature, CacheEntry>,
    stale_after: u32,
    stats: CacheStats,
}

impl Default for OrderCache {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderCache {
    /// An empty cache with the default staleness threshold.
    pub fn new() -> Self {
        Self::with_stale_after(STALE_AFTER_DEFAULT)
    }

    /// An empty cache evicting a template after `stale_after` consecutive
    /// divergent warm completions (`0` is clamped to `1`: an entry that
    /// diverges every time is pure overhead and must not be immortal).
    pub fn with_stale_after(stale_after: u32) -> Self {
        Self {
            entries: HashMap::new(),
            stale_after: stale_after.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no templates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative lifecycle counters since construction.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Feed the cache's lifecycle counters and current occupancy into a
    /// metrics registry.
    pub fn record_metrics(&self, reg: &mut popt_obs::MetricsRegistry) {
        let s = &self.stats;
        reg.inc("cache.hits", s.hits);
        reg.inc("cache.misses", s.misses);
        reg.inc("cache.cold_records", s.cold_records);
        reg.inc("cache.warm_records", s.warm_records);
        reg.inc("cache.divergences", s.divergences);
        reg.inc("cache.evictions", s.evictions);
        reg.inc("cache.cold_streak_resets", s.cold_streak_resets);
        reg.set_gauge("cache.hit_rate", s.hit_rate());
        reg.set_gauge("cache.entries", self.entries.len() as f64);
        let max_streak = self
            .entries
            .values()
            .map(|e| e.diverged_streak)
            .max()
            .unwrap_or(0);
        reg.set_gauge("cache.max_diverged_streak", max_streak as f64);
    }

    /// Warm-start lookup: the entry for `signature`, if one exists whose
    /// order still fits a plan of `signature.stages()` stages (a
    /// malformed entry degrades to a cold start instead of erroring).
    /// Counts a hit.
    pub fn lookup(&mut self, signature: &WorkloadSignature) -> Option<CacheEntry> {
        let found = self.entries.get_mut(signature).and_then(|entry| {
            if !crate::plan::is_valid_peo(&entry.order, signature.stages()) {
                return None;
            }
            entry.hits += 1;
            Some(entry.clone())
        });
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Record a *cold-started* query's converged order (and calibration)
    /// under its signature, creating or refreshing the template entry. A
    /// cold convergence is fresh knowledge, so any divergence streak the
    /// template had accumulated resets — observably: the returned value
    /// is the streak that was discarded (0 for a fresh or clean entry),
    /// and a non-zero discard counts in
    /// [`CacheStats::cold_streak_resets`].
    pub fn record(
        &mut self,
        signature: WorkloadSignature,
        order: Peo,
        calibration: Option<CalibrationSnapshot>,
    ) -> u32 {
        self.stats.cold_records += 1;
        let entry = self.entries.entry(signature).or_insert(CacheEntry {
            order: Vec::new(),
            calibration: None,
            hits: 0,
            updates: 0,
            diverged_streak: 0,
        });
        let discarded_streak = entry.diverged_streak;
        entry.order = order;
        entry.calibration = calibration;
        entry.updates += 1;
        entry.diverged_streak = 0;
        if discarded_streak > 0 {
            self.stats.cold_streak_resets += 1;
        }
        discarded_streak
    }

    /// Record a *warm-started* query's completion, converged to `order`.
    /// Divergence is judged against the entry's **current** order — the
    /// template's latest belief, which a faster template mate may have
    /// refreshed since this instance was seeded — not the instance's own
    /// (possibly outdated) seed: once the template has settled on a new
    /// optimum, later completions that agree with it clear the streak
    /// instead of ganging up to evict a stable entry. A warm run that
    /// confirms the current order refreshes the entry; one that was
    /// re-reordered away from it counts against the template, and the
    /// configured number of **consecutive** divergent warm runs evicts
    /// it — the next instance starts cold and re-learns. The returned
    /// [`WarmRecordOutcome`] says what the cache decided.
    pub fn record_warm(
        &mut self,
        signature: WorkloadSignature,
        order: Peo,
        calibration: Option<CalibrationSnapshot>,
    ) -> WarmRecordOutcome {
        self.stats.warm_records += 1;
        let Some(entry) = self.entries.get_mut(&signature) else {
            // The entry vanished between seeding and completion (e.g. a
            // concurrent eviction): the converged order is still the
            // latest knowledge, and it starts a fresh streak history.
            let entry = self.entries.entry(signature).or_insert(CacheEntry {
                order: Vec::new(),
                calibration: None,
                hits: 0,
                updates: 0,
                diverged_streak: 0,
            });
            entry.order = order;
            entry.calibration = calibration;
            entry.updates += 1;
            entry.diverged_streak = 0;
            return WarmRecordOutcome::default();
        };
        if order == entry.order {
            entry.calibration = calibration;
            entry.updates += 1;
            entry.diverged_streak = 0;
            return WarmRecordOutcome::default();
        }
        self.stats.divergences += 1;
        entry.diverged_streak += 1;
        if entry.diverged_streak >= self.stale_after {
            self.entries.remove(&signature);
            self.stats.evictions += 1;
            return WarmRecordOutcome {
                diverged: true,
                evicted: true,
            };
        }
        // Keep the streak but refresh the payload: if the data merely
        // moved to a *new* stable order, the next warm run converges
        // where it starts (and matches the entry) and the streak clears.
        entry.order = order;
        entry.calibration = calibration;
        entry.updates += 1;
        WarmRecordOutcome {
            diverged: true,
            evicted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn table() -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1; 64]), &mut space);
        t.add_column("b", ColumnData::I32(vec![2; 64]), &mut space);
        t
    }

    fn plan(literal: i64) -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("a", CompareOp::Lt, literal),
                Predicate::new("b", CompareOp::Ge, 7),
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn signature_treats_literals_as_features_not_identity() {
        let t = table();
        let a = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let same = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let slid = WorkloadSignature::of_scan(&t, &plan(11)).unwrap();
        assert_eq!(a, same);
        assert_eq!(
            a, slid,
            "a tweaked literal is the same parameterized template"
        );
        assert_eq!(a.literals(), &[10, 7]);
        assert_eq!(slid.literals(), &[11, 7], "literals still ride along");
        // A structural change — different operator — is a different
        // template even with identical literals.
        let structural = SelectionPlan::new(
            vec![
                Predicate::new("a", CompareOp::Ge, 10),
                Predicate::new("b", CompareOp::Ge, 7),
            ],
            vec![],
        )
        .unwrap();
        let other = WorkloadSignature::of_scan(&t, &structural).unwrap();
        assert_ne!(a, other, "operator change must miss the template");
        assert_eq!(a.stages(), 2);
    }

    #[test]
    fn compiled_signature_matches_the_pipeline_signature() {
        use crate::exec::pipeline::{FilterOp, Pipeline};
        use crate::plan::PlanBuilder;
        let t = table();
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("p", ColumnData::I32(vec![0; 4]), &mut dim_space);
        let sel = FilterOp::select(&t, "a", CompareOp::Lt, 10, 0, 0).unwrap();
        let join = FilterOp::join_filter(&t, "b", &dim, "p", CompareOp::Eq, 0, 1, 100).unwrap();
        let pipeline = Pipeline::new(vec![sel, join], t.rows()).unwrap();
        let plan = PlanBuilder::scan(&t)
            .filter(crate::plan::Expr::col("a").less_than(10))
            .join(&dim, "b", crate::plan::Expr::col("p").equal_to(0))
            .build();
        let program = plan.compile().unwrap();
        assert_eq!(
            WorkloadSignature::of_pipeline(&pipeline),
            WorkloadSignature::of_compiled(&program),
            "a compiled plan and the equivalent hand-built pipeline share a template"
        );
    }

    #[test]
    fn scan_signature_rejects_unknown_columns() {
        let t = table();
        let bad =
            SelectionPlan::new(vec![Predicate::new("zzz", CompareOp::Lt, 1)], vec![]).unwrap();
        assert!(matches!(
            WorkloadSignature::of_scan(&t, &bad).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn pipeline_signature_is_order_invariant() {
        use crate::exec::pipeline::{FilterOp, Pipeline};
        let t = table();
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("p", ColumnData::I32(vec![0; 4]), &mut dim_space);
        let build = || {
            let sel = FilterOp::select(&t, "a", CompareOp::Lt, 10, 0, 0).unwrap();
            let join = FilterOp::join_filter(&t, "b", &dim, "p", CompareOp::Eq, 0, 1, 100);
            // "b" holds 2s — valid keys into the 4-row dimension.
            Pipeline::new(vec![sel, join.unwrap()], t.rows()).unwrap()
        };
        let in_plan_order = WorkloadSignature::of_pipeline(&build());
        let mut reordered = build();
        reordered.reorder(&[1, 0]).unwrap();
        assert_eq!(
            in_plan_order,
            WorkloadSignature::of_pipeline(&reordered),
            "signature must not depend on the evaluation order"
        );
    }

    #[test]
    fn cache_roundtrip_counts_hits_and_updates() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&sig).is_none());
        cache.record(sig.clone(), vec![1, 0], None);
        assert_eq!(cache.len(), 1);
        let entry = cache.lookup(&sig).expect("warm hit");
        assert_eq!(entry.order, vec![1, 0]);
        assert_eq!(entry.updates, 1);
        cache.record(sig.clone(), vec![0, 1], None);
        let entry = cache.lookup(&sig).expect("warm hit");
        assert_eq!(entry.order, vec![0, 1]);
        assert_eq!(entry.updates, 2);
        assert_eq!(entry.hits, 2);
    }

    #[test]
    fn consecutive_divergent_warm_runs_evict_the_template() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::with_stale_after(3);
        cache.record(sig.clone(), vec![0, 1], None);
        // Two flip-flopping warm completions (each diverging from the
        // entry's then-current order): entry survives, payload tracks
        // the latest converged order.
        let outcome = cache.record_warm(sig.clone(), vec![1, 0], None);
        assert!(outcome.diverged && !outcome.evicted);
        assert_eq!(cache.lookup(&sig).unwrap().order, vec![1, 0]);
        assert!(!cache.record_warm(sig.clone(), vec![0, 1], None).evicted);
        assert_eq!(cache.lookup(&sig).unwrap().diverged_streak, 2);
        // Third consecutive divergence: evicted, next lookup is cold.
        let outcome = cache.record_warm(sig.clone(), vec![1, 0], None);
        assert!(outcome.diverged && outcome.evicted);
        assert!(cache.lookup(&sig).is_none(), "stale template must drop");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().divergences, 3);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().warm_records, 3);
    }

    #[test]
    fn converging_warm_run_clears_the_divergence_streak() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::with_stale_after(2);
        cache.record(sig.clone(), vec![0, 1], None);
        assert!(cache.record_warm(sig.clone(), vec![1, 0], None).diverged);
        assert_eq!(cache.lookup(&sig).unwrap().diverged_streak, 1);
        // The next warm run confirms the entry's (updated) order: the
        // streak is not consecutive any more and resets, so the template
        // stays alive indefinitely.
        assert!(!cache.record_warm(sig.clone(), vec![1, 0], None).diverged);
        assert_eq!(cache.lookup(&sig).unwrap().diverged_streak, 0);
        assert!(!cache.record_warm(sig.clone(), vec![0, 1], None).evicted);
        assert!(
            cache.lookup(&sig).is_some(),
            "a single divergence after a reset must not evict"
        );
        // A cold re-record also clears the streak — and says so: the
        // discarded streak comes back instead of silently vanishing.
        assert_eq!(cache.record(sig.clone(), vec![0, 1], None), 1);
        assert_eq!(cache.lookup(&sig).unwrap().diverged_streak, 0);
        assert_eq!(cache.stats().cold_streak_resets, 1);
        // A cold record over a clean entry discards nothing.
        assert_eq!(cache.record(sig.clone(), vec![0, 1], None), 0);
        assert_eq!(cache.stats().cold_streak_resets, 1);
    }

    #[test]
    fn template_that_stabilizes_on_a_new_optimum_is_not_evicted() {
        // Data drifts once; several in-flight instances were all seeded
        // with the stale order but all converge to the same new one. The
        // first completion moves the entry; the rest *agree* with the
        // moved entry (divergence is judged against the template's
        // current belief, not each instance's outdated seed), so the
        // stabilized template survives any number of such completions.
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::with_stale_after(3);
        cache.record(sig.clone(), vec![0, 1], None);
        for _ in 0..5 {
            assert!(!cache.record_warm(sig.clone(), vec![1, 0], None).evicted);
        }
        let entry = cache.lookup(&sig).expect("stable template survives");
        assert_eq!(entry.order, vec![1, 0]);
        assert_eq!(entry.diverged_streak, 0, "agreement clears the streak");
    }

    #[test]
    fn stats_track_lookups_and_render_into_the_registry() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::new();
        assert!(cache.lookup(&sig).is_none());
        cache.record(sig.clone(), vec![1, 0], None);
        assert!(cache.lookup(&sig).is_some());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
        let mut reg = popt_obs::MetricsRegistry::new();
        cache.record_metrics(&mut reg);
        assert_eq!(reg.counter("cache.hits"), 1);
        assert_eq!(reg.counter("cache.cold_records"), 1);
        assert_eq!(reg.gauge("cache.entries"), Some(1.0));
        assert_eq!(reg.gauge("cache.hit_rate"), Some(0.5));
    }

    #[test]
    fn malformed_cached_order_degrades_to_cold() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::new();
        cache.record(sig.clone(), vec![0, 0], None); // not a permutation
        assert!(
            cache.lookup(&sig).is_none(),
            "bad order must not warm-start"
        );
        cache.record(sig.clone(), vec![0], None); // wrong arity
        assert!(cache.lookup(&sig).is_none());
    }
}
