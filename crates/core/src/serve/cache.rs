//! Cross-query order/calibration cache.
//!
//! A serving workload repeats query *templates*: the same table, the
//! same predicate/probe set, different arrival times. The progressive
//! loop converges each instance to the same operator order and the same
//! probe-clustering calibration — so re-deriving them from the textbook
//! order on every arrival wastes exactly the convergence overhead the
//! paper measures. The cache keys a finished query's converged state by
//! its **workload signature** (the structural identity of its stage
//! set, independent of the evaluation order the instance happened to
//! start or finish in) and seeds the next instance of the template with
//! it.
//!
//! A warm start is a *prior*, never a promise: the seeded order still
//! runs under full progressive supervision (sampling, trials, revert on
//! regression), so a stale cache entry — data drifted, literal tweaked
//! into a new signature, plain collision — costs at most the same
//! convergence the cold start would have paid. Correctness is never at
//! stake: operator orders cannot change query results.

use std::collections::HashMap;

use popt_solver::CalibrationSnapshot;
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::plan::{Peo, SelectionPlan};
use crate::predicate::{CompareOp, Predicate};

/// Structural identity of one pipeline stage, in *plan* order — what the
/// stage computes and which simulated columns it touches, independent of
/// where the evaluation order currently places it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StageSignature {
    /// A predicate on a fact-table column.
    Select {
        /// Simulated base address of the predicate column (column
        /// identity across queries over the same stored table).
        base: u64,
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
        /// Extra per-evaluation instructions (expensive predicates).
        extra_instructions: u64,
    },
    /// A foreign-key join filter.
    Join {
        /// Base address of the FK column on the fact table.
        fk_base: u64,
        /// Base address of the probed dimension payload.
        dim_base: u64,
        /// Rows of the probed dimension.
        dim_rows: usize,
        /// Comparison operator applied to the probed payload.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
    },
}

/// A query template's identity: the scanned row count plus the plan-order
/// stage set. Two queries share a signature exactly when they run the
/// same stages over the same stored columns — the unit of order reuse.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadSignature {
    rows: usize,
    stages: Vec<StageSignature>,
}

impl WorkloadSignature {
    /// Signature of a multi-selection scan over `table`.
    pub fn of_scan(table: &Table, plan: &SelectionPlan) -> Result<Self, EngineError> {
        let stages = plan
            .predicates
            .iter()
            .map(|p: &Predicate| {
                let col = table
                    .column(&p.column)
                    .ok_or_else(|| EngineError::UnknownColumn(p.column.clone()))?;
                Ok(StageSignature::Select {
                    base: col.base_addr(),
                    op: p.op,
                    literal: p.literal,
                    extra_instructions: p.extra_instructions,
                })
            })
            .collect::<Result<Vec<_>, EngineError>>()?;
        Ok(Self {
            rows: table.rows(),
            stages,
        })
    }

    /// Signature of a filter pipeline, taken over the stages in plan
    /// (construction) order so it is invariant under reordering.
    pub fn of_pipeline(pipeline: &Pipeline<'_>) -> Self {
        let stages = (0..pipeline.len())
            .map(|j| {
                let op = pipeline.op(j);
                match op.dim_rows() {
                    Some(dim_rows) => StageSignature::Join {
                        fk_base: op.column_base(),
                        dim_base: op.dim_base().expect("joins have a dimension"),
                        dim_rows,
                        op: op.compare_op(),
                        literal: op.literal(),
                    },
                    None => StageSignature::Select {
                        base: op.column_base(),
                        op: op.compare_op(),
                        literal: op.literal(),
                        extra_instructions: op.extra_instructions(),
                    },
                }
            })
            .collect();
        Self {
            rows: pipeline.rows(),
            stages,
        }
    }

    /// Number of plan stages in the signature.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }
}

/// What the cache remembers about a converged template.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The operator order the last instance converged to (plan indices).
    pub order: Peo,
    /// The last instance's probe-clustering calibration (`None` for
    /// targets that learn nothing at runtime, e.g. plain scans).
    pub calibration: Option<CalibrationSnapshot>,
    /// Warm lookups served so far.
    pub hits: u64,
    /// Times the entry was (re-)recorded by a finishing query.
    pub updates: u64,
}

/// The cross-query order/calibration cache a [`crate::serve::QueryServer`]
/// carries between runs.
#[derive(Debug, Default)]
pub struct OrderCache {
    entries: HashMap<WorkloadSignature, CacheEntry>,
}

impl OrderCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no templates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Warm-start lookup: the entry for `signature`, if one exists whose
    /// order still fits a plan of `signature.stages()` stages (a
    /// malformed entry degrades to a cold start instead of erroring).
    /// Counts a hit.
    pub fn lookup(&mut self, signature: &WorkloadSignature) -> Option<CacheEntry> {
        let entry = self.entries.get_mut(signature)?;
        if !crate::plan::is_valid_peo(&entry.order, signature.stages()) {
            return None;
        }
        entry.hits += 1;
        Some(entry.clone())
    }

    /// Record a finished query's converged order (and calibration) under
    /// its signature, creating or refreshing the template entry.
    pub fn record(
        &mut self,
        signature: WorkloadSignature,
        order: Peo,
        calibration: Option<CalibrationSnapshot>,
    ) {
        let entry = self.entries.entry(signature).or_insert(CacheEntry {
            order: Vec::new(),
            calibration: None,
            hits: 0,
            updates: 0,
        });
        entry.order = order;
        entry.calibration = calibration;
        entry.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn table() -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1; 64]), &mut space);
        t.add_column("b", ColumnData::I32(vec![2; 64]), &mut space);
        t
    }

    fn plan(literal: i64) -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("a", CompareOp::Lt, literal),
                Predicate::new("b", CompareOp::Ge, 7),
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn scan_signature_distinguishes_literals_and_matches_itself() {
        let t = table();
        let a = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let same = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let other = WorkloadSignature::of_scan(&t, &plan(11)).unwrap();
        assert_eq!(a, same);
        assert_ne!(a, other, "a tweaked literal is a different template");
        assert_eq!(a.stages(), 2);
    }

    #[test]
    fn scan_signature_rejects_unknown_columns() {
        let t = table();
        let bad =
            SelectionPlan::new(vec![Predicate::new("zzz", CompareOp::Lt, 1)], vec![]).unwrap();
        assert!(matches!(
            WorkloadSignature::of_scan(&t, &bad).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn pipeline_signature_is_order_invariant() {
        use crate::exec::pipeline::{FilterOp, Pipeline};
        let t = table();
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("p", ColumnData::I32(vec![0; 4]), &mut dim_space);
        let build = || {
            let sel = FilterOp::select(&t, "a", CompareOp::Lt, 10, 0, 0).unwrap();
            let join = FilterOp::join_filter(&t, "b", &dim, "p", CompareOp::Eq, 0, 1, 100);
            // "b" holds 2s — valid keys into the 4-row dimension.
            Pipeline::new(vec![sel, join.unwrap()], t.rows()).unwrap()
        };
        let in_plan_order = WorkloadSignature::of_pipeline(&build());
        let mut reordered = build();
        reordered.reorder(&[1, 0]).unwrap();
        assert_eq!(
            in_plan_order,
            WorkloadSignature::of_pipeline(&reordered),
            "signature must not depend on the evaluation order"
        );
    }

    #[test]
    fn cache_roundtrip_counts_hits_and_updates() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&sig).is_none());
        cache.record(sig.clone(), vec![1, 0], None);
        assert_eq!(cache.len(), 1);
        let entry = cache.lookup(&sig).expect("warm hit");
        assert_eq!(entry.order, vec![1, 0]);
        assert_eq!(entry.updates, 1);
        cache.record(sig.clone(), vec![0, 1], None);
        let entry = cache.lookup(&sig).expect("warm hit");
        assert_eq!(entry.order, vec![0, 1]);
        assert_eq!(entry.updates, 2);
        assert_eq!(entry.hits, 2);
    }

    #[test]
    fn malformed_cached_order_degrades_to_cold() {
        let t = table();
        let sig = WorkloadSignature::of_scan(&t, &plan(10)).unwrap();
        let mut cache = OrderCache::new();
        cache.record(sig.clone(), vec![0, 0], None); // not a permutation
        assert!(
            cache.lookup(&sig).is_none(),
            "bad order must not warm-start"
        );
        cache.record(sig.clone(), vec![0], None); // wrong arity
        assert!(cache.lookup(&sig).is_none());
    }
}
