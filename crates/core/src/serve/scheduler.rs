//! Stride scheduling across active queries.
//!
//! Every admitted query holds a *stride* inversely proportional to its
//! priority weight and a *pass* value that advances by the stride each
//! time the query is scheduled. A worker asking for work receives the
//! eligible query with the minimum pass — over time each query's share
//! of morsel slots converges to `weight / Σ weights`, the classic
//! proportional-share guarantee, with worst-case service delay bounded
//! by one stride (no query starves, however low its weight).
//!
//! New arrivals are admitted at the scheduler's *global pass* (the pass
//! of the most recently scheduled query), so a late query neither
//! monopolizes the pool to "catch up" on slots it never owned, nor
//! waits behind the backlog of passes the incumbents already spent.

/// The pass increment of a weight-1 query. Large enough that integer
/// division by any sane weight keeps fine-grained ratios exact.
const STRIDE_ONE: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pass: u64,
    stride: u64,
}

/// Proportional-share scheduler over query ids `0..capacity`.
#[derive(Debug, Default)]
pub struct StrideScheduler {
    entries: Vec<Option<Entry>>,
    global_pass: u64,
}

impl StrideScheduler {
    /// A scheduler able to hold query ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: vec![None; capacity],
            global_pass: 0,
        }
    }

    /// Admit query `id` with the given priority `weight` (≥ 1; higher
    /// weight ⇒ proportionally more morsel slots). Starts at the global
    /// pass so incumbents keep their shares.
    pub fn admit(&mut self, id: usize, weight: u64) {
        assert!(id < self.entries.len(), "query id beyond capacity");
        assert!(weight >= 1, "priority weight must be at least 1");
        self.entries[id] = Some(Entry {
            pass: self.global_pass,
            stride: STRIDE_ONE / weight.min(STRIDE_ONE),
        });
    }

    /// Remove a finished (or cancelled) query from scheduling.
    pub fn retire(&mut self, id: usize) {
        self.entries[id] = None;
    }

    /// Whether `id` is currently admitted.
    pub fn is_active(&self, id: usize) -> bool {
        self.entries.get(id).is_some_and(Option::is_some)
    }

    /// Number of admitted queries.
    pub fn active(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Pick the eligible admitted query with the minimum pass (ties
    /// break toward the lower id, deterministically) and charge it one
    /// slot. `eligible` lets the caller exclude admitted queries that
    /// momentarily have no claimable work.
    pub fn pick(&mut self, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let id = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(id, e)| e.map(|e| (id, e)))
            .filter(|&(id, _)| eligible(id))
            .min_by_key(|&(id, e)| (e.pass, id))
            .map(|(id, _)| id)?;
        let entry = self.entries[id].as_mut().expect("picked entry is active");
        self.global_pass = entry.pass;
        entry.pass += entry.stride;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_proportional_to_weights() {
        let mut s = StrideScheduler::new(2);
        s.admit(0, 3);
        s.admit(1, 1);
        let mut picks = [0usize; 2];
        for _ in 0..400 {
            picks[s.pick(|_| true).unwrap()] += 1;
        }
        // 3:1 over 400 slots = 300/100, exact up to one stride boundary.
        assert!((299..=301).contains(&picks[0]), "{picks:?}");
        assert!((99..=101).contains(&picks[1]), "{picks:?}");
    }

    #[test]
    fn low_weight_queries_never_starve() {
        let mut s = StrideScheduler::new(2);
        s.admit(0, 16);
        s.admit(1, 1);
        let mut gap = 0usize;
        let mut worst = 0usize;
        for _ in 0..1000 {
            if s.pick(|_| true).unwrap() == 1 {
                worst = worst.max(gap);
                gap = 0;
            } else {
                gap += 1;
            }
        }
        assert!(worst <= 16, "weight-1 query waited {worst} slots");
    }

    #[test]
    fn late_admission_does_not_monopolize() {
        let mut s = StrideScheduler::new(2);
        s.admit(0, 1);
        for _ in 0..100 {
            s.pick(|_| true);
        }
        // A same-weight query admitted late must split slots evenly from
        // here on, not claim 100 catch-up slots first.
        s.admit(1, 1);
        let mut picks = [0usize; 2];
        for _ in 0..20 {
            picks[s.pick(|_| true).unwrap()] += 1;
        }
        assert!((9..=11).contains(&picks[0]), "{picks:?}");
        assert!((9..=11).contains(&picks[1]), "{picks:?}");
    }

    #[test]
    fn eligibility_filter_and_retire_are_respected() {
        let mut s = StrideScheduler::new(3);
        s.admit(0, 4);
        s.admit(1, 1);
        assert!(!s.is_active(2));
        // Query 0 momentarily has no claimable work.
        assert_eq!(s.pick(|id| id != 0), Some(1));
        s.retire(1);
        assert!(!s.is_active(1));
        assert_eq!(s.active(), 1);
        assert_eq!(s.pick(|_| true), Some(0));
        s.retire(0);
        assert_eq!(s.pick(|_| true), None);
    }

    #[test]
    fn ties_break_deterministically_toward_lower_ids() {
        let mut s = StrideScheduler::new(3);
        s.admit(0, 1);
        s.admit(1, 1);
        s.admit(2, 1);
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.pick(|_| true), Some(1));
        assert_eq!(s.pick(|_| true), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_weight_is_rejected() {
        let mut s = StrideScheduler::new(1);
        s.admit(0, 0);
    }
}
