//! High-level query API: build, configure, run, report.
//!
//! Wraps plan construction, CPU selection and the baseline/progressive
//! runners behind a builder, and ships the paper's workhorse query — TPC-H
//! Q6 in the five-predicate form of Section 5.2 (shipdate window, discount
//! window, quantity cap, 120 possible PEOs) — as a preset.

use popt_cpu::{CpuConfig, SimCpu};
use popt_storage::Table;

use crate::error::EngineError;
use crate::plan::{Peo, SelectionPlan};
use crate::predicate::{CompareOp, Predicate};
use crate::progressive::{
    run_baseline, run_progressive, ProgressiveConfig, ProgressiveReport, SwitchEvent, VectorConfig,
};

/// Day numbers (since 1992-01-01) of the Q6 shipdate window
/// `[1994-01-01, 1995-01-01)`.
pub const Q6_SHIPDATE_LO: i64 = 731;
/// Exclusive upper day bound of the Q6 shipdate window.
pub const Q6_SHIPDATE_HI: i64 = 1096;
/// Q6 discount window `[0.05, 0.07]` in scaled percent.
pub const Q6_DISCOUNT_LO: i64 = 5;
/// Upper bound of the Q6 discount window.
pub const Q6_DISCOUNT_HI: i64 = 7;
/// Q6 quantity bound (`l_quantity < 24`).
pub const Q6_QUANTITY: i64 = 24;

/// How to execute the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Fixed PEO for the whole run (the paper's "common execution
    /// pattern").
    Baseline,
    /// Progressive optimization with the given reoptimization interval in
    /// vectors.
    Progressive {
        /// Vectors between optimization attempts.
        reop_interval: usize,
    },
}

/// The logical query answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// Qualifying tuples.
    pub rows_qualified: u64,
    /// Aggregate sum.
    pub sum: i64,
}

/// Everything a run produced: answer, timing, and optimizer telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The logical answer.
    pub result: QueryResult,
    /// Simulated milliseconds.
    pub millis: f64,
    /// Simulated cycles (including optimizer time).
    pub cycles: u64,
    /// Vectors executed.
    pub vectors: usize,
    /// PEO switch history.
    pub switches: Vec<SwitchEvent>,
    /// Order in effect at the end.
    pub final_peo: Peo,
    /// Full counter totals.
    pub counters: popt_cpu::pmu::CounterDelta,
    /// Estimator invocations.
    pub estimates: usize,
}

impl From<ProgressiveReport> for QueryReport {
    fn from(r: ProgressiveReport) -> Self {
        QueryReport {
            result: QueryResult {
                rows_qualified: r.qualified,
                sum: r.sum,
            },
            millis: r.millis,
            cycles: r.cycles,
            vectors: r.vectors,
            switches: r.switches,
            final_peo: r.final_peo,
            counters: r.counters,
            estimates: r.estimates,
        }
    }
}

/// Builder for configuring and running a multi-selection query.
pub struct QueryBuilder<'t> {
    table: &'t Table,
    plan: SelectionPlan,
    initial_peo: Option<Peo>,
    vector_tuples: usize,
    max_vectors: Option<usize>,
    cpu_config: CpuConfig,
    progressive: ProgressiveConfig,
}

impl<'t> QueryBuilder<'t> {
    /// Default tuples per vector.
    pub const DEFAULT_VECTOR_TUPLES: usize = 8192;

    /// A query from an explicit plan.
    pub fn new(table: &'t Table, plan: SelectionPlan) -> Self {
        Self {
            table,
            plan,
            initial_peo: None,
            vector_tuples: Self::DEFAULT_VECTOR_TUPLES,
            max_vectors: None,
            cpu_config: CpuConfig::xeon_e5_2630_v2(),
            progressive: ProgressiveConfig::default(),
        }
    }

    /// TPC-H Q6 in the paper's five-predicate form over a `lineitem`
    /// table:
    ///
    /// ```sql
    /// SELECT sum(l_extendedprice * l_discount)
    /// FROM lineitem
    /// WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
    ///   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
    /// ```
    pub fn q6(table: &'t Table) -> Self {
        Self::new(table, Self::q6_plan())
    }

    /// The Q6 plan itself (five predicates; revenue aggregate).
    pub fn q6_plan() -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("l_shipdate", CompareOp::Ge, Q6_SHIPDATE_LO),
                Predicate::new("l_shipdate", CompareOp::Lt, Q6_SHIPDATE_HI),
                Predicate::new("l_discount", CompareOp::Ge, Q6_DISCOUNT_LO),
                Predicate::new("l_discount", CompareOp::Le, Q6_DISCOUNT_HI),
                Predicate::new("l_quantity", CompareOp::Lt, Q6_QUANTITY),
            ],
            vec!["l_extendedprice".into(), "l_discount".into()],
        )
        .expect("Q6 plan is non-empty")
    }

    /// The four-predicate Q6 variant of Figure 1 (single shipdate bound
    /// with a configurable literal).
    pub fn q6_figure1_plan(shipdate_le: i64) -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("l_shipdate", CompareOp::Le, shipdate_le),
                Predicate::new("l_quantity", CompareOp::Lt, Q6_QUANTITY),
                Predicate::new("l_discount", CompareOp::Ge, Q6_DISCOUNT_LO),
                Predicate::new("l_discount", CompareOp::Le, Q6_DISCOUNT_HI),
            ],
            vec!["l_extendedprice".into(), "l_discount".into()],
        )
        .expect("plan is non-empty")
    }

    /// Set the initial PEO (defaults to plan order).
    pub fn initial_peo(mut self, peo: Peo) -> Self {
        self.initial_peo = Some(peo);
        self
    }

    /// Set tuples per vector.
    pub fn vector_tuples(mut self, tuples: usize) -> Self {
        self.vector_tuples = tuples;
        self
    }

    /// Cap the number of vectors executed.
    pub fn vectors(mut self, max: usize) -> Self {
        self.max_vectors = Some(max);
        self
    }

    /// Select the simulated CPU.
    pub fn cpu(mut self, config: CpuConfig) -> Self {
        self.cpu_config = config;
        self
    }

    /// Override the progressive-optimizer configuration (the run mode's
    /// `reop_interval` still wins).
    pub fn progressive_config(mut self, config: ProgressiveConfig) -> Self {
        self.progressive = config;
        self
    }

    /// Access the plan (e.g. to enumerate PEOs).
    pub fn plan(&self) -> &SelectionPlan {
        &self.plan
    }

    /// Execute and report.
    pub fn run(self, mode: RunMode) -> Result<QueryReport, EngineError> {
        let peo = match self.initial_peo {
            Some(p) => {
                self.plan.validate_peo(&p)?;
                p
            }
            None => self.plan.identity_peo(),
        };
        let vectors = VectorConfig {
            vector_tuples: self.vector_tuples,
            max_vectors: self.max_vectors,
        };
        let mut cpu = SimCpu::new(self.cpu_config);
        let report = match mode {
            RunMode::Baseline => run_baseline(self.table, &self.plan, &peo, vectors, &mut cpu)?,
            RunMode::Progressive { reop_interval } => {
                let config = ProgressiveConfig {
                    reop_interval,
                    ..self.progressive
                };
                run_progressive(self.table, &self.plan, &peo, vectors, &mut cpu, &config)?
            }
        };
        Ok(report.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_storage::stats;
    use popt_storage::tpch::{generate_lineitem, TpchConfig};

    #[test]
    fn q6_runs_and_counts_plausibly() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let report = QueryBuilder::q6(&t).run(RunMode::Baseline).unwrap();
        let n = t.rows() as f64;
        // Independent selectivities: shipdate ~1/7 (365/2526), discount
        // 3/11, quantity 23/50.
        let expected = n * (365.0 / 2526.0) * (3.0 / 11.0) * (23.0 / 50.0);
        let got = report.result.rows_qualified as f64;
        assert!(
            (got - expected).abs() / expected < 0.25,
            "got {got}, expected ≈ {expected}"
        );
        assert!(report.millis > 0.0);
    }

    #[test]
    fn q6_result_matches_ground_truth_scan() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let report = QueryBuilder::q6(&t).run(RunMode::Baseline).unwrap();
        // Recompute with a plain host-side scan.
        let ship = t.column("l_shipdate").unwrap().data().as_i32().unwrap();
        let disc = t.column("l_discount").unwrap().data().as_i32().unwrap();
        let qty = t.column("l_quantity").unwrap().data().as_i32().unwrap();
        let price = t
            .column("l_extendedprice")
            .unwrap()
            .data()
            .as_i32()
            .unwrap();
        let mut count = 0u64;
        let mut sum = 0i64;
        for i in 0..t.rows() {
            let s = i64::from(ship[i]);
            let d = i64::from(disc[i]);
            let q = i64::from(qty[i]);
            if (Q6_SHIPDATE_LO..Q6_SHIPDATE_HI).contains(&s)
                && (Q6_DISCOUNT_LO..=Q6_DISCOUNT_HI).contains(&d)
                && q < Q6_QUANTITY
            {
                count += 1;
                sum += i64::from(price[i]) * d;
            }
        }
        assert_eq!(report.result.rows_qualified, count);
        assert_eq!(report.result.sum, sum);
    }

    #[test]
    fn progressive_mode_reports_switches_field() {
        let t = generate_lineitem(&TpchConfig::tiny());
        // Deliberately bad initial order: least selective first.
        let report = QueryBuilder::q6(&t)
            .initial_peo(vec![4, 3, 2, 1, 0])
            .vector_tuples(2048)
            .run(RunMode::Progressive { reop_interval: 1 })
            .unwrap();
        assert!(report.estimates > 0);
    }

    #[test]
    fn invalid_initial_peo_is_rejected() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let err = QueryBuilder::q6(&t)
            .initial_peo(vec![0, 1])
            .run(RunMode::Baseline)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidPeo { .. }));
    }

    #[test]
    fn vector_cap_limits_work() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let full = QueryBuilder::q6(&t).run(RunMode::Baseline).unwrap();
        let capped = QueryBuilder::q6(&t)
            .vectors(1)
            .run(RunMode::Baseline)
            .unwrap();
        assert!(capped.vectors < full.vectors);
        assert!(capped.cycles < full.cycles);
    }

    #[test]
    fn figure1_plan_has_four_predicates() {
        let t = generate_lineitem(&TpchConfig::tiny());
        let ship = t.column("l_shipdate").unwrap();
        let v = stats::quantile(ship.data(), 0.01);
        let plan = QueryBuilder::q6_figure1_plan(v);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.all_peos().len(), 24);
    }
}
