//! The progressive coordinator: the §4.4 loop generalized to N workers.
//!
//! Worker threads (one per [`CpuPool`] core) claim morsels from the
//! shared dispatcher and execute them on their private simulated cores.
//! The coordinator state behind one mutex holds the *master* target —
//! the single shared estimator model (selectivity beliefs, probe
//! clustering calibration, rejection memory) that all workers feed and
//! follow:
//!
//! * **Sampling** — every morsel executed under the currently accepted
//!   order accumulates into its worker's window; at each reoptimization
//!   point the per-worker windows are fused
//!   ([`SampledCounters::merged`]) into one pool-wide sample for a
//!   single Nelder–Mead estimate, so optimization cost is paid once per
//!   interval, not once per core.
//! * **Epoch publication** — an accepted order bumps the epoch; workers
//!   notice at their next morsel boundary and re-chain their
//!   pre-compiled primitives (the vectorized switch of §4.4, now
//!   concurrent). Morsels measured under a stale epoch still count
//!   toward the query result but are excluded from the sample window.
//! * **Trial leasing** — a proposed order (estimator-driven,
//!   exploratory, or a §5.5 measurement probe) becomes a *trial* leased
//!   to exactly one worker: that worker runs one morsel under the
//!   candidate order and resolves it against the accepted order's
//!   cycles-per-tuple. A bad trial order therefore never runs on more
//!   than one core, while the other workers keep streaming at full
//!   speed under the incumbent order.
//!
//! The coordination state itself is factored into [`CoordState`], whose
//! methods are each a *locked step* of the protocol (the caller holds
//! whatever mutex guards the state; the expensive Nelder–Mead estimate
//! always runs between two locked steps, outside the lock). This module
//! drives one `CoordState` per query via [`run_parallel_target`]; the
//! serving layer (`crate::serve`) drives many concurrently — one per
//! admitted query — multiplexed over the same pool.

use std::sync::{Arc, Mutex};

use popt_cost::cycles::{fleet_speedup, fleet_wall_cycles};
use popt_cost::estimate::PlanGeometry;
use popt_cpu::pmu::CounterDelta;
use popt_cpu::{CpuConfig, CpuPool, LlcMode, NumaPlacement, SimCpu};
use popt_obs::{DriftObservatory, MetricsRegistry, TraceEvent, Tracer};
use popt_solver::{estimate_selectivities, EstimateResult, SampledCounters};

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::scan::VectorStats;
use crate::observe::{front_stage_key, morsel_stage_parts, record_fit_drift, ExecObservers};
use crate::plan::{Peo, SelectionPlan};
use popt_storage::Table;

use crate::progressive::{PipelineTarget, ProgressiveConfig, ScanTarget, SwitchEvent};

use super::morsel::{MorselConfig, MorselDispatcher};
use super::{ShardableTarget, TargetShard};

/// Outcome of a morsel-driven parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Qualifying tuples (bit-identical to the single-core executor).
    pub qualified: u64,
    /// Aggregate sum (bit-identical to the single-core executor).
    pub sum: i64,
    /// Wall-clock cycles: the busiest worker, including the optimizer
    /// cycles charged to the cores that ran estimator rounds.
    pub wall_cycles: u64,
    /// Aggregate cycles across all workers (total work).
    pub total_cycles: u64,
    /// Wall-clock simulated milliseconds.
    pub millis: f64,
    /// Workers (= pool cores) that executed the run.
    pub workers: usize,
    /// Morsels executed.
    pub morsels: usize,
    /// Per-worker cycles (execution + that worker's optimizer rounds).
    pub per_worker_cycles: Vec<u64>,
    /// Order switches, in scheduling order (`vector` = morsel count at
    /// the time the trial was scheduled).
    pub switches: Vec<SwitchEvent>,
    /// Estimator invocations.
    pub estimates: usize,
    /// Total cycles attributed to the optimizer.
    pub optimizer_cycles: u64,
    /// The accepted order when the scan finished (socket 0's on a
    /// multi-socket pool).
    pub final_order: Peo,
    /// The accepted order of each socket when the scan finished — on a
    /// NUMA pool the sockets optimize independently and can converge to
    /// *different* orders (a dim homed locally ranks cheaper there).
    /// One entry (equal to `final_order`) on a single-socket pool.
    pub socket_orders: Vec<Peo>,
    /// Percentage of memory-served accesses that crossed to a remote
    /// socket (0 on a single-socket pool).
    pub remote_access_pct: f64,
    /// Counter totals across all cores.
    pub counters: CounterDelta,
}

impl ParallelReport {
    /// Wall-clock speedup over a reference single-worker run.
    pub fn speedup_over(&self, reference_wall_cycles: u64) -> f64 {
        fleet_speedup(reference_wall_cycles, &self.per_worker_cycles)
    }

    /// Feed the run's aggregates into a metrics registry (post-hoc; the
    /// registry never sits on the simulated-cost path).
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("parallel.runs", 1);
        reg.inc("parallel.morsels", self.morsels as u64);
        reg.inc("parallel.estimates", self.estimates as u64);
        reg.inc("parallel.optimizer_cycles", self.optimizer_cycles);
        reg.inc("parallel.switches", self.switches.len() as u64);
        reg.inc(
            "parallel.switches_reverted",
            self.switches.iter().filter(|s| s.reverted).count() as u64,
        );
        reg.inc("parallel.cycles", self.total_cycles);
        reg.inc("parallel.llc_misses", self.counters.l3_misses);
        reg.inc("parallel.memory_accesses", self.counters.memory_accesses);
        reg.set_gauge("parallel.remote_access_pct", self.remote_access_pct);
        reg.set_gauge(
            "parallel.occupancy",
            if self.wall_cycles == 0 {
                0.0
            } else {
                self.total_cycles as f64 / (self.wall_cycles as f64 * self.workers as f64)
            },
        );
        reg.observe("parallel.wall_cycles", self.wall_cycles);
        for &c in &self.per_worker_cycles {
            reg.observe("parallel.worker_cycles", c);
        }
    }
}

/// A candidate order being tried on exactly one worker.
struct Trial {
    order: Peo,
    switch_idx: usize,
    /// Accepted-order cycles-per-tuple the trial must not regress from.
    prev_cpt: f64,
    leased: bool,
}

/// What a worker should do with the morsel it just claimed, decided at
/// the boundary sync ([`CoordState::begin_morsel`]).
pub(crate) enum BoundaryAction {
    /// A pending trial was leased to this worker: re-chain to the trial
    /// order and resolve it against this morsel's counters.
    Trial(Peo),
    /// The published order moved since the worker last synced: re-chain
    /// to it and record the new epoch.
    Adopt {
        /// The published order to adopt.
        order: Peo,
        /// The epoch the morsel will run under.
        epoch: u64,
    },
    /// The worker's chained order is still the published one.
    Keep {
        /// The epoch the morsel will run under.
        epoch: u64,
    },
}

/// Per-socket slice of the coordination state: the §4.4 loop's order
/// tracking, trial lease, rejection memory and epoch reference, one per
/// socket. Sockets optimize independently — a trial accepted on socket
/// 0 never re-chains socket 1's workers — which is what lets the two
/// halves of a NUMA pool converge to *different* accepted orders when
/// their placements price the same dims differently. A single-socket
/// pool has exactly one slice, making the state identical to the flat
/// pre-NUMA coordinator.
struct SocketCoord {
    /// Bumped on every accepted switch; this socket's workers resync
    /// when it moves.
    epoch: u64,
    /// The accepted evaluation order on this socket.
    published: Peo,
    trial: Option<Trial>,
    /// Recently reverted orders: (order, reopt round rejected at).
    rejected: Vec<(Peo, usize)>,
    reopt_round: usize,
    last_accept_round: usize,
    morsels_since_reopt: usize,
    /// Cycles and tuples accumulated under the current epoch's order —
    /// their ratio is the accepted order's cycles-per-tuple, the
    /// reference a trial must not regress from. An *average* over the
    /// whole epoch (not the most recent morsel) so the reference does
    /// not depend on which worker happened to report last, nor on one
    /// core's momentary cache state.
    epoch_cycles: u64,
    epoch_tuples: u64,
    /// Whether an estimator round snapshot is being fitted outside the
    /// lock; excludes concurrent reopt rounds like a pending trial does.
    estimate_in_flight: bool,
    /// Effective LLC capacity (bytes) this socket's morsels run against
    /// — the smallest member share under contention, the full LLC
    /// otherwise. Every estimator fit prices its geometry with this
    /// capacity, so the proposals it produces reflect what a co-runner
    /// left the query.
    llc_share_bytes: u64,
    /// Observed cycles of the window snapshot an in-flight estimator fit
    /// was taken over, captured in [`CoordState::begin_reoptimize`]
    /// before the windows are zeroed — the drift observatory's observed
    /// side for the round's cycles-per-tuple residual. Valid while
    /// `estimate_in_flight`.
    fit_window_cycles: u64,
}

impl SocketCoord {
    fn new(published: Peo, llc_share_bytes: u64) -> Self {
        Self {
            epoch: 0,
            published,
            trial: None,
            rejected: Vec::new(),
            reopt_round: 0,
            last_accept_round: 0,
            morsels_since_reopt: 0,
            epoch_cycles: 0,
            epoch_tuples: 0,
            estimate_in_flight: false,
            llc_share_bytes,
            fit_window_cycles: 0,
        }
    }
}

/// Per-query coordination state: the master target plus everything the
/// §4.4 loop tracks between morsels, sliced per socket. Methods are the
/// *locked steps* of the coordination protocol — the caller serializes
/// them behind its own mutex (one `Mutex<CoordState>` for a dedicated
/// pool; the server's scheduler lock for interleaved queries) and runs
/// the expensive estimator fits between steps, outside the lock.
///
/// The master target holds a single evaluation order, so every locked
/// step that derives geometry, calibrates, or proposes for socket `s`
/// first re-establishes `s`'s published (or trial) order on the target;
/// cross-socket interleaving between locked steps can therefore never
/// leak one socket's order into another's fit.
pub(crate) struct CoordState<'a, T> {
    /// The master target: order tracking plus the shared estimator model
    /// (probe clustering, proposal logic). Never executes a morsel.
    pub(crate) target: &'a mut T,
    /// Per-socket coordination slices.
    sockets: Vec<SocketCoord>,
    /// Socket of each worker (contiguous blocks, `CpuPool::socket_of`).
    socket_of: Vec<usize>,
    /// The pool's memory map, for remote-fraction probe pricing.
    placement: NumaPlacement,
    /// Per-worker sample windows under the worker's socket epoch order.
    windows: Vec<VectorStats>,
    pub(crate) switches: Vec<SwitchEvent>,
    pub(crate) estimates: usize,
    /// Optimizer cycles charged per worker (to the core that ran the
    /// estimator round).
    pub(crate) optimizer_cycles: Vec<u64>,
    pub(crate) morsels_done: usize,
    /// Decision tracing: the sink hangs outside the simulated-cost path,
    /// so an attached tracer never changes a cycle count. `None` (or a
    /// disabled tracer) reduces every emission to one branch.
    trace: Option<(Arc<Tracer>, usize)>,
    /// Model-drift observatory: every estimator fit's predicted-vs-
    /// observed residuals land here, keyed by the literal-free key of
    /// the front stage of the order the sample ran under. Same
    /// non-invasive contract as the tracer.
    drift: Option<Arc<DriftObservatory>>,
    /// Literal-free per-stage keys of the master target (plan-indexed),
    /// cached at construction for drift attribution.
    stage_keys: Vec<u64>,
}

impl<'a, T: ShardableTarget> CoordState<'a, T> {
    /// Fresh single-socket coordination state over `target`'s current
    /// order, for a pool of `workers` workers whose cores give this
    /// query an effective LLC capacity of `llc_share_bytes`.
    pub(crate) fn new(target: &'a mut T, workers: usize, llc_share_bytes: u64) -> Self {
        Self::with_topology(
            target,
            vec![0; workers],
            vec![llc_share_bytes],
            NumaPlacement::single(),
        )
    }

    /// Coordination state over a socket topology: `socket_of` maps each
    /// worker to its socket, `llc_shares` carries one effective LLC
    /// capacity per socket, and `placement` prices remote probes. Every
    /// socket starts from the target's current order.
    pub(crate) fn with_topology(
        target: &'a mut T,
        socket_of: Vec<usize>,
        llc_shares: Vec<u64>,
        placement: NumaPlacement,
    ) -> Self {
        let published = target.order();
        let stage_keys = target.stage_keys();
        let workers = socket_of.len();
        Self {
            target,
            sockets: llc_shares
                .into_iter()
                .map(|share| SocketCoord::new(published.clone(), share))
                .collect(),
            socket_of,
            placement,
            windows: vec![VectorStats::zero(); workers],
            switches: Vec::new(),
            estimates: 0,
            optimizer_cycles: vec![0; workers],
            morsels_done: 0,
            trace: None,
            drift: None,
            stage_keys,
        }
    }

    /// Attach a tracer: decision events emitted from this state's locked
    /// steps are stamped on the calling worker's lane and tagged with
    /// `query`.
    pub(crate) fn set_trace(&mut self, tracer: Arc<Tracer>, query: usize) {
        self.trace = Some((tracer, query));
    }

    /// Attach a drift observatory: every fit this state closes records
    /// its predicted-vs-observed residuals there.
    pub(crate) fn set_drift(&mut self, drift: Arc<DriftObservatory>) {
        self.drift = Some(drift);
    }

    /// The accepted order on `socket`.
    pub(crate) fn published_order(&self, socket: usize) -> &Peo {
        &self.sockets[socket].published
    }

    /// The accepted order of every socket, in socket order.
    pub(crate) fn socket_orders(&self) -> Vec<Peo> {
        self.sockets.iter().map(|s| s.published.clone()).collect()
    }

    /// Geometry for socket `s`'s current target order: NUMA-priced when
    /// the pool has remote memory to price, the flat (PR 5) geometry
    /// otherwise — so a 1-socket run takes the exact legacy path.
    fn geometry(&self, s: usize, n_input: u64, cpu_cfg: &CpuConfig) -> PlanGeometry {
        let share = self.sockets[s].llc_share_bytes;
        if self.placement.sockets() > 1 {
            self.target
                .plan_geometry_numa(n_input, cpu_cfg, share, &self.placement, s)
        } else {
            self.target.plan_geometry(n_input, cpu_cfg, share)
        }
    }

    /// Boundary sync for worker `w`, which last chained its shard under
    /// `local_epoch`: lease a pending trial on `w`'s socket so the
    /// candidate runs on exactly this core, or tell the worker which
    /// published order to adopt. The caller applies the returned order
    /// to its shard *outside* this state's lock (the shard is
    /// worker-private).
    pub(crate) fn begin_morsel(&mut self, w: usize, local_epoch: u64) -> BoundaryAction {
        let s = self.socket_of[w];
        let sc = &mut self.sockets[s];
        let lease = match sc.trial.as_mut() {
            Some(trial) if !trial.leased => {
                trial.leased = true;
                Some(trial.order.clone())
            }
            _ => None,
        };
        if let Some(order) = lease {
            // Ground the comparison in this core's own recent rate under
            // the incumbent order when it has one — consecutive morsels
            // on one core control for cache state, like the serial
            // loop's vector-to-vector comparison. The socket-wide epoch
            // average (snapshot at scheduling) remains the fallback for
            // a cold core.
            if self.windows[w].tuples > 0 {
                let own_cpt = self.windows[w].cycles_per_tuple();
                if let Some(trial) = sc.trial.as_mut() {
                    trial.prev_cpt = own_cpt;
                }
            }
            let baseline_cpt = sc.trial.as_ref().map_or(0.0, |t| t.prev_cpt);
            if let Some((tracer, query)) = &self.trace {
                tracer.emit(w, *query, || TraceEvent::TrialLease {
                    socket: s,
                    order: order.clone(),
                    baseline_cpt,
                });
            }
            BoundaryAction::Trial(order)
        } else if local_epoch != sc.epoch {
            BoundaryAction::Adopt {
                order: sc.published.clone(),
                epoch: sc.epoch,
            }
        } else {
            BoundaryAction::Keep { epoch: sc.epoch }
        }
    }

    /// Locked step 1 of trial resolution for worker `w`: count the
    /// morsel and derive the trial-order geometry the sample must be
    /// fitted against — the master target moves to the trial order (it
    /// is re-established in [`CoordState::resolve_trial`] regardless).
    /// Returns the fit inputs for the estimate the caller runs outside
    /// the lock, or `None` when the target does not calibrate from
    /// trials.
    pub(crate) fn trial_fit_inputs(
        &mut self,
        w: usize,
        stats: &VectorStats,
        cpu_cfg: &CpuConfig,
    ) -> Result<Option<(PlanGeometry, SampledCounters)>, EngineError> {
        self.morsels_done += 1;
        let s = self.socket_of[w];
        let trial_order = self.sockets[s]
            .trial
            .as_ref()
            .expect("a leased trial to resolve")
            .order
            .clone();
        if self.target.wants_trial_calibration() {
            let sampled = stats.sampled_counters();
            self.target.set_order(&trial_order)?;
            let geom = self.geometry(s, sampled.n_input, cpu_cfg);
            Ok(Some((geom, sampled)))
        } else {
            Ok(None)
        }
    }

    /// Locked step 2 of trial resolution: calibrate from the (externally
    /// computed) fit, then accept — publishing a new epoch — or revert
    /// into the rejection memory. Returns the published order and epoch
    /// after resolution so the resolving worker can resync its shard.
    pub(crate) fn resolve_trial(
        &mut self,
        w: usize,
        stats: &VectorStats,
        fitted: Option<(PlanGeometry, SampledCounters, EstimateResult)>,
        cfg: &ProgressiveConfig,
    ) -> Result<(Peo, u64), EngineError> {
        let s = self.socket_of[w];
        if let Some((geom, sampled, estimate)) = fitted {
            self.estimates += 1;
            self.optimizer_cycles[w] += estimate.evaluations as u64 * cfg.cycles_per_estimator_eval;
            // Another socket's locked step may have moved the master
            // order since the fit inputs were derived; the calibration
            // must run under the geometry's (trial) order.
            let trial_order = self.sockets[s]
                .trial
                .as_ref()
                .expect("a leased trial to resolve")
                .order
                .clone();
            self.target.set_order(&trial_order)?;
            if let Some(drift) = &self.drift {
                // The trial morsel is a one-morsel window under the
                // trial order; its fit residual scores the model at a
                // stage position the accepted order may never expose.
                record_fit_drift(
                    drift,
                    front_stage_key(&self.stage_keys, &trial_order),
                    &geom,
                    &sampled,
                    &estimate.survivors,
                    stats.cycles_per_tuple(),
                );
            }
            self.target.calibrate(&geom, &sampled, &estimate.survivors);
        }
        let trial = self.sockets[s]
            .trial
            .take()
            .expect("a leased trial to resolve");
        let cpt = stats.cycles_per_tuple();
        let regressed =
            cfg.revert_on_regression && cpt > trial.prev_cpt * (1.0 + cfg.regression_tolerance);
        let sc = &mut self.sockets[s];
        if regressed {
            let round = sc.reopt_round;
            self.switches[trial.switch_idx].reverted = true;
            if let Some((tracer, query)) = &self.trace {
                tracer.emit(w, *query, || TraceEvent::TrialRevert {
                    socket: s,
                    order: trial.order.clone(),
                    baseline_cpt: trial.prev_cpt,
                    trial_cpt: cpt,
                });
            }
            sc.rejected.push((trial.order, round));
            let published = sc.published.clone();
            self.target.set_order(&published)?;
        } else {
            self.target.set_order(&trial.order)?;
            sc.published = trial.order;
            sc.epoch += 1;
            sc.last_accept_round = sc.reopt_round;
            sc.morsels_since_reopt = 0;
            sc.epoch_cycles = stats.counters.cycles;
            sc.epoch_tuples = stats.tuples;
            if let Some((tracer, query)) = &self.trace {
                tracer.emit(w, *query, || TraceEvent::TrialAccept {
                    socket: s,
                    order: sc.published.clone(),
                    baseline_cpt: trial.prev_cpt,
                    trial_cpt: cpt,
                    epoch: sc.epoch,
                });
                tracer.emit(w, *query, || TraceEvent::OrderPublish {
                    socket: s,
                    order: sc.published.clone(),
                    epoch: sc.epoch,
                    warm_seed: false,
                });
            }
            // The socket's windows and epoch reference sampled the
            // superseded order; the trial morsel is the new epoch's
            // first observation. Other sockets' windows are untouched.
            for (wi, window) in self.windows.iter_mut().enumerate() {
                if self.socket_of[wi] == s {
                    *window = VectorStats::zero();
                }
            }
        }
        let sc = &self.sockets[s];
        Ok((sc.published.clone(), sc.epoch))
    }

    /// Locked step for a morsel executed under the accepted order:
    /// accumulate it into worker `w`'s sample window and, when the
    /// interval is due (and `work_remains` — a trial scheduled after the
    /// last morsel was claimed could never run), start one
    /// reoptimization round. A returned snapshot means the caller must
    /// run the estimate outside the lock and feed it back through
    /// [`CoordState::finish_reoptimize`].
    pub(crate) fn note_normal(
        &mut self,
        w: usize,
        epoch: u64,
        stats: &VectorStats,
        reopt: Option<&ProgressiveConfig>,
        cpu_cfg: &CpuConfig,
        work_remains: bool,
    ) -> Option<(PlanGeometry, SampledCounters)> {
        self.morsels_done += 1;
        let s = self.socket_of[w];
        if epoch != self.sockets[s].epoch {
            // Measured under a stale epoch: counts toward the result,
            // excluded from the sample window.
            return None;
        }
        self.windows[w].accumulate(stats);
        let sc = &mut self.sockets[s];
        sc.epoch_cycles += stats.counters.cycles;
        sc.epoch_tuples += stats.tuples;
        sc.morsels_since_reopt += 1;
        match reopt {
            Some(cfg)
                if sc.morsels_since_reopt >= cfg.reop_interval
                    && sc.trial.is_none()
                    && !sc.estimate_in_flight
                    && work_remains =>
            {
                self.begin_reoptimize(s, cfg, cpu_cfg)
            }
            _ => None,
        }
    }

    /// Locked step closing a reoptimization round whose estimate ran
    /// outside the lock: calibrate, propose, and schedule a trial if the
    /// proposal differs from the published order. No trial can have been
    /// scheduled nor the epoch moved since [`CoordState::note_normal`]
    /// returned the snapshot — both only happen inside reopt rounds, and
    /// `estimate_in_flight` excluded those.
    pub(crate) fn finish_reoptimize(
        &mut self,
        w: usize,
        geom: &PlanGeometry,
        merged: &SampledCounters,
        estimate: EstimateResult,
        cfg: &ProgressiveConfig,
    ) {
        let s = self.socket_of[w];
        self.sockets[s].estimate_in_flight = false;
        self.estimates += 1;
        self.optimizer_cycles[w] += estimate.evaluations as u64 * cfg.cycles_per_estimator_eval;
        // Another socket's locked step may have moved the master order
        // since the snapshot; re-establish this socket's published order
        // (which the geometry was built under, and which `s`'s pending
        // state guarantees is unchanged) before calibrating/proposing.
        if self.target.set_order(&self.sockets[s].published).is_err() {
            return;
        }
        if let Some(drift) = &self.drift {
            let observed_cpt = if merged.n_input > 0 {
                self.sockets[s].fit_window_cycles as f64 / merged.n_input as f64
            } else {
                0.0
            };
            record_fit_drift(
                drift,
                front_stage_key(&self.stage_keys, &self.sockets[s].published),
                geom,
                merged,
                &estimate.survivors,
                observed_cpt,
            );
        }
        self.target.calibrate(geom, merged, &estimate.survivors);
        let proposed = self.target.propose_order(geom, &estimate.selectivities);
        let differs = proposed != self.sockets[s].published;
        if let Some((tracer, query)) = &self.trace {
            let round = self.sockets[s].reopt_round;
            tracer.emit(w, *query, || TraceEvent::ReoptRound {
                socket: s,
                round,
                selectivities: estimate.selectivities.clone(),
                fit_error: estimate.objective,
                proposed: differs.then(|| proposed.clone()),
            });
        }
        if self.sockets[s]
            .rejected
            .iter()
            .any(|(order, _)| order == &proposed)
        {
            return;
        }
        if differs {
            self.schedule_trial(s, proposed, false);
        }
    }

    /// Start a reoptimization round on socket `s`: age out rejections,
    /// handle the cheap stall-exploration and measurement-probe paths
    /// directly, or snapshot the fused windows of `s`'s workers for an
    /// estimator round the caller runs outside the lock — the solver
    /// fits *per-socket* counter windows, so each socket's estimate sees
    /// only counters generated under its own order and placement.
    fn begin_reoptimize(
        &mut self,
        s: usize,
        cfg: &ProgressiveConfig,
        cpu_cfg: &CpuConfig,
    ) -> Option<(PlanGeometry, SampledCounters)> {
        self.sockets[s].reopt_round += 1;
        self.sockets[s].morsels_since_reopt = 0;
        let round = self.sockets[s].reopt_round;
        self.sockets[s]
            .rejected
            .retain(|(_, at)| round - at <= cfg.rejection_ttl);

        // Stall-triggered exploration (§4.5), same trigger as the serial
        // loop: no recently accepted switch AND an active disagreement.
        let stalled =
            round >= self.sockets[s].last_accept_round + 3 && !self.sockets[s].rejected.is_empty();
        if cfg.explore_correlation && stalled && round % 2 == 0 {
            let mut explored = self.sockets[s].published.clone();
            explored.rotate_right(1);
            if explored != self.sockets[s].published {
                self.schedule_trial(s, explored, true);
            }
            return None;
        }

        // Measurement probe: an order the target wants to observe once.
        if let Some(probe) = self.target.take_probe_order() {
            if probe != self.sockets[s].published {
                self.schedule_trial(s, probe, true);
                return None;
            }
        }

        // Fuse this socket's per-worker windows into one socket-wide
        // sample; one estimator round serves the socket.
        let samples: Vec<SampledCounters> = self
            .windows
            .iter()
            .enumerate()
            .filter(|(wi, window)| self.socket_of[*wi] == s && window.tuples > 0)
            .map(|(_, window)| window.sampled_counters())
            .collect();
        let merged = SampledCounters::merged(&samples)?;
        // The observed side of the round's cycles-per-tuple residual,
        // captured before the windows are zeroed below.
        self.sockets[s].fit_window_cycles = self
            .windows
            .iter()
            .enumerate()
            .filter(|(wi, _)| self.socket_of[*wi] == s)
            .map(|(_, window)| window.counters.cycles)
            .sum();
        // The geometry must describe the order the windows sampled.
        self.target.set_order(&self.sockets[s].published).ok()?;
        let geom = self.geometry(s, merged.n_input, cpu_cfg);
        // The windows feed this estimate; the next interval accumulates
        // fresh while the fit runs.
        for (wi, window) in self.windows.iter_mut().enumerate() {
            if self.socket_of[wi] == s {
                *window = VectorStats::zero();
            }
        }
        self.sockets[s].estimate_in_flight = true;
        Some((geom, merged))
    }

    fn schedule_trial(&mut self, s: usize, order: Peo, exploratory: bool) {
        let sc = &mut self.sockets[s];
        self.switches.push(SwitchEvent {
            vector: self.morsels_done,
            from: sc.published.clone(),
            to: order.clone(),
            reverted: false,
            exploratory,
        });
        // Trials are only scheduled after at least one full reopt
        // interval of in-epoch morsels, so the epoch average is always
        // populated.
        debug_assert!(sc.epoch_tuples > 0, "trial scheduled with no reference");
        sc.trial = Some(Trial {
            order,
            switch_idx: self.switches.len() - 1,
            prev_cpt: sc.epoch_cycles as f64 / sc.epoch_tuples.max(1) as f64,
            leased: false,
        });
    }

    /// Re-seed a query that has not yet executed any morsel from a cached
    /// template state: the order becomes the published one under a new
    /// epoch (every worker re-chains its shard at its first claim) and
    /// the calibration is restored into the master target. Only legal
    /// before the first morsel — there are no samples, no trials and no
    /// epoch history to invalidate. An order the target rejects degrades
    /// to keeping the cold start: a stale seed may cost performance,
    /// never correctness. Returns whether the seed was applied.
    pub(crate) fn reseed(
        &mut self,
        order: &[usize],
        calibration: Option<&popt_solver::CalibrationSnapshot>,
    ) -> bool {
        debug_assert_eq!(self.morsels_done, 0, "reseed after execution began");
        if self.target.set_order(order).is_err() {
            return false;
        }
        for sc in &mut self.sockets {
            sc.published = order.to_vec();
            sc.epoch += 1;
        }
        if let Some((tracer, query)) = &self.trace {
            for (s, sc) in self.sockets.iter().enumerate() {
                tracer.emit(tracer.coordinator_lane(), *query, || {
                    TraceEvent::OrderPublish {
                        socket: s,
                        order: sc.published.clone(),
                        epoch: sc.epoch,
                        warm_seed: true,
                    }
                });
            }
        }
        if let Some(snapshot) = calibration {
            self.target.restore_calibration(snapshot);
        }
        true
    }

    /// A trial scheduled after the last morsel was claimed never ran; it
    /// was never accepted either, so record it as reverted. Call once
    /// after the last morsel of the stream resolved.
    pub(crate) fn abandon_unleased_trial(&mut self) {
        for sc in &mut self.sockets {
            if let Some(trial) = sc.trial.take() {
                if !trial.leased {
                    self.switches[trial.switch_idx].reverted = true;
                } else {
                    // A leased trial is always resolved by the worker
                    // that ran it; putting it back preserves that
                    // invariant.
                    sc.trial = Some(trial);
                }
            }
        }
    }
}

/// Locked access to one query's [`CoordState`], abstracting over *which*
/// mutex guards it: the dedicated-pool executor wraps a single state in
/// its own mutex, while the serving layer keeps many queries behind one
/// server lock. The trial/reopt choreography is written once against
/// this trait ([`trial_round`] / [`normal_round`]) so the two executors
/// cannot drift apart.
pub(crate) trait WithCoord<'a, T> {
    /// Run `f` with the coordination state locked.
    fn with<R>(&self, f: impl FnOnce(&mut CoordState<'a, T>) -> R) -> R;
}

/// [`CoordState`] plus the error slot the workers of a dedicated-pool
/// run share (the serving layer keeps its error slot in the scheduler
/// state instead, one per server).
struct SharedState<'a, T> {
    coord: CoordState<'a, T>,
    error: Option<EngineError>,
}

impl<'a, T> WithCoord<'a, T> for Mutex<SharedState<'a, T>> {
    fn with<R>(&self, f: impl FnOnce(&mut CoordState<'a, T>) -> R) -> R {
        f(&mut self.lock().expect("coordinator lock").coord)
    }
}

/// The trial-resolution choreography: locked fit-input derivation,
/// unlocked estimate, locked resolution. Returns the published (order,
/// epoch) for the resolving worker to resync its shard, plus the
/// optimizer cycles the resolution charged to worker `w` (callers that
/// track a wall-clock position fold them in; the dedicated-pool
/// executor reads the per-worker totals from the state at the end and
/// discards the delta).
pub(crate) fn trial_round<'a, T: ShardableTarget>(
    coord: &impl WithCoord<'a, T>,
    w: usize,
    stats: &VectorStats,
    cfg: &ProgressiveConfig,
    cpu_cfg: &CpuConfig,
) -> Result<((Peo, u64), u64), EngineError> {
    let fit_inputs = coord.with(|c| c.trial_fit_inputs(w, stats, cpu_cfg))?;
    // Unlocked: the expensive estimate. The still-leased trial excludes
    // reopt rounds and double-leasing while the pool keeps streaming.
    let fitted = fit_inputs.map(|(geom, sampled)| {
        let estimate = estimate_selectivities(&geom, &sampled, &cfg.estimator);
        (geom, sampled, estimate)
    });
    coord.with(|c| {
        let before = c.optimizer_cycles[w];
        let resolved = c.resolve_trial(w, stats, fitted, cfg)?;
        Ok((resolved, c.optimizer_cycles[w] - before))
    })
}

/// The normal-morsel choreography: locked window accumulation (possibly
/// opening a reopt round), unlocked estimate, locked calibration +
/// proposal. Returns the optimizer cycles charged to worker `w` (zero
/// when no round ran).
pub(crate) fn normal_round<'a, T: ShardableTarget>(
    coord: &impl WithCoord<'a, T>,
    w: usize,
    epoch: u64,
    stats: &VectorStats,
    reopt: Option<&ProgressiveConfig>,
    cpu_cfg: &CpuConfig,
    work_remains: bool,
) -> u64 {
    let prepared = coord.with(|c| c.note_normal(w, epoch, stats, reopt, cpu_cfg, work_remains));
    let Some((geom, merged)) = prepared else {
        return 0;
    };
    let cfg = reopt.expect("a prepared reopt round implies a config");
    // Unlocked: the expensive pool-wide estimate.
    let estimate = estimate_selectivities(&geom, &merged, &cfg.estimator);
    coord.with(|c| {
        let before = c.optimizer_cycles[w];
        c.finish_reoptimize(w, &geom, &merged, estimate, cfg);
        c.optimizer_cycles[w] - before
    })
}

enum MorselMode {
    /// Executed under the accepted order of the recorded epoch.
    Normal { epoch: u64 },
    /// Executed under the leased trial order.
    Trial,
}

/// Execute `plan` over `table` with morsel-driven parallelism across the
/// pool's cores, optionally with shared progressive reoptimization.
/// The parallel generalization of [`crate::progressive::run_baseline`] /
/// [`crate::progressive::run_progressive`].
pub fn run_parallel_scan(
    table: &Table,
    plan: &SelectionPlan,
    initial_peo: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError> {
    let mut target = ScanTarget::new(table, plan, initial_peo)?;
    run_parallel_target(&mut target, morsels, pool, reopt)
}

/// [`run_parallel_scan`] with the run's decisions traced into `tracer`.
/// Tracing is non-invasive: the report is bit-identical to the untraced
/// run's.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_scan_traced(
    table: &Table,
    plan: &SelectionPlan,
    initial_peo: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    tracer: &Arc<Tracer>,
    query: usize,
) -> Result<ParallelReport, EngineError> {
    let mut target = ScanTarget::new(table, plan, initial_peo)?;
    run_parallel_target_traced(&mut target, morsels, pool, reopt, tracer, query)
}

/// Execute a filter pipeline with morsel-driven parallelism, optionally
/// with shared progressive operator reordering. The pipeline is left in
/// the final accepted order. The parallel generalization of
/// [`crate::progressive::run_progressive_pipeline`].
pub fn run_parallel_pipeline(
    pipeline: &mut Pipeline<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError> {
    pipeline.reorder(initial_order)?;
    let mut target = PipelineTarget::new(pipeline);
    run_parallel_target(&mut target, morsels, pool, reopt)
}

/// [`run_parallel_pipeline`] with observers attached (see
/// [`ExecObservers`]); every observer is non-invasive — the report is
/// bit-identical to the unobserved run's.
pub fn run_parallel_pipeline_observed(
    pipeline: &mut Pipeline<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    obs: &ExecObservers,
) -> Result<ParallelReport, EngineError> {
    pipeline.reorder(initial_order)?;
    let mut target = PipelineTarget::new(pipeline);
    run_parallel_target_inner(&mut target, morsels, pool, reopt, obs)
}

/// [`run_parallel_pipeline`] with the run's decisions traced into
/// `tracer`. Tracing is non-invasive: the report is bit-identical to the
/// untraced run's.
pub fn run_parallel_pipeline_traced(
    pipeline: &mut Pipeline<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    tracer: &Arc<Tracer>,
    query: usize,
) -> Result<ParallelReport, EngineError> {
    pipeline.reorder(initial_order)?;
    let mut target = PipelineTarget::new(pipeline);
    run_parallel_target_traced(&mut target, morsels, pool, reopt, tracer, query)
}

/// Execute a compiled program with morsel-driven parallelism, optionally
/// with shared progressive operator reordering. The program is left in
/// the final accepted order. The parallel generalization of
/// [`crate::progressive::run_progressive_program`].
pub fn run_parallel_program(
    program: &mut crate::exec::program::CompiledProgram<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError> {
    program.reorder(initial_order)?;
    let mut target = crate::progressive::CompiledTarget::new(program);
    run_parallel_target(&mut target, morsels, pool, reopt)
}

/// [`run_parallel_program`] with the run's decisions traced into
/// `tracer`. Tracing is non-invasive: the report is bit-identical to the
/// untraced run's.
pub fn run_parallel_program_traced(
    program: &mut crate::exec::program::CompiledProgram<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    tracer: &Arc<Tracer>,
    query: usize,
) -> Result<ParallelReport, EngineError> {
    program.reorder(initial_order)?;
    let mut target = crate::progressive::CompiledTarget::new(program);
    run_parallel_target_traced(&mut target, morsels, pool, reopt, tracer, query)
}

/// [`run_parallel_program`] with observers attached (see
/// [`ExecObservers`]); every observer is non-invasive — the report is
/// bit-identical to the unobserved run's.
pub fn run_parallel_program_observed(
    program: &mut crate::exec::program::CompiledProgram<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    obs: &ExecObservers,
) -> Result<ParallelReport, EngineError> {
    program.reorder(initial_order)?;
    let mut target = crate::progressive::CompiledTarget::new(program);
    run_parallel_target_inner(&mut target, morsels, pool, reopt, obs)
}

/// Drive any range-shardable progressive target across the pool.
pub fn run_parallel_target<T>(
    target: &mut T,
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError>
where
    T: ShardableTarget + Send,
{
    run_parallel_target_inner(target, morsels, pool, reopt, &ExecObservers::none())
}

/// [`run_parallel_target`] with every decision traced into `tracer`,
/// tagged with `query`. The tracer's sink hangs outside the
/// simulated-cost path, so the returned report is bit-identical to the
/// untraced run's.
pub fn run_parallel_target_traced<T>(
    target: &mut T,
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    tracer: &Arc<Tracer>,
    query: usize,
) -> Result<ParallelReport, EngineError>
where
    T: ShardableTarget + Send,
{
    let obs = ExecObservers::none().with_trace(Arc::clone(tracer), query);
    run_parallel_target_inner(target, morsels, pool, reopt, &obs)
}

/// [`run_parallel_target`] with any combination of observers attached:
/// tracer, per-stage cycle profiler, model-drift observatory. All
/// non-invasive — the report is bit-identical to the unobserved run's,
/// and the profiler's attributed cycles sum bit-exactly to the pool's
/// per-worker wall cycles (stage + optimizer lanes per worker equal that
/// worker's entry in `per_worker_cycles`; idle pads to the fleet wall).
pub fn run_parallel_target_observed<T>(
    target: &mut T,
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    obs: &ExecObservers,
) -> Result<ParallelReport, EngineError>
where
    T: ShardableTarget + Send,
{
    run_parallel_target_inner(target, morsels, pool, reopt, obs)
}

fn run_parallel_target_inner<T>(
    target: &mut T,
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
    obs: &ExecObservers,
) -> Result<ParallelReport, EngineError>
where
    T: ShardableTarget + Send,
{
    if let Some(cfg) = reopt {
        if cfg.reop_interval == 0 {
            return Err(EngineError::InvalidVectorConfig("reop_interval = 0".into()));
        }
    }
    let workers = pool.len();
    let sockets = pool.sockets();
    // Range affinity: each socket's workers claim from that socket's
    // contiguous morsel range (HyPer-style), via per-socket claim
    // counters that stay host-schedule-independent. One socket reduces
    // exactly to the flat round-robin interleave.
    let dispatcher =
        MorselDispatcher::with_affinity(target.rows(), morsels.morsel_tuples, workers, sockets)?;
    let cpu_cfg = pool.config().clone();
    let freq = cpu_cfg.timing.frequency_ghz;

    // Socket boundary: declare this query's hot set on every core it is
    // about to occupy. On a shared-LLC pool the partition shrinks each
    // core's slice to its share — a pure function of the declared
    // footprints, so per-core cycles stay host-independent — and every
    // estimator fit below prices against the (conservative, per-socket
    // minimum) share instead of the configured socket capacity.
    pool.declare_footprints(&vec![target.hot_set_bytes(); workers]);
    let llc_shares: Vec<u64> = (0..sockets)
        .map(|s| pool.min_effective_llc_bytes_socket(s))
        .collect();
    let socket_of: Vec<usize> = (0..workers).map(|w| pool.socket_of(w)).collect();
    let placement = pool.cores()[0].placement().clone();

    if let Some((tracer, query)) = &obs.trace {
        let mode = match pool.llc_mode() {
            LlcMode::Shared => "shared",
            LlcMode::Private => "private",
        };
        let shares = llc_shares.clone();
        tracer.emit(tracer.coordinator_lane(), *query, || {
            TraceEvent::LlcRepartition {
                scope: "batch",
                mode,
                shares,
            }
        });
    }

    let mut shards = Vec::with_capacity(workers);
    for _ in 0..workers {
        shards.push(target.shard()?);
    }

    // Observation-only inputs the workers need outside the lock: the
    // initial order every shard starts under and the plan-indexed
    // profiling weights (order-independent by construction).
    let initial_order = target.order();
    let plan_weights = target.stage_profile_weights();

    let worker_socket = socket_of.clone();
    let mut coord = CoordState::with_topology(target, socket_of, llc_shares, placement);
    if let Some((tracer, query)) = &obs.trace {
        coord.set_trace(Arc::clone(tracer), *query);
    }
    if let Some(drift) = &obs.drift {
        coord.set_drift(Arc::clone(drift));
    }
    let state = Mutex::new(SharedState { coord, error: None });

    // Per-worker totals merge after the join in worker order, so the
    // result assembly is deterministic regardless of thread scheduling
    // (integer sums make it order-independent anyway — this keeps even
    // intermediate states reproducible).
    let mut worker_totals: Vec<(VectorStats, u64)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .cores_mut()
            .iter_mut()
            .zip(shards)
            .enumerate()
            .map(|(w, (core, mut shard))| {
                let dispatcher = &dispatcher;
                let state = &state;
                let cpu_cfg = &cpu_cfg;
                let socket = worker_socket[w];
                let initial_order = &initial_order;
                let plan_weights = &plan_weights;
                scope.spawn(move || {
                    worker_loop(
                        w,
                        socket,
                        core,
                        &mut shard,
                        dispatcher,
                        state,
                        reopt,
                        cpu_cfg,
                        obs,
                        initial_order,
                        plan_weights,
                    )
                })
            })
            .collect();
        for handle in handles {
            worker_totals.push(handle.join().expect("worker thread panicked"));
        }
    });

    let mut st = state.into_inner().expect("no worker held the lock");
    if let Some(err) = st.error.take() {
        return Err(err);
    }
    st.coord.abandon_unleased_trial();

    let mut total = VectorStats::zero();
    for (stats, _) in &worker_totals {
        total.accumulate(stats);
    }
    let per_worker_cycles: Vec<u64> = worker_totals
        .iter()
        .zip(&st.coord.optimizer_cycles)
        .map(|((_, exec_cycles), opt_cycles)| exec_cycles + opt_cycles)
        .collect();
    let wall_cycles = fleet_wall_cycles(&per_worker_cycles);
    if let Some(prof) = &obs.profiler {
        // Per-worker busy cycles are final; the profiler fills the idle
        // lanes up to the fleet wall and seals the conservation law.
        prof.finish(&per_worker_cycles);
    }
    let socket_orders = st.coord.socket_orders();
    // Leave the master target in socket 0's accepted order: callers read
    // one final order off the target, and socket 0 is the deterministic
    // representative (`final_order` carries the same choice).
    st.coord
        .target
        .set_order(&socket_orders[0])
        .expect("published order was accepted before");
    if let Some((tracer, query)) = &obs.trace {
        let morsels = st.coord.morsels_done;
        tracer.emit_at(tracer.coordinator_lane(), *query, wall_cycles, || {
            TraceEvent::Complete {
                qualified: total.qualified,
                sum: total.sum,
                morsels,
                wall_cycles,
            }
        });
    }
    Ok(ParallelReport {
        qualified: total.qualified,
        sum: total.sum,
        wall_cycles,
        total_cycles: per_worker_cycles.iter().sum(),
        millis: wall_cycles as f64 / (freq * 1e6),
        workers,
        morsels: st.coord.morsels_done,
        per_worker_cycles,
        switches: st.coord.switches,
        estimates: st.coord.estimates,
        optimizer_cycles: st.coord.optimizer_cycles.iter().sum(),
        final_order: socket_orders[0].clone(),
        socket_orders,
        remote_access_pct: pool.remote_access_pct(),
        counters: total.counters,
    })
}

/// One worker: claim morsels, sync order / lease trials at morsel
/// boundaries, execute on the private core, report to the coordinator.
/// Returns the worker's result total and its execution cycles.
///
/// Locking discipline: the coordinator mutex is held only for cheap
/// bookkeeping (order sync, window accumulation, proposal application).
/// The expensive multi-start Nelder–Mead estimate runs *outside* the
/// lock — `estimate_in_flight` (and, for trial fits, the still-leased
/// trial itself) keeps concurrent rounds exclusive — so one worker's
/// optimizer round never stalls the rest of the pool in host time.
#[allow(clippy::too_many_arguments)]
fn worker_loop<T, S>(
    w: usize,
    socket: usize,
    core: &mut SimCpu,
    shard: &mut S,
    dispatcher: &MorselDispatcher,
    state: &Mutex<SharedState<'_, T>>,
    reopt: Option<&ProgressiveConfig>,
    cpu_cfg: &CpuConfig,
    obs: &ExecObservers,
    initial_order: &[usize],
    plan_weights: &[f64],
) -> (VectorStats, u64)
where
    T: ShardableTarget,
    S: TargetShard,
{
    let cycles_before = core.counters().cycles;
    let mut total = VectorStats::zero();
    let mut local_epoch = 0u64;
    // This worker's simulated wall position: execution cycles plus the
    // optimizer cycles its own estimator rounds charged. Pure function
    // of the simulation — the tracer's lane clock follows it, so stamps
    // never depend on host time.
    let mut opt_total = 0u64;
    // The order the shard is currently chained under, mirrored locally
    // for profiler attribution (shards expose no order accessor, and the
    // coordinator's view can move between this worker's boundaries).
    let mut cur_order = initial_order.to_vec();
    while let Some((start, end)) = dispatcher.next(w) {
        // Boundary sync: adopt the published order, or lease a pending
        // trial so the candidate runs on exactly this core.
        let action = {
            let mut st = state.lock().expect("coordinator lock");
            if st.error.is_some() {
                break;
            }
            st.coord.begin_morsel(w, local_epoch)
        };
        let mode = match action {
            BoundaryAction::Trial(order) => {
                if let Err(err) = shard.set_order(&order) {
                    state.lock().expect("coordinator lock").error = Some(err);
                    break;
                }
                cur_order = order;
                MorselMode::Trial
            }
            BoundaryAction::Adopt { order, epoch } => {
                if let Err(err) = shard.set_order(&order) {
                    state.lock().expect("coordinator lock").error = Some(err);
                    break;
                }
                cur_order = order;
                local_epoch = epoch;
                MorselMode::Normal { epoch }
            }
            BoundaryAction::Keep { epoch } => MorselMode::Normal { epoch },
        };

        let start_pos = (core.counters().cycles - cycles_before) + opt_total;
        let stats = shard.run_range(core, start, end);
        total.accumulate(&stats);

        if let Some(prof) = &obs.profiler {
            let parts = morsel_stage_parts(&cur_order, plan_weights, &stats);
            prof.record_morsel(w, socket, start_pos, &parts);
        }

        if let Some((tracer, query)) = &obs.trace {
            let query = *query;
            // Publish this lane's wall position at the morsel boundary so
            // the decision events the locked round below emits (accept /
            // revert / reopt) stamp at the morsel's end.
            tracer.set_clock(w, (core.counters().cycles - cycles_before) + opt_total);
            tracer.emit(w, query, || TraceEvent::MorselClaim {
                socket,
                start_row: start,
                rows: end - start,
                start_cycles: start_pos,
                cycles: stats.counters.cycles,
                trial: matches!(mode, MorselMode::Trial),
                epoch: local_epoch,
            });
        }

        // The lane position an optimizer round this boundary runs at:
        // the morsel's end (execution so far plus prior optimizer time).
        let round_pos = (core.counters().cycles - cycles_before) + opt_total;
        let outcome = match mode {
            MorselMode::Trial => {
                let cfg = reopt.expect("trials are only scheduled when reopt is on");
                trial_round(state, w, &stats, cfg, cpu_cfg).and_then(|((published, epoch), opt)| {
                    // Adopt whatever order the resolution left
                    // published (the trial order if accepted, the
                    // incumbent if not). Optimizer cycles are read
                    // from the state's per-worker totals at the end.
                    if let Some(prof) = &obs.profiler {
                        prof.record_optimizer(w, socket, round_pos, opt);
                    }
                    opt_total += opt;
                    shard.set_order(&published)?;
                    cur_order = published;
                    local_epoch = epoch;
                    Ok(())
                })
            }
            MorselMode::Normal { epoch } => {
                let opt = normal_round(
                    state,
                    w,
                    epoch,
                    &stats,
                    reopt,
                    cpu_cfg,
                    !dispatcher.exhausted(),
                );
                if let Some(prof) = &obs.profiler {
                    prof.record_optimizer(w, socket, round_pos, opt);
                }
                opt_total += opt;
                Ok(())
            }
        };
        if let Err(err) = outcome {
            state.lock().expect("coordinator lock").error = Some(err);
            break;
        }
    }
    (total, core.counters().cycles - cycles_before)
}
