//! The progressive coordinator: the §4.4 loop generalized to N workers.
//!
//! Worker threads (one per [`CpuPool`] core) claim morsels from the
//! shared dispatcher and execute them on their private simulated cores.
//! The coordinator state behind one mutex holds the *master* target —
//! the single shared estimator model (selectivity beliefs, probe
//! clustering calibration, rejection memory) that all workers feed and
//! follow:
//!
//! * **Sampling** — every morsel executed under the currently accepted
//!   order accumulates into its worker's window; at each reoptimization
//!   point the per-worker windows are fused
//!   ([`SampledCounters::merged`]) into one pool-wide sample for a
//!   single Nelder–Mead estimate, so optimization cost is paid once per
//!   interval, not once per core.
//! * **Epoch publication** — an accepted order bumps the epoch; workers
//!   notice at their next morsel boundary and re-chain their
//!   pre-compiled primitives (the vectorized switch of §4.4, now
//!   concurrent). Morsels measured under a stale epoch still count
//!   toward the query result but are excluded from the sample window.
//! * **Trial leasing** — a proposed order (estimator-driven,
//!   exploratory, or a §5.5 measurement probe) becomes a *trial* leased
//!   to exactly one worker: that worker runs one morsel under the
//!   candidate order and resolves it against the accepted order's
//!   cycles-per-tuple. A bad trial order therefore never runs on more
//!   than one core, while the other workers keep streaming at full
//!   speed under the incumbent order.

use std::sync::Mutex;

use popt_cost::cycles::{fleet_speedup, fleet_wall_cycles};
use popt_cost::estimate::PlanGeometry;
use popt_cpu::pmu::CounterDelta;
use popt_cpu::{CpuConfig, CpuPool, SimCpu};
use popt_solver::{estimate_selectivities, SampledCounters};

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::scan::VectorStats;
use crate::plan::{Peo, SelectionPlan};
use popt_storage::Table;

use crate::progressive::{PipelineTarget, ProgressiveConfig, ScanTarget, SwitchEvent};

use super::morsel::{MorselConfig, MorselDispatcher};
use super::{ShardableTarget, TargetShard};

/// Outcome of a morsel-driven parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Qualifying tuples (bit-identical to the single-core executor).
    pub qualified: u64,
    /// Aggregate sum (bit-identical to the single-core executor).
    pub sum: i64,
    /// Wall-clock cycles: the busiest worker, including the optimizer
    /// cycles charged to the cores that ran estimator rounds.
    pub wall_cycles: u64,
    /// Aggregate cycles across all workers (total work).
    pub total_cycles: u64,
    /// Wall-clock simulated milliseconds.
    pub millis: f64,
    /// Workers (= pool cores) that executed the run.
    pub workers: usize,
    /// Morsels executed.
    pub morsels: usize,
    /// Per-worker cycles (execution + that worker's optimizer rounds).
    pub per_worker_cycles: Vec<u64>,
    /// Order switches, in scheduling order (`vector` = morsel count at
    /// the time the trial was scheduled).
    pub switches: Vec<SwitchEvent>,
    /// Estimator invocations.
    pub estimates: usize,
    /// Total cycles attributed to the optimizer.
    pub optimizer_cycles: u64,
    /// The accepted order when the scan finished.
    pub final_order: Peo,
    /// Counter totals across all cores.
    pub counters: CounterDelta,
}

impl ParallelReport {
    /// Wall-clock speedup over a reference single-worker run.
    pub fn speedup_over(&self, reference_wall_cycles: u64) -> f64 {
        fleet_speedup(reference_wall_cycles, &self.per_worker_cycles)
    }
}

/// A candidate order being tried on exactly one worker.
struct Trial {
    order: Peo,
    switch_idx: usize,
    /// Accepted-order cycles-per-tuple the trial must not regress from.
    prev_cpt: f64,
    leased: bool,
}

/// Everything the workers share, behind one mutex.
struct CoordState<'a, T> {
    /// The master target: order tracking plus the shared estimator model
    /// (probe clustering, proposal logic). Never executes a morsel.
    target: &'a mut T,
    /// Bumped on every accepted switch; workers resync when it moves.
    epoch: u64,
    /// The accepted evaluation order.
    published: Peo,
    trial: Option<Trial>,
    /// Recently reverted orders: (order, reopt round rejected at).
    rejected: Vec<(Peo, usize)>,
    reopt_round: usize,
    last_accept_round: usize,
    morsels_since_reopt: usize,
    /// Per-worker sample windows under the current epoch's order.
    windows: Vec<VectorStats>,
    /// Cycles and tuples accumulated under the current epoch's order —
    /// their ratio is the accepted order's cycles-per-tuple, the
    /// reference a trial must not regress from. An *average* over the
    /// whole epoch (not the most recent morsel) so the reference does
    /// not depend on which worker happened to report last, nor on one
    /// core's momentary cache state.
    epoch_cycles: u64,
    epoch_tuples: u64,
    /// Whether an estimator round snapshot is being fitted outside the
    /// lock; excludes concurrent reopt rounds like a pending trial does.
    estimate_in_flight: bool,
    switches: Vec<SwitchEvent>,
    estimates: usize,
    /// Optimizer cycles charged per worker (to the core that ran the
    /// estimator round).
    optimizer_cycles: Vec<u64>,
    morsels_done: usize,
    error: Option<EngineError>,
}

enum MorselMode {
    /// Executed under the accepted order of the recorded epoch.
    Normal { epoch: u64 },
    /// Executed under the leased trial order.
    Trial,
}

/// Execute `plan` over `table` with morsel-driven parallelism across the
/// pool's cores, optionally with shared progressive reoptimization.
/// The parallel generalization of [`crate::progressive::run_baseline`] /
/// [`crate::progressive::run_progressive`].
pub fn run_parallel_scan(
    table: &Table,
    plan: &SelectionPlan,
    initial_peo: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError> {
    let mut target = ScanTarget::new(table, plan, initial_peo)?;
    run_parallel_target(&mut target, morsels, pool, reopt)
}

/// Execute a filter pipeline with morsel-driven parallelism, optionally
/// with shared progressive operator reordering. The pipeline is left in
/// the final accepted order. The parallel generalization of
/// [`crate::progressive::run_progressive_pipeline`].
pub fn run_parallel_pipeline(
    pipeline: &mut Pipeline<'_>,
    initial_order: &[usize],
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError> {
    pipeline.reorder(initial_order)?;
    let mut target = PipelineTarget::new(pipeline);
    run_parallel_target(&mut target, morsels, pool, reopt)
}

/// Drive any range-shardable progressive target across the pool.
pub fn run_parallel_target<T>(
    target: &mut T,
    morsels: MorselConfig,
    pool: &mut CpuPool,
    reopt: Option<&ProgressiveConfig>,
) -> Result<ParallelReport, EngineError>
where
    T: ShardableTarget + Send,
{
    if let Some(cfg) = reopt {
        if cfg.reop_interval == 0 {
            return Err(EngineError::InvalidVectorConfig("reop_interval = 0".into()));
        }
    }
    let workers = pool.len();
    let dispatcher = MorselDispatcher::new(target.rows(), morsels.morsel_tuples, workers)?;
    let cpu_cfg = pool.config().clone();
    let freq = cpu_cfg.timing.frequency_ghz;

    let mut shards = Vec::with_capacity(workers);
    for _ in 0..workers {
        shards.push(target.shard()?);
    }

    let initial_order = target.order();
    let state = Mutex::new(CoordState {
        target,
        epoch: 0,
        published: initial_order,
        trial: None,
        rejected: Vec::new(),
        reopt_round: 0,
        last_accept_round: 0,
        morsels_since_reopt: 0,
        windows: vec![VectorStats::zero(); workers],
        epoch_cycles: 0,
        epoch_tuples: 0,
        estimate_in_flight: false,
        switches: Vec::new(),
        estimates: 0,
        optimizer_cycles: vec![0; workers],
        morsels_done: 0,
        error: None,
    });

    // Per-worker totals merge after the join in worker order, so the
    // result assembly is deterministic regardless of thread scheduling
    // (integer sums make it order-independent anyway — this keeps even
    // intermediate states reproducible).
    let mut worker_totals: Vec<(VectorStats, u64)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .cores_mut()
            .iter_mut()
            .zip(shards)
            .enumerate()
            .map(|(w, (core, mut shard))| {
                let dispatcher = &dispatcher;
                let state = &state;
                let cpu_cfg = &cpu_cfg;
                scope.spawn(move || {
                    worker_loop(w, core, &mut shard, dispatcher, state, reopt, cpu_cfg)
                })
            })
            .collect();
        for handle in handles {
            worker_totals.push(handle.join().expect("worker thread panicked"));
        }
    });

    let mut st = state.into_inner().expect("no worker held the lock");
    if let Some(err) = st.error.take() {
        return Err(err);
    }
    // A trial scheduled after the last morsel was claimed never ran; it
    // was never accepted either, so record it as reverted.
    if let Some(trial) = st.trial.take() {
        if !trial.leased {
            st.switches[trial.switch_idx].reverted = true;
        }
    }

    let mut total = VectorStats::zero();
    for (stats, _) in &worker_totals {
        total.accumulate(stats);
    }
    let per_worker_cycles: Vec<u64> = worker_totals
        .iter()
        .zip(&st.optimizer_cycles)
        .map(|((_, exec_cycles), opt_cycles)| exec_cycles + opt_cycles)
        .collect();
    let wall_cycles = fleet_wall_cycles(&per_worker_cycles);
    Ok(ParallelReport {
        qualified: total.qualified,
        sum: total.sum,
        wall_cycles,
        total_cycles: per_worker_cycles.iter().sum(),
        millis: wall_cycles as f64 / (freq * 1e6),
        workers,
        morsels: st.morsels_done,
        per_worker_cycles,
        switches: st.switches,
        estimates: st.estimates,
        optimizer_cycles: st.optimizer_cycles.iter().sum(),
        final_order: st.published,
        counters: total.counters,
    })
}

/// One worker: claim morsels, sync order / lease trials at morsel
/// boundaries, execute on the private core, report to the coordinator.
/// Returns the worker's result total and its execution cycles.
///
/// Locking discipline: the coordinator mutex is held only for cheap
/// bookkeeping (order sync, window accumulation, proposal application).
/// The expensive multi-start Nelder–Mead estimate runs *outside* the
/// lock — `estimate_in_flight` (and, for trial fits, the still-leased
/// trial itself) keeps concurrent rounds exclusive — so one worker's
/// optimizer round never stalls the rest of the pool in host time.
fn worker_loop<T, S>(
    w: usize,
    core: &mut SimCpu,
    shard: &mut S,
    dispatcher: &MorselDispatcher,
    state: &Mutex<CoordState<'_, T>>,
    reopt: Option<&ProgressiveConfig>,
    cpu_cfg: &CpuConfig,
) -> (VectorStats, u64)
where
    T: ShardableTarget,
    S: TargetShard,
{
    let cycles_before = core.counters().cycles;
    let mut total = VectorStats::zero();
    let mut local_epoch = 0u64;
    while let Some((start, end)) = dispatcher.next(w) {
        // Boundary sync: adopt the published order, or lease a pending
        // trial so the candidate runs on exactly this core.
        let mode = {
            let mut st = state.lock().expect("coordinator lock");
            if st.error.is_some() {
                break;
            }
            let lease = match st.trial.as_mut() {
                Some(trial) if !trial.leased => {
                    trial.leased = true;
                    Some(trial.order.clone())
                }
                _ => None,
            };
            if let Some(order) = lease {
                // Ground the comparison in this core's own recent rate
                // under the incumbent order when it has one —
                // consecutive morsels on one core control for cache
                // state, like the serial loop's vector-to-vector
                // comparison. The pool-wide epoch average (snapshot at
                // scheduling) remains the fallback for a cold core.
                if st.windows[w].tuples > 0 {
                    let own_cpt = st.windows[w].cycles_per_tuple();
                    if let Some(trial) = st.trial.as_mut() {
                        trial.prev_cpt = own_cpt;
                    }
                }
                if let Err(err) = shard.set_order(&order) {
                    st.error = Some(err);
                    break;
                }
                MorselMode::Trial
            } else {
                if local_epoch != st.epoch {
                    let published = st.published.clone();
                    if let Err(err) = shard.set_order(&published) {
                        st.error = Some(err);
                        break;
                    }
                    local_epoch = st.epoch;
                }
                MorselMode::Normal { epoch: st.epoch }
            }
        };

        let stats = shard.run_range(core, start, end);
        total.accumulate(&stats);

        let outcome = match mode {
            MorselMode::Trial => {
                let cfg = reopt.expect("trials are only scheduled when reopt is on");
                resolve_trial(state, w, &stats, cfg, cpu_cfg).and_then(|(published, epoch)| {
                    // Adopt whatever order the resolution left published
                    // (the trial order if accepted, the incumbent if not).
                    shard.set_order(&published)?;
                    local_epoch = epoch;
                    Ok(())
                })
            }
            MorselMode::Normal { epoch } => {
                report_normal(state, w, epoch, &stats, reopt, cpu_cfg, dispatcher)
            }
        };
        if let Err(err) = outcome {
            state.lock().expect("coordinator lock").error = Some(err);
            break;
        }
    }
    (total, core.counters().cycles - cycles_before)
}

/// Resolve a leased trial against the morsel that ran it: calibrate from
/// the trial sample (trial vectors double as measurement probes, §5.5),
/// then accept — publishing a new epoch — or revert into the rejection
/// memory. Returns the published order and epoch after resolution so the
/// resolving worker can resync its shard.
fn resolve_trial<T: ShardableTarget>(
    state: &Mutex<CoordState<'_, T>>,
    w: usize,
    stats: &VectorStats,
    cfg: &ProgressiveConfig,
    cpu_cfg: &CpuConfig,
) -> Result<(Peo, u64), EngineError> {
    // Locked: count the morsel and derive the trial-order geometry the
    // sample must be fitted against — the master target moves to the
    // trial order (it moves back below if the trial reverts).
    let fit_inputs = {
        let mut st = state.lock().expect("coordinator lock");
        st.morsels_done += 1;
        let trial_order = st
            .trial
            .as_ref()
            .expect("a leased trial to resolve")
            .order
            .clone();
        if st.target.wants_trial_calibration() {
            let sampled = stats.sampled_counters();
            st.target.set_order(&trial_order)?;
            let geom = st.target.plan_geometry(sampled.n_input, cpu_cfg);
            Some((geom, sampled))
        } else {
            None
        }
    };
    // Unlocked: the expensive estimate. The still-leased trial excludes
    // reopt rounds and double-leasing while the pool keeps streaming.
    let fitted = fit_inputs.map(|(geom, sampled)| {
        let estimate = estimate_selectivities(&geom, &sampled, &cfg.estimator);
        (geom, sampled, estimate)
    });
    // Locked: calibrate, decide, publish or revert.
    let mut st = state.lock().expect("coordinator lock");
    if let Some((geom, sampled, estimate)) = fitted {
        st.estimates += 1;
        st.optimizer_cycles[w] += estimate.evaluations as u64 * cfg.cycles_per_estimator_eval;
        st.target.calibrate(&geom, &sampled, &estimate.survivors);
    }
    let trial = st.trial.take().expect("a leased trial to resolve");
    let cpt = stats.cycles_per_tuple();
    let regressed =
        cfg.revert_on_regression && cpt > trial.prev_cpt * (1.0 + cfg.regression_tolerance);
    if regressed {
        let round = st.reopt_round;
        st.rejected.push((trial.order, round));
        st.switches[trial.switch_idx].reverted = true;
        let published = st.published.clone();
        st.target.set_order(&published)?;
    } else {
        st.target.set_order(&trial.order)?;
        st.published = trial.order;
        st.epoch += 1;
        st.last_accept_round = st.reopt_round;
        // The windows and the epoch reference sampled the superseded
        // order; the trial morsel is the new epoch's first observation.
        for window in &mut st.windows {
            *window = VectorStats::zero();
        }
        st.morsels_since_reopt = 0;
        st.epoch_cycles = stats.counters.cycles;
        st.epoch_tuples = stats.tuples;
    }
    Ok((st.published.clone(), st.epoch))
}

/// Report a morsel executed under the accepted order: accumulate it into
/// the worker's sample window and, when the interval is due, run one
/// reoptimization round — the estimate itself outside the lock.
fn report_normal<T: ShardableTarget>(
    state: &Mutex<CoordState<'_, T>>,
    w: usize,
    epoch: u64,
    stats: &VectorStats,
    reopt: Option<&ProgressiveConfig>,
    cpu_cfg: &CpuConfig,
    dispatcher: &MorselDispatcher,
) -> Result<(), EngineError> {
    // Locked: bookkeeping, possibly starting a reopt round.
    let prepared = {
        let mut st = state.lock().expect("coordinator lock");
        st.morsels_done += 1;
        if epoch != st.epoch {
            // Measured under a stale epoch: counts toward the result,
            // excluded from the sample window.
            return Ok(());
        }
        st.windows[w].accumulate(stats);
        st.epoch_cycles += stats.counters.cycles;
        st.epoch_tuples += stats.tuples;
        st.morsels_since_reopt += 1;
        match reopt {
            Some(cfg)
                if st.morsels_since_reopt >= cfg.reop_interval
                    && st.trial.is_none()
                    && !st.estimate_in_flight
                    && !dispatcher.exhausted() =>
            {
                begin_reoptimize(&mut st, cfg, cpu_cfg)
            }
            _ => None,
        }
    };
    let Some((geom, merged)) = prepared else {
        return Ok(());
    };
    let cfg = reopt.expect("a prepared reopt round implies a config");
    // Unlocked: the expensive pool-wide estimate.
    let estimate = estimate_selectivities(&geom, &merged, &cfg.estimator);
    // Locked: calibrate and propose. No trial can have been scheduled
    // nor the epoch moved meanwhile — both only happen inside reopt
    // rounds, and `estimate_in_flight` excluded those.
    let mut st = state.lock().expect("coordinator lock");
    st.estimate_in_flight = false;
    st.estimates += 1;
    st.optimizer_cycles[w] += estimate.evaluations as u64 * cfg.cycles_per_estimator_eval;
    st.target.calibrate(&geom, &merged, &estimate.survivors);
    let proposed = st.target.propose_order(&geom, &estimate.selectivities);
    if st.rejected.iter().any(|(order, _)| order == &proposed) {
        return Ok(());
    }
    if proposed != st.published {
        schedule_trial(&mut st, proposed, false);
    }
    Ok(())
}

/// Start a reoptimization round under the lock: age out rejections,
/// handle the cheap stall-exploration and measurement-probe paths
/// directly, or snapshot the fused per-worker windows for an estimator
/// round the caller runs outside the lock.
fn begin_reoptimize<T: ShardableTarget>(
    st: &mut CoordState<'_, T>,
    cfg: &ProgressiveConfig,
    cpu_cfg: &CpuConfig,
) -> Option<(PlanGeometry, SampledCounters)> {
    st.reopt_round += 1;
    st.morsels_since_reopt = 0;
    let round = st.reopt_round;
    st.rejected
        .retain(|(_, at)| round - at <= cfg.rejection_ttl);

    // Stall-triggered exploration (§4.5), same trigger as the serial
    // loop: no recently accepted switch AND an active disagreement.
    let stalled = st.reopt_round >= st.last_accept_round + 3 && !st.rejected.is_empty();
    if cfg.explore_correlation && stalled && st.reopt_round % 2 == 0 {
        let mut explored = st.published.clone();
        explored.rotate_right(1);
        if explored != st.published {
            schedule_trial(st, explored, true);
        }
        return None;
    }

    // Measurement probe: an order the target wants to observe once.
    if let Some(probe) = st.target.take_probe_order() {
        if probe != st.published {
            schedule_trial(st, probe, true);
            return None;
        }
    }

    // Fuse the per-worker windows into one pool-wide sample; one
    // estimator round serves the whole pool.
    let samples: Vec<SampledCounters> = st
        .windows
        .iter()
        .filter(|window| window.tuples > 0)
        .map(VectorStats::sampled_counters)
        .collect();
    let merged = SampledCounters::merged(&samples)?;
    let geom = st.target.plan_geometry(merged.n_input, cpu_cfg);
    // The window feeds this estimate; the next interval accumulates
    // fresh while the fit runs.
    for window in &mut st.windows {
        *window = VectorStats::zero();
    }
    st.estimate_in_flight = true;
    Some((geom, merged))
}

fn schedule_trial<T>(st: &mut CoordState<'_, T>, order: Peo, exploratory: bool) {
    st.switches.push(SwitchEvent {
        vector: st.morsels_done,
        from: st.published.clone(),
        to: order.clone(),
        reverted: false,
        exploratory,
    });
    // Trials are only scheduled after at least one full reopt interval
    // of in-epoch morsels, so the epoch average is always populated.
    debug_assert!(st.epoch_tuples > 0, "trial scheduled with no reference");
    st.trial = Some(Trial {
        order,
        switch_idx: st.switches.len() - 1,
        prev_cpt: st.epoch_cycles as f64 / st.epoch_tuples.max(1) as f64,
        leased: false,
    });
}
