//! Morsel-wise work division: carve a scan's row range into cache-sized
//! chunks with a *deterministic interleaved placement* — morsel `k`
//! belongs to worker `k mod workers`.
//!
//! A *morsel* (HyPer's term) is the parallel analogue of the vectorized
//! loop's vector: small enough that a worker reacts to a newly published
//! operator order within microseconds (workers re-check the coordinator
//! at every morsel boundary), large enough that claiming one costs a
//! single atomic add rather than per-tuple synchronization.
//!
//! Placement is deterministic rather than work-stealing on purpose: the
//! execution being *simulated*, a greedy shared cursor would let the
//! host OS scheduler decide how many morsels each simulated core
//! executes — on a loaded or few-core host one thread can race ahead
//! and claim far more than its share, inflating that core's simulated
//! cycles and making the measured wall clock (the busiest core)
//! scheduling-dependent. With the interleave, each worker's morsel
//! *set* is a pure function of the workload, so a baseline
//! (non-progressive) parallel run is fully reproducible on any host.
//! With progressive reoptimization enabled, a residual scheduling
//! sensitivity remains — which morsel boundary an accepted order lands
//! on, and which worker's core is billed for an estimator round, follow
//! the cross-worker completion interleaving — but it is bounded to
//! single-morsel granularity (per-core cycles shift by a few percent;
//! query results stay bit-identical regardless). Morsels are
//! near-uniform (same tuple count), so the balance work-stealing would
//! buy is at most one morsel.
//!
//! On a multi-socket pool the dispatcher adds HyPer-style **range
//! affinity** ([`MorselDispatcher::with_affinity`]): the morsel range is
//! first split into contiguous per-socket blocks (proportional to each
//! socket's worker count), and each socket's workers interleave within
//! their own block via the same per-worker claim counters. A worker
//! therefore only ever touches rows from its socket's block — pin those
//! rows' columns to that socket in the `NumaPlacement` and every fact
//! access is local. The placement stays a pure function of the workload
//! and topology, never of host scheduling; with one socket the formula
//! reduces exactly to the flat interleave.

use std::sync::atomic::{AtomicUsize, Ordering};

use popt_cpu::CpuConfig;

use crate::error::EngineError;

/// Morsel-division parameters of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselConfig {
    /// Tuples per morsel (the parallel counterpart of
    /// [`crate::progressive::VectorConfig::vector_tuples`]).
    pub morsel_tuples: usize,
}

impl MorselConfig {
    /// A morsel of exactly `morsel_tuples` tuples.
    pub fn new(morsel_tuples: usize) -> Self {
        Self { morsel_tuples }
    }

    /// Cache-friendly sizing: the morsel's hot column data
    /// (`hot_bytes_per_tuple` = summed widths of the columns the pipeline
    /// reads per tuple) should fit the per-core L2, so a worker's reads
    /// stay resident for the duration of the morsel while still being
    /// large enough to amortize the claim and the coordinator check.
    pub fn cache_friendly(cpu: &CpuConfig, hot_bytes_per_tuple: usize) -> Self {
        let l2_bytes = cpu
            .levels
            .get(1)
            .map_or(64 * 1024, |l| l.capacity_bytes as usize);
        Self::fit_hot_bytes(l2_bytes, hot_bytes_per_tuple)
    }

    /// [`MorselConfig::cache_friendly`] for a core on a contended socket:
    /// the morsel's hot data must fit the *smaller* of the private L2 and
    /// the core's effective LLC share (`llc_share_bytes`). On a shared
    /// socket the share can drop below L2 — an L2-sized morsel would then
    /// stream through a slice that cannot hold it, re-fetching from
    /// memory what a share-sized morsel keeps resident.
    pub fn cache_friendly_for_share(
        cpu: &CpuConfig,
        hot_bytes_per_tuple: usize,
        llc_share_bytes: u64,
    ) -> Self {
        let l2_bytes = cpu
            .levels
            .get(1)
            .map_or(64 * 1024, |l| l.capacity_bytes as usize);
        Self::fit_hot_bytes(
            l2_bytes.min(usize::try_from(llc_share_bytes).unwrap_or(usize::MAX)),
            hot_bytes_per_tuple,
        )
    }

    fn fit_hot_bytes(budget_bytes: usize, hot_bytes_per_tuple: usize) -> Self {
        Self {
            morsel_tuples: (budget_bytes / hot_bytes_per_tuple.max(1)).clamp(1_024, 65_536),
        }
    }
}

impl Default for MorselConfig {
    fn default() -> Self {
        Self {
            morsel_tuples: 4_096,
        }
    }
}

/// The work division of a parallel scan over `0..rows`: the morsel
/// range is split into contiguous per-socket blocks (one block spanning
/// everything for a single-socket dispatcher), and within its socket's
/// block worker `w` owns every `ws`-th morsel (`ws` = workers on that
/// socket), claimed lazily via per-worker counters. Disjoint ranges,
/// deterministic placement, completion in any order.
#[derive(Debug)]
pub struct MorselDispatcher {
    rows: usize,
    morsel_tuples: usize,
    workers: usize,
    sockets: usize,
    /// Morsel-index boundary of each socket's contiguous block
    /// (`boundaries[s] .. boundaries[s + 1]`); length `sockets + 1`.
    boundaries: Vec<usize>,
    /// Per-worker count of morsels that worker has claimed so far.
    claimed: Vec<AtomicUsize>,
}

impl MorselDispatcher {
    /// A dispatcher over `rows` tuples in morsels of `morsel_tuples`,
    /// interleaved across `workers` workers (single socket: morsel `k`
    /// belongs to worker `k mod workers`).
    pub fn new(rows: usize, morsel_tuples: usize, workers: usize) -> Result<Self, EngineError> {
        Self::with_affinity(rows, morsel_tuples, workers, 1)
    }

    /// A dispatcher with range affinity across `sockets` contiguous
    /// socket blocks. Workers map to sockets exactly like pool cores
    /// (`socket_of(w) = w * sockets / workers`), block sizes are
    /// proportional to each socket's worker count, and each socket's
    /// workers interleave within their block — so the claim placement
    /// is a pure function of `(rows, morsel_tuples, workers, sockets)`.
    /// `sockets = 1` is exactly [`MorselDispatcher::new`].
    pub fn with_affinity(
        rows: usize,
        morsel_tuples: usize,
        workers: usize,
        sockets: usize,
    ) -> Result<Self, EngineError> {
        if morsel_tuples == 0 {
            return Err(EngineError::InvalidVectorConfig("morsel_tuples = 0".into()));
        }
        if workers == 0 {
            return Err(EngineError::InvalidVectorConfig("workers = 0".into()));
        }
        if sockets == 0 || sockets > workers {
            return Err(EngineError::InvalidVectorConfig(format!(
                "sockets ({sockets}) must be in 1..=workers ({workers})"
            )));
        }
        let total = rows.div_ceil(morsel_tuples);
        // boundary[s] splits the morsel range proportionally to the
        // cumulative worker count — each socket's block matches its
        // share of the execution bandwidth.
        let boundaries: Vec<usize> = (0..=sockets)
            .map(|s| total * Self::first_worker_of(s, workers, sockets) / workers)
            .collect();
        Ok(Self {
            rows,
            morsel_tuples,
            workers,
            sockets,
            boundaries,
            claimed: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// First worker index on socket `s` (contiguous worker blocks, same
    /// split as `CpuPool::socket_of`); `workers` for `s == sockets`.
    fn first_worker_of(s: usize, workers: usize, sockets: usize) -> usize {
        (s * workers).div_ceil(sockets)
    }

    /// Socket of `worker`, plus its local index and the worker count of
    /// that socket.
    fn worker_slot(&self, worker: usize) -> (usize, usize, usize) {
        let s = worker * self.sockets / self.workers;
        let first = Self::first_worker_of(s, self.workers, self.sockets);
        let next = Self::first_worker_of(s + 1, self.workers, self.sockets);
        (s, worker - first, next - first)
    }

    /// The morsel index `worker` would claim at claim count `round`,
    /// with its socket's block end.
    fn morsel_at(&self, worker: usize, round: usize) -> (usize, usize) {
        let (s, local, ws) = self.worker_slot(worker);
        (
            self.boundaries[s] + round * ws + local,
            self.boundaries[s + 1],
        )
    }

    /// Whether `worker`'s share of the range still has unclaimed
    /// morsels — the non-consuming eligibility probe the serving
    /// scheduler uses before spending a stride slot on the query.
    pub fn has_morsels(&self, worker: usize) -> bool {
        let round = self.claimed[worker].load(Ordering::Relaxed);
        let (idx, block_end) = self.morsel_at(worker, round);
        idx < block_end
    }

    /// Claim `worker`'s next morsel; `None` once that worker's share of
    /// the range is exhausted.
    pub fn next(&self, worker: usize) -> Option<(usize, usize)> {
        let round = self.claimed[worker].fetch_add(1, Ordering::Relaxed);
        let (idx, block_end) = self.morsel_at(worker, round);
        (idx < block_end).then(|| {
            let start = idx * self.morsel_tuples;
            (start, (start + self.morsel_tuples).min(self.rows))
        })
    }

    /// Whether every morsel has been claimed (claimed ≠ completed: a
    /// worker may still be executing its last one). Used to avoid
    /// scheduling trial orders that could never run.
    pub fn exhausted(&self) -> bool {
        (0..self.workers).all(|w| {
            let round = self.claimed[w].load(Ordering::Relaxed);
            let (idx, block_end) = self.morsel_at(w, round);
            idx >= block_end
        })
    }

    /// Total number of morsels the range divides into.
    pub fn total_morsels(&self) -> usize {
        self.rows.div_ceil(self.morsel_tuples)
    }

    /// Workers the range is interleaved across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sockets the range is blocked across (1 = flat interleave).
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Row range `[start, end)` of socket `s`'s contiguous block — the
    /// rows only `s`'s workers will ever touch. Registering these rows'
    /// columns to socket `s` in the `NumaPlacement` makes every fact
    /// access local under affinity dispatch.
    pub fn socket_row_range(&self, socket: usize) -> (usize, usize) {
        let start = (self.boundaries[socket] * self.morsel_tuples).min(self.rows);
        let end = (self.boundaries[socket + 1] * self.morsel_tuples).min(self.rows);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_morsels_cover_range_in_order() {
        let d = MorselDispatcher::new(10_000, 1_024, 1).unwrap();
        let mut seen = Vec::new();
        while let Some(m) = d.next(0) {
            seen.push(m);
        }
        assert_eq!(seen.len(), d.total_morsels());
        assert_eq!(seen.first(), Some(&(0, 1_024)));
        assert_eq!(seen.last(), Some(&(9_216, 10_000)));
        for pair in seen.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "gap or overlap: {pair:?}");
        }
        assert!(d.exhausted());
        assert!(d.next(0).is_none());
    }

    #[test]
    fn interleaved_placement_is_deterministic_and_balanced() {
        let workers = 4;
        let d = MorselDispatcher::new(100_000, 777, workers).unwrap();
        // Worker w gets exactly morsels w, w+4, w+8, … regardless of the
        // order (or concurrency) in which claims happen.
        let mut all = Vec::new();
        for w in (0..workers).rev() {
            let mut count = 0;
            while let Some((start, end)) = d.next(w) {
                assert_eq!(start / 777 % workers, w, "morsel of the wrong worker");
                all.push((start, end));
                count += 1;
            }
            let total = d.total_morsels();
            let share = total / workers + usize::from(w < total % workers);
            assert_eq!(count, share, "worker {w} claimed an unbalanced share");
        }
        all.sort_unstable();
        assert_eq!(all.len(), d.total_morsels());
        let mut expect_start = 0;
        for (start, end) in all {
            assert_eq!(start, expect_start);
            expect_start = end;
        }
        assert_eq!(expect_start, 100_000);
        assert!(d.exhausted());
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let d = MorselDispatcher::new(100_000, 777, 4).unwrap();
        let claimed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let d = &d;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(m) = d.next(w) {
                        claimed.lock().unwrap().push(m);
                    }
                });
            }
        });
        let mut claimed = claimed.into_inner().unwrap();
        claimed.sort_unstable();
        assert_eq!(claimed.len(), d.total_morsels());
        let mut expect_start = 0;
        for (start, end) in claimed {
            assert_eq!(start, expect_start);
            expect_start = end;
        }
        assert_eq!(expect_start, 100_000);
    }

    #[test]
    fn has_morsels_tracks_per_worker_shares_without_consuming() {
        let d = MorselDispatcher::new(4 * 777, 777, 2).unwrap();
        assert!(d.has_morsels(0) && d.has_morsels(1));
        // Probing never consumes.
        assert!(d.has_morsels(0));
        // Worker 0 drains its share; worker 1's is untouched.
        while d.next(0).is_some() {}
        assert!(!d.has_morsels(0));
        assert!(d.has_morsels(1));
        while d.next(1).is_some() {}
        assert!(!d.has_morsels(1));
        assert!(d.exhausted());
    }

    #[test]
    fn affinity_blocks_are_contiguous_disjoint_and_complete() {
        // 4 workers on 2 sockets over 100k rows: sockets own the two
        // halves of the morsel range, each half interleaved by its own
        // two workers.
        let d = MorselDispatcher::with_affinity(100_000, 777, 4, 2).unwrap();
        assert_eq!(d.sockets(), 2);
        let total = d.total_morsels();
        let (s0_start, s0_end) = d.socket_row_range(0);
        let (s1_start, s1_end) = d.socket_row_range(1);
        assert_eq!(s0_start, 0);
        assert_eq!(s0_end, s1_start, "blocks tile the range");
        assert_eq!(s1_end, 100_000);
        let mut all = Vec::new();
        for w in (0..4).rev() {
            let (lo, hi) = if w < 2 {
                (s0_start, s0_end)
            } else {
                (s1_start, s1_end)
            };
            while let Some((start, end)) = d.next(w) {
                assert!(
                    start >= lo && end <= hi,
                    "worker {w} strayed off its socket block: {start}..{end}"
                );
                all.push((start, end));
            }
        }
        all.sort_unstable();
        assert_eq!(all.len(), total);
        let mut expect_start = 0;
        for (start, end) in all {
            assert_eq!(start, expect_start);
            expect_start = end;
        }
        assert_eq!(expect_start, 100_000);
        assert!(d.exhausted());
    }

    #[test]
    fn one_socket_affinity_is_exactly_the_flat_interleave() {
        let flat = MorselDispatcher::new(50_000, 777, 3).unwrap();
        let aff = MorselDispatcher::with_affinity(50_000, 777, 3, 1).unwrap();
        for w in 0..3 {
            loop {
                let a = flat.next(w);
                let b = aff.next(w);
                assert_eq!(a, b, "worker {w} diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn affinity_with_uneven_workers_keeps_blocks_proportional() {
        // 3 workers on 2 sockets: socket 0 holds workers {0, 1}, socket 1
        // holds {2}; blocks split the morsel range 2:1.
        let d = MorselDispatcher::with_affinity(90_000, 1_000, 3, 2).unwrap();
        let (a0, a1) = d.socket_row_range(0);
        let (b0, b1) = d.socket_row_range(1);
        assert_eq!((a0, a1), (0, 60_000));
        assert_eq!((b0, b1), (60_000, 90_000));
        // Worker 2 alone drains socket 1's block in order.
        let mut expect = 60_000;
        while let Some((start, end)) = d.next(2) {
            assert_eq!(start, expect);
            expect = end;
        }
        assert_eq!(expect, 90_000);
    }

    #[test]
    fn affinity_rejects_more_sockets_than_workers() {
        assert!(matches!(
            MorselDispatcher::with_affinity(100, 64, 2, 3).unwrap_err(),
            EngineError::InvalidVectorConfig(_)
        ));
        assert!(matches!(
            MorselDispatcher::with_affinity(100, 64, 2, 0).unwrap_err(),
            EngineError::InvalidVectorConfig(_)
        ));
    }

    #[test]
    fn zero_morsel_size_and_zero_workers_are_rejected() {
        assert!(matches!(
            MorselDispatcher::new(100, 0, 1).unwrap_err(),
            EngineError::InvalidVectorConfig(_)
        ));
        assert!(matches!(
            MorselDispatcher::new(100, 64, 0).unwrap_err(),
            EngineError::InvalidVectorConfig(_)
        ));
    }

    #[test]
    fn empty_range_yields_no_morsels() {
        let d = MorselDispatcher::new(0, 64, 2).unwrap();
        assert!(d.next(0).is_none());
        assert!(d.next(1).is_none());
        assert_eq!(d.total_morsels(), 0);
        assert!(d.exhausted());
    }

    #[test]
    fn cache_friendly_sizing_tracks_l2() {
        let cfg = CpuConfig::tiny_test();
        let m = MorselConfig::cache_friendly(&cfg, 8);
        assert!(m.morsel_tuples >= 1_024 && m.morsel_tuples <= 65_536);
        // More hot bytes per tuple never increases the morsel.
        let wide = MorselConfig::cache_friendly(&cfg, 64);
        assert!(wide.morsel_tuples <= m.morsel_tuples);
    }

    #[test]
    fn share_aware_sizing_fits_the_smaller_of_l2_and_share() {
        let cfg = CpuConfig::xeon_e5_2630_v2(); // 256 KiB L2
        let hot = 16;
        // Share above L2: identical to the private sizing.
        let wide = MorselConfig::cache_friendly_for_share(&cfg, hot, 1 << 20);
        assert_eq!(wide, MorselConfig::cache_friendly(&cfg, hot));
        // Share below L2: the morsel shrinks to fit the slice.
        let narrow = MorselConfig::cache_friendly_for_share(&cfg, hot, 64 * 1024);
        assert_eq!(narrow.morsel_tuples, 64 * 1024 / hot);
        assert!(narrow.morsel_tuples < wide.morsel_tuples);
        // The floor still applies for tiny shares.
        let floor = MorselConfig::cache_friendly_for_share(&cfg, hot, 1024);
        assert_eq!(floor.morsel_tuples, 1_024);
    }
}
