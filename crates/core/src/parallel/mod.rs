//! Morsel-driven parallel execution with shared progressive
//! reoptimization.
//!
//! The paper's §4.4 loop is vector-at-a-time on one core; this module is
//! the intra-query-parallel generalization. Three pieces:
//!
//! * a [`popt_cpu::CpuPool`] of independent simulated cores — per-core
//!   cache hierarchies and free-running PMU banks, sharing nothing but
//!   the immutable column store;
//! * a [`MorselDispatcher`] that carves the scanned row range into
//!   cache-friendly morsels with a deterministic interleaved placement
//!   (morsel `k` → worker `k mod N`, HyPer-style morsel-wise work
//!   division) claimed lazily by real `std::thread` workers — placement
//!   independent of host scheduling, so simulated per-core cycle counts
//!   are reproducible on any machine;
//! * a progressive **coordinator** ([`run_parallel_target`]) that
//!   generalizes the serial `run_progressive*` runners to N workers:
//!   per-worker counter samples are fused into one pool-wide estimate,
//!   accepted operator orders are epoch-published (workers re-chain
//!   their pre-compiled primitives at the next morsel boundary), and
//!   trial / measurement-probe orders are leased to exactly one worker
//!   so a bad candidate never runs on more than one core.
//!
//! What makes a target parallelizable is [`ShardableTarget`]: on top of
//! the serial [`ProgressiveTarget`] contract (order proposal, geometry,
//! calibration — the *model* side, owned by the coordinator), it can
//! mint per-worker [`TargetShard`]s (the *execution* side: an
//! independently order-switchable executor over the same immutable
//! data). Both built-in targets — the multi-selection scan and the
//! mixed selection/join-filter pipeline — are shardable, via
//! [`run_parallel_scan`] and [`run_parallel_pipeline`].
//!
//! Results are bit-identical to the single-core executor for any worker
//! count and morsel size: qualifying counts and aggregate sums are
//! integer accumulations over disjoint row ranges, so neither the
//! partitioning nor the completion order can change them.
//!
//! ```
//! use popt_core::parallel::{run_parallel_scan, MorselConfig};
//! use popt_core::plan::SelectionPlan;
//! use popt_core::predicate::{CompareOp, Predicate};
//! use popt_cpu::{CpuConfig, CpuPool};
//! use popt_storage::{AddressSpace, ColumnData, Table};
//!
//! let mut space = AddressSpace::new();
//! let mut table = Table::new("t");
//! table.add_column(
//!     "a",
//!     ColumnData::I32((0..8192).map(|i| (i % 128) as i32).collect()),
//!     &mut space,
//! );
//! let plan =
//!     SelectionPlan::new(vec![Predicate::new("a", CompareOp::Lt, 50)], vec![]).unwrap();
//! let mut pool = CpuPool::new(CpuConfig::tiny_test(), 4);
//! let report = run_parallel_scan(
//!     &table,
//!     &plan,
//!     &[0],
//!     MorselConfig::new(1024),
//!     &mut pool,
//!     None, // baseline; Some(&ProgressiveConfig) enables reopt
//! )
//! .unwrap();
//! assert_eq!(report.qualified, 3200); // 64 cycles of 128 values, 50 qualify each
//! assert_eq!(report.workers, 4);
//! ```

pub mod coordinator;
pub mod morsel;

pub use coordinator::{
    run_parallel_pipeline, run_parallel_pipeline_observed, run_parallel_pipeline_traced,
    run_parallel_program, run_parallel_program_observed, run_parallel_program_traced,
    run_parallel_scan, run_parallel_scan_traced, run_parallel_target, run_parallel_target_observed,
    run_parallel_target_traced, ParallelReport,
};
pub use morsel::{MorselConfig, MorselDispatcher};

use popt_cpu::SimCpu;

use crate::error::EngineError;
use crate::exec::pipeline::Pipeline;
use crate::exec::program::CompiledProgram;
use crate::exec::scan::VectorStats;
use crate::progressive::{CompiledTarget, PipelineTarget, ProgressiveTarget, ScanTarget};

/// A per-worker executor: the execution half of a progressive target,
/// runnable over arbitrary row ranges and switchable to any published
/// order at a morsel boundary. Shards are `Send` (they move into worker
/// threads) and share only immutable column data.
pub trait TargetShard: Send {
    /// Re-chain to `order` (a permutation of plan/stage indices).
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError>;

    /// Execute rows `start..end` on the worker's private core.
    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats;
}

/// A progressive target whose execution can be sharded across workers:
/// the master instance keeps the shared estimator model (geometry,
/// order proposal, probe calibration) while [`ShardableTarget::shard`]
/// mints independent executors over the same immutable data.
pub trait ShardableTarget: ProgressiveTarget {
    /// The per-worker executor type.
    type Shard: TargetShard;

    /// Mint a worker executor starting in the target's current order.
    fn shard(&self) -> Result<Self::Shard, EngineError>;
}

impl TargetShard for ScanTarget<'_, '_> {
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        ProgressiveTarget::set_order(self, order)
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        ProgressiveTarget::run_range(self, cpu, start, end)
    }
}

impl<'p, 't> ShardableTarget for ScanTarget<'p, 't> {
    type Shard = ScanTarget<'p, 't>;

    fn shard(&self) -> Result<Self::Shard, EngineError> {
        ScanTarget::new(self.table, self.plan, self.compiled.peo())
    }
}

/// A worker-owned pipeline clone (stages borrow the shared immutable
/// column data, so the clone is cheap).
pub struct PipelineShard<'t> {
    pipeline: Pipeline<'t>,
}

impl TargetShard for PipelineShard<'_> {
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        self.pipeline.reorder(order)
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        self.pipeline.run_range(cpu, start, end)
    }
}

impl<'t> ShardableTarget for PipelineTarget<'_, 't> {
    type Shard = PipelineShard<'t>;

    fn shard(&self) -> Result<Self::Shard, EngineError> {
        Ok(PipelineShard {
            pipeline: self.pipeline.clone(),
        })
    }
}

/// A worker-owned compiled-program clone (the stage table borrows the
/// shared immutable column data, so the clone is cheap — re-chaining is
/// just the order permutation re-emit).
pub struct CompiledShard<'t> {
    program: CompiledProgram<'t>,
}

impl TargetShard for CompiledShard<'_> {
    fn set_order(&mut self, order: &[usize]) -> Result<(), EngineError> {
        self.program.reorder(order)
    }

    fn run_range(&mut self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        self.program.run_range(cpu, start, end)
    }
}

impl<'t> ShardableTarget for CompiledTarget<'_, 't> {
    type Shard = CompiledShard<'t>;

    fn shard(&self) -> Result<Self::Shard, EngineError> {
        Ok(CompiledShard {
            program: self.program().clone(),
        })
    }
}
