//! The invasive "enumerator-based" instrumentation baseline (Section 5.7).
//!
//! To learn per-predicate selectivities *without* performance counters, an
//! engine must compile explicit counter variables into the selection loop:
//! after every predicate evaluation, a counter in memory is incremented.
//! That costs a load-add-store sequence per evaluation — work proportional
//! to the data, not to the sampling frequency — and requires maintaining a
//! second, instrumented implementation of every operator. The paper
//! measures this overhead at up to ~2× total runtime for large predicate
//! counts (Figure 16), against "virtually no costs" for PMU sampling.
//!
//! This executor is the instrumented twin of
//! [`crate::exec::scan::CompiledSelection`]: the identical loop with the
//! per-evaluation counter update interleaved, in exchange for *exact*
//! per-position pass counts.

use popt_cpu::SimCpu;
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::scan::{CompiledSelection, VectorStats, LOOP_BRANCH_SITE};
use crate::plan::SelectionPlan;

/// Instructions charged per counter update (load, add, store, address
/// math).
pub const COUNTER_UPDATE_INSTRUCTIONS: u64 = 4;

/// Stream id reserved for the counter array (far past any table column).
pub const COUNTER_STREAM: usize = 4096;

/// Simulated address of the counter array (disjoint from table columns,
/// which allocate upward from a low base).
pub const COUNTER_BASE_ADDR: u64 = 0xC0_0000_0000;

/// A selection scan instrumented with explicit per-predicate counters.
pub struct EnumeratedSelection<'t> {
    inner: CompiledSelection<'t>,
}

/// Result of an instrumented range execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumeratedStats {
    /// The ordinary measurements (cycles include the instrumentation).
    pub stats: VectorStats,
    /// Exact tuples *passing* each predicate position — the information
    /// the instrumentation buys.
    pub pass_counts: Vec<u64>,
}

impl<'t> EnumeratedSelection<'t> {
    /// Compile the instrumented variant of `plan`.
    pub fn compile(
        table: &'t Table,
        plan: &SelectionPlan,
        peo: &[usize],
    ) -> Result<Self, EngineError> {
        Ok(Self {
            inner: CompiledSelection::compile(table, plan, peo)?,
        })
    }

    /// Execute rows `start..end` with counter instrumentation: every
    /// predicate evaluation additionally increments an in-memory counter.
    pub fn run_range(&self, cpu: &mut SimCpu, start: usize, end: usize) -> EnumeratedStats {
        let inner = &self.inner;
        let before = cpu.counters();
        let costs = inner.costs;
        let mut qualified = 0u64;
        let mut sum = 0i64;
        let mut pass_counts = vec![0u64; inner.preds.len()];
        for i in start..end {
            cpu.instr(costs.loop_overhead);
            let mut pass = true;
            for (k, p) in inner.preds.iter().enumerate() {
                cpu.load(p.stream, p.base + (i as u64) * 4, 4);
                cpu.instr(costs.per_eval + p.extra_instructions);
                let ok = p.op.eval(i64::from(p.values[i]), p.literal);
                // The instrumentation: update this predicate's counter.
                cpu.instr(COUNTER_UPDATE_INSTRUCTIONS);
                cpu.store(COUNTER_STREAM, COUNTER_BASE_ADDR + (k as u64) * 8, 8);
                cpu.branch(p.site, !ok);
                if ok {
                    pass_counts[k] += 1;
                } else {
                    pass = false;
                    break;
                }
            }
            if pass {
                qualified += 1;
                let mut product = 1i64;
                for a in &inner.agg {
                    cpu.load(a.stream, a.base + (i as u64) * 4, 4);
                    cpu.instr(costs.per_agg_column);
                    product *= i64::from(a.values[i]);
                }
                if !inner.agg.is_empty() {
                    sum += product;
                }
            }
            cpu.branch(LOOP_BRANCH_SITE, true);
        }
        let after = cpu.counters();
        EnumeratedStats {
            stats: VectorStats {
                tuples: (end - start) as u64,
                qualified,
                sum,
                counters: after.since(&before),
            },
            pass_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn table(n: usize) -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        for c in 0..4 {
            t.add_column(
                format!("c{c}"),
                ColumnData::I32((0..n).map(|i| ((i * (c + 3)) % 100) as i32).collect()),
                &mut space,
            );
        }
        t
    }

    fn plan(preds: usize) -> SelectionPlan {
        SelectionPlan::new(
            (0..preds)
                .map(|c| Predicate::new(format!("c{c}"), CompareOp::Lt, 60))
                .collect(),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn instrumentation_costs_cycles_but_preserves_results() {
        let t = table(4000);
        let p = plan(4);
        let peo: Vec<usize> = (0..4).collect();
        let plain = CompiledSelection::compile(&t, &p, &peo).unwrap();
        let inst = EnumeratedSelection::compile(&t, &p, &peo).unwrap();
        let mut cpu1 = SimCpu::new(CpuConfig::tiny_test());
        let mut cpu2 = SimCpu::new(CpuConfig::tiny_test());
        let s1 = plain.run_range(&mut cpu1, 0, 4000);
        let s2 = inst.run_range(&mut cpu2, 0, 4000);
        assert!(s2.stats.counters.cycles > s1.counters.cycles);
        assert_eq!(s1.qualified, s2.stats.qualified);
        assert_eq!(s1.sum, s2.stats.sum);
    }

    #[test]
    fn pass_counts_are_exact() {
        let t = table(4000);
        let p = plan(3);
        let inst = EnumeratedSelection::compile(&t, &p, &[0, 1, 2]).unwrap();
        let mut cpu = SimCpu::new(CpuConfig::tiny_test());
        let s = inst.run_range(&mut cpu, 0, 4000);
        // Last position's passes are the qualifying tuples.
        assert_eq!(*s.pass_counts.last().unwrap(), s.stats.qualified);
        // Pass counts are non-increasing along the pipeline.
        assert!(s.pass_counts.windows(2).all(|w| w[1] <= w[0]));
        // Sum of passes equals branches-not-taken (Section 4.1 identity).
        let total: u64 = s.pass_counts.iter().sum();
        assert_eq!(total, s.stats.counters.branches_not_taken);
    }

    #[test]
    fn overhead_is_substantial_versus_pmu_sampling() {
        let t = table(4000);
        let p = plan(4);
        let peo: Vec<usize> = (0..4).collect();
        let plain = CompiledSelection::compile(&t, &p, &peo).unwrap();
        let inst = EnumeratedSelection::compile(&t, &p, &peo).unwrap();

        let mut cpu1 = SimCpu::new(CpuConfig::tiny_test());
        let base = plain.run_range(&mut cpu1, 0, 4000).counters.cycles as f64;
        // PMU variant: the same plain run plus one counter sample.
        let mut cpu2 = SimCpu::new(CpuConfig::tiny_test());
        let _ = plain.run_range(&mut cpu2, 0, 4000);
        let _ = cpu2.sample();
        let pmu = cpu2.cycles() as f64;
        let mut cpu3 = SimCpu::new(CpuConfig::tiny_test());
        let enumerated = inst.run_range(&mut cpu3, 0, 4000).stats.counters.cycles as f64;

        let pmu_overhead = (pmu - base) / base;
        let enum_overhead = (enumerated - base) / base;
        assert!(pmu_overhead < 0.01, "pmu = {pmu_overhead}");
        assert!(enum_overhead > 0.05, "enum = {enum_overhead}");
        assert!(enum_overhead > pmu_overhead * 10.0);
    }
}
