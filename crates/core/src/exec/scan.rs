//! The vectorized multi-selection scan.
//!
//! Section 2.1 describes the machine code a JIT-compiling engine emits for
//! a conjunctive selection: per tuple, one load + compare + conditional
//! branch per predicate, short-circuiting on the first failure, then the
//! aggregate update and the loop back-edge. This module is that loop,
//! "executed" against the simulated CPU: every predicate owns a static
//! branch site (keyed by its *plan* index so predictor state follows the
//! predicate across reorders, as it would across JIT recompilations at the
//! same code addresses), every column is one access stream, and a
//! qualifying tuple falls through (branch **not** taken) while a failing
//! tuple jumps (branch **taken**) — producing exactly the counter
//! identities of Section 2.2:
//!
//! * `qualifying = 2·n − branches_taken`
//! * `branches_not_taken = Σ per-predicate survivors`

use popt_cpu::{BranchSite, SimCpu};
use popt_storage::Table;

use popt_cost::estimate::PlanGeometry;
use popt_cost::markov::ChainSpec;
use popt_cpu::pmu::CounterDelta;
use popt_solver::SampledCounters;

use crate::error::EngineError;
use crate::plan::{Peo, SelectionPlan};
use crate::predicate::CompareOp;

/// Instruction charges of the generated loop (see DESIGN.md; mirrored by
/// the analytic cycle model's defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCosts {
    /// Per loop iteration: counter increment + bounds test.
    pub loop_overhead: u64,
    /// Per predicate evaluation: load + compare + jump (+ address math).
    pub per_eval: u64,
    /// Per aggregate column read for a qualifying tuple.
    pub per_agg_column: u64,
}

impl Default for InstrCosts {
    fn default() -> Self {
        Self {
            loop_overhead: 2,
            per_eval: 4,
            per_agg_column: 3,
        }
    }
}

/// Branch site id of the loop back-edge (predicate sites use their plan
/// index).
pub const LOOP_BRANCH_SITE: BranchSite = BranchSite(u32::MAX);

pub(crate) struct CompiledPredicate<'t> {
    pub(crate) values: &'t [i32],
    pub(crate) base: u64,
    pub(crate) stream: usize,
    pub(crate) site: BranchSite,
    pub(crate) op: CompareOp,
    pub(crate) literal: i64,
    pub(crate) extra_instructions: u64,
}

#[derive(Clone)]
pub(crate) struct AggColumn<'t> {
    pub(crate) values: &'t [i32],
    pub(crate) base: u64,
    pub(crate) stream: usize,
}

/// A selection plan compiled for one PEO over one table.
pub struct CompiledSelection<'t> {
    pub(crate) preds: Vec<CompiledPredicate<'t>>,
    pub(crate) agg: Vec<AggColumn<'t>>,
    peo: Peo,
    rows: usize,
    pub(crate) costs: InstrCosts,
    /// When set, `run_range` uses the scalar per-event oracle path.
    scalar_oracle: bool,
}

/// Measurements of one executed vector (or any row range).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorStats {
    /// Tuples processed.
    pub tuples: u64,
    /// Tuples qualifying all predicates (engine ground truth).
    pub qualified: u64,
    /// Aggregate sum over qualifying tuples (product across aggregate
    /// columns, summed).
    pub sum: i64,
    /// Counter deltas for exactly this range.
    pub counters: CounterDelta,
}

impl VectorStats {
    /// The output cardinality as the *counters* see it: `2·n − bT`
    /// (Section 2.2). Equals [`VectorStats::qualified`] whenever the scan
    /// ran alone between the snapshots — the non-invasive path the
    /// estimator uses.
    pub fn derived_output(&self) -> u64 {
        (2 * self.tuples).saturating_sub(self.counters.branches_taken)
    }

    /// Package the measurements for the selectivity estimator.
    pub fn sampled_counters(&self) -> SampledCounters {
        SampledCounters {
            n_input: self.tuples,
            n_output: self.derived_output(),
            bnt: self.counters.branches_not_taken,
            mp_taken: self.counters.mp_taken,
            mp_not_taken: self.counters.mp_not_taken,
            l3_accesses: self.counters.l3_accesses,
        }
    }

    /// Cycles per tuple — the accept/revert metric of the trial step.
    pub fn cycles_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.counters.cycles as f64 / self.tuples as f64
        }
    }

    /// Merge another range's measurements into this one.
    pub fn accumulate(&mut self, other: &VectorStats) {
        self.tuples += other.tuples;
        self.qualified += other.qualified;
        self.sum += other.sum;
        self.counters.accumulate(&other.counters);
    }

    /// All-zero stats.
    pub fn zero() -> Self {
        Self {
            tuples: 0,
            qualified: 0,
            sum: 0,
            counters: CounterDelta::default(),
        }
    }
}

impl std::fmt::Debug for CompiledSelection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSelection")
            .field("peo", &self.peo)
            .field("predicates", &self.preds.len())
            .field("agg_columns", &self.agg.len())
            .field("rows", &self.rows)
            .finish()
    }
}

impl<'t> CompiledSelection<'t> {
    /// Compile `plan` against `table` with the given evaluation order.
    pub fn compile(
        table: &'t Table,
        plan: &SelectionPlan,
        peo: &[usize],
    ) -> Result<Self, EngineError> {
        Self::compile_with_costs(table, plan, peo, InstrCosts::default())
    }

    /// [`CompiledSelection::compile`] with explicit instruction charges.
    pub fn compile_with_costs(
        table: &'t Table,
        plan: &SelectionPlan,
        peo: &[usize],
        costs: InstrCosts,
    ) -> Result<Self, EngineError> {
        plan.validate_peo(peo)?;
        let lookup = |name: &str| -> Result<(usize, &'t popt_storage::Column), EngineError> {
            let idx = table
                .column_index(name)
                .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
            Ok((idx, table.column_at(idx)))
        };
        let mut preds = Vec::with_capacity(peo.len());
        for &plan_idx in peo {
            let p = &plan.predicates[plan_idx];
            let (col_idx, col) = lookup(&p.column)?;
            let values = col
                .data()
                .as_i32()
                .ok_or_else(|| EngineError::UnsupportedColumnType(p.column.clone()))?;
            preds.push(CompiledPredicate {
                values,
                base: col.base_addr(),
                stream: col_idx,
                site: BranchSite(plan_idx as u32),
                op: p.op,
                literal: p.literal,
                extra_instructions: p.extra_instructions,
            });
        }
        let mut agg = Vec::with_capacity(plan.aggregate_columns.len());
        for name in &plan.aggregate_columns {
            let (col_idx, col) = lookup(name)?;
            let values = col
                .data()
                .as_i32()
                .ok_or_else(|| EngineError::UnsupportedColumnType(name.clone()))?;
            agg.push(AggColumn {
                values,
                base: col.base_addr(),
                stream: col_idx,
            });
        }
        Ok(Self {
            preds,
            agg,
            peo: peo.to_vec(),
            rows: table.rows(),
            costs,
            scalar_oracle: false,
        })
    }

    /// The evaluation order this compilation uses (plan indices).
    pub fn peo(&self) -> &[usize] {
        &self.peo
    }

    /// Rows available in the underlying table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Counter-model geometry for this compilation (used by the
    /// estimator): per-predicate column widths and identities in
    /// evaluation order. Aggregate columns already read by a predicate are
    /// cache-resident and excluded from the geometry's fresh-column list.
    pub fn plan_geometry(&self, n_input: u64, chain: ChainSpec, line_bytes: u32) -> PlanGeometry {
        let column_ids: Vec<usize> = self.preds.iter().map(|p| p.stream).collect();
        let mut seen_agg: Vec<usize> = Vec::with_capacity(self.agg.len());
        let agg_bytes: Vec<u32> = self
            .agg
            .iter()
            .filter(|a| {
                let fresh = !column_ids.contains(&a.stream) && !seen_agg.contains(&a.stream);
                seen_agg.push(a.stream);
                fresh
            })
            .map(|_| 4)
            .collect();
        PlanGeometry {
            n_input,
            value_bytes: vec![4; self.preds.len()],
            column_ids,
            agg_bytes,
            line_bytes,
            chain,
            // A multi-selection scan has no dimension probes.
            probes: Vec::new(),
        }
    }

    /// Force every subsequent [`CompiledSelection::run_range`] call
    /// through the scalar per-event oracle instead of the batched fast
    /// path. Test/verification hook; the paths are bit-identical.
    pub fn set_scalar_oracle(&mut self, on: bool) {
        self.scalar_oracle = on;
    }

    /// Execute rows `start..end` against `cpu`, returning measurements for
    /// exactly that range. Dispatches to the batched fast path
    /// (register-held stream states, bulk PMU flush per call) unless the
    /// scalar oracle was requested or the shape exceeds the fixed scratch.
    pub fn run_range(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        const MAX_PREDS: usize = 12;
        const MAX_SLOTS: usize = 24;
        if self.scalar_oracle || self.preds.len() > MAX_PREDS || self.agg.len() > MAX_PREDS {
            return self.run_range_scalar(cpu, start, end);
        }
        fn slot_for(
            slot_streams: &mut [usize],
            n_slots: &mut usize,
            stream: usize,
        ) -> Option<usize> {
            for (k, &s) in slot_streams.iter().enumerate().take(*n_slots) {
                if s == stream {
                    return Some(k);
                }
            }
            if *n_slots == slot_streams.len() {
                return None;
            }
            slot_streams[*n_slots] = stream;
            *n_slots += 1;
            Some(*n_slots - 1)
        }
        let mut slot_streams = [usize::MAX; MAX_SLOTS];
        let mut n_slots = 0usize;
        let mut pred_slot = [0usize; MAX_PREDS];
        let mut agg_slot = [0usize; MAX_PREDS];
        for (k, p) in self.preds.iter().enumerate() {
            match slot_for(&mut slot_streams, &mut n_slots, p.stream) {
                Some(t) => pred_slot[k] = t,
                None => return self.run_range_scalar(cpu, start, end),
            }
        }
        for (k, a) in self.agg.iter().enumerate() {
            match slot_for(&mut slot_streams, &mut n_slots, a.stream) {
                Some(t) => agg_slot[k] = t,
                None => return self.run_range_scalar(cpu, start, end),
            }
        }
        let before = cpu.counters();
        let mut qualified = 0u64;
        let mut sum = 0i64;
        let costs = self.costs;
        {
            let mut batch = cpu.batch();
            let mut slots = [0u64; MAX_SLOTS];
            for t in 0..n_slots {
                slots[t] = batch.stream_state(slot_streams[t]);
            }
            // Hot counters in plain locals, flushed in bulk after the row
            // loop (see the pipeline executor for the same structure).
            let mut instrs = 0u64;
            let mut hits = 0u64;
            let mut branches = 0u64;
            let mut taken_n = 0u64;
            let mut mp_taken = 0u64;
            let mut mp_not_taken = 0u64;
            let mut hist = batch.history();
            if self.preds.len() == 1 && self.agg.is_empty() {
                // Single-predicate count scan: every simulated load in the
                // morsel belongs to the one predicate stream, so the
                // sequential touches are accounted in bulk (closed form
                // for clean spans) and the row loop carries only the
                // predicate evaluation and the two branch events. Loads
                // and branches drive disjoint simulated state machines,
                // so hoisting the loads preserves bit-identity; the
                // branch sequence itself stays in exact row order.
                let p = &self.preds[0];
                let n = (end - start) as u64;
                let mut llpo = slots[pred_slot[0]];
                hits += batch.load_elements_seq(&mut llpo, p.base + (start as u64) * 4, 4, n);
                slots[pred_slot[0]] = llpo;
                for i in start..end {
                    let ok = p.op.eval(i64::from(p.values[i]), p.literal);
                    let tk = u64::from(!ok);
                    let w = batch.branch_hist(&mut hist, p.site, !ok);
                    taken_n += tk;
                    mp_taken += w & tk;
                    mp_not_taken += w & (1 - tk);
                    qualified += 1 - tk;
                    let wl = batch.branch_hist(&mut hist, LOOP_BRANCH_SITE, true);
                    mp_taken += wl;
                }
                instrs += (costs.loop_overhead + costs.per_eval + p.extra_instructions) * n;
                branches += 2 * n;
                taken_n += n;
            } else {
                for i in start..end {
                    instrs += costs.loop_overhead;
                    let mut pass = true;
                    for (k, p) in self.preds.iter().enumerate() {
                        let t = pred_slot[k];
                        let mut llpo = slots[t];
                        hits += batch.load_quiet(&mut llpo, p.base + (i as u64) * 4, 4);
                        slots[t] = llpo;
                        instrs += costs.per_eval + p.extra_instructions;
                        let ok = p.op.eval(i64::from(p.values[i]), p.literal);
                        let tk = u64::from(!ok);
                        let w = batch.branch_hist(&mut hist, p.site, !ok);
                        branches += 1;
                        taken_n += tk;
                        mp_taken += w & tk;
                        mp_not_taken += w & (1 - tk);
                        if !ok {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        qualified += 1;
                        let mut product = 1i64;
                        for (k, a) in self.agg.iter().enumerate() {
                            let t = agg_slot[k];
                            let mut llpo = slots[t];
                            hits += batch.load_quiet(&mut llpo, a.base + (i as u64) * 4, 4);
                            slots[t] = llpo;
                            instrs += costs.per_agg_column;
                            product *= i64::from(a.values[i]);
                        }
                        if !self.agg.is_empty() {
                            sum += product;
                        }
                    }
                    let w = batch.branch_hist(&mut hist, LOOP_BRANCH_SITE, true);
                    branches += 1;
                    taken_n += 1;
                    mp_taken += w;
                }
            }
            batch.set_history(hist);
            batch.instr(instrs);
            batch.add_element_hits(hits);
            batch.add_branch_block(branches, taken_n, mp_taken, mp_not_taken);
            for t in 0..n_slots {
                batch.set_stream_state(slot_streams[t], slots[t]);
            }
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum,
            counters: after.since(&before),
        }
    }

    /// The scalar per-event oracle: one `SimCpu` call per simulated
    /// event — the reference semantics the batched
    /// [`CompiledSelection::run_range`] is proptest-pinned against.
    pub fn run_range_scalar(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let before = cpu.counters();
        let mut qualified = 0u64;
        let mut sum = 0i64;
        let costs = self.costs;
        for i in start..end {
            cpu.instr(costs.loop_overhead);
            let mut pass = true;
            for p in &self.preds {
                cpu.load(p.stream, p.base + (i as u64) * 4, 4);
                cpu.instr(costs.per_eval + p.extra_instructions);
                let ok = p.op.eval(i64::from(p.values[i]), p.literal);
                // Qualifying tuple: fall through (not taken). Failing
                // tuple: jump past the remaining predicate code (taken).
                cpu.branch(p.site, !ok);
                if !ok {
                    pass = false;
                    break;
                }
            }
            if pass {
                qualified += 1;
                let mut product = 1i64;
                for a in &self.agg {
                    cpu.load(a.stream, a.base + (i as u64) * 4, 4);
                    cpu.instr(costs.per_agg_column);
                    product *= i64::from(a.values[i]);
                }
                if !self.agg.is_empty() {
                    sum += product;
                }
            }
            // Loop back-edge: taken every iteration.
            cpu.branch(LOOP_BRANCH_SITE, true);
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum,
            counters: after.since(&before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn test_table(n: usize) -> Table {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        // a: 0..n cyclic mod 100; b: constant blocks; agg: all ones.
        t.add_column(
            "a",
            ColumnData::I32((0..n).map(|i| (i % 100) as i32).collect()),
            &mut space,
        );
        t.add_column(
            "b",
            ColumnData::I32((0..n).map(|i| (i / 100 % 10) as i32).collect()),
            &mut space,
        );
        t.add_column("agg", ColumnData::I32(vec![2; n]), &mut space);
        t
    }

    fn plan() -> SelectionPlan {
        SelectionPlan::new(
            vec![
                Predicate::new("a", CompareOp::Lt, 50),
                Predicate::new("b", CompareOp::Lt, 5),
            ],
            vec!["agg".into()],
        )
        .unwrap()
    }

    fn cpu() -> SimCpu {
        SimCpu::new(CpuConfig::tiny_test())
    }

    #[test]
    fn qualifying_count_is_exact() {
        let t = test_table(1000);
        let c = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 1000);
        // a < 50: 50%, b < 5: 50%, independent-ish by construction.
        assert_eq!(stats.qualified, 250);
        assert_eq!(stats.sum, 500); // 2 per qualifying tuple
    }

    #[test]
    fn result_is_peo_invariant() {
        let t = test_table(2000);
        let mut results = Vec::new();
        for peo in [[0usize, 1], [1, 0]] {
            let c = CompiledSelection::compile(&t, &plan(), &peo).unwrap();
            let mut cpu = cpu();
            let stats = c.run_range(&mut cpu, 0, 2000);
            results.push((stats.qualified, stats.sum));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn derived_output_matches_ground_truth() {
        let t = test_table(1000);
        let c = CompiledSelection::compile(&t, &plan(), &[1, 0]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 1000);
        assert_eq!(stats.derived_output(), stats.qualified);
    }

    #[test]
    fn bnt_equals_survivor_sum() {
        let t = test_table(1000);
        let c = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 1000);
        // Survivors: after a<50 -> 500; after b<5 -> 250. BNT = 750.
        assert_eq!(stats.counters.branches_not_taken, 750);
    }

    #[test]
    fn branches_taken_follow_failures_plus_loop() {
        let t = test_table(1000);
        let c = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 1000);
        // Failures: 500 at a, 250 at b; loop: 1000.
        assert_eq!(stats.counters.branches_taken, 500 + 250 + 1000);
    }

    #[test]
    fn short_circuit_skips_later_columns() {
        let t = test_table(1000);
        // Evaluate `a` first: `b` is only accessed for survivors of `a`.
        let c01 = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let c10 = CompiledSelection::compile(&t, &plan(), &[1, 0]).unwrap();
        let mut cpu_a = cpu();
        let mut cpu_b = cpu();
        let s01 = c01.run_range(&mut cpu_a, 0, 1000);
        let s10 = c10.run_range(&mut cpu_b, 0, 1000);
        // Both orders have 50% first-predicate selectivity here, so
        // element access counts match; but survivors differ per column.
        // Check overall L1 accesses are plausible and BNT identical
        // (same survivor sums by symmetry of this data: 500 + 250).
        assert_eq!(
            s01.counters.branches_not_taken,
            s10.counters.branches_not_taken
        );
        // Loads: order a-first reads a 1000x, b 500x, agg 250x.
        let loads01 = s01.counters.l1_accesses + s01.counters.l1_element_hits;
        assert_eq!(loads01, 1000 + 500 + 250);
    }

    #[test]
    fn sampled_counters_roundtrip() {
        let t = test_table(500);
        let c = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 500);
        let s = stats.sampled_counters();
        assert_eq!(s.n_input, 500);
        assert_eq!(s.n_output, stats.qualified);
        assert_eq!(s.bnt, stats.counters.branches_not_taken);
    }

    #[test]
    fn compile_rejects_unknown_column() {
        let t = test_table(10);
        let bad =
            SelectionPlan::new(vec![Predicate::new("nope", CompareOp::Lt, 1)], vec![]).unwrap();
        assert_eq!(
            CompiledSelection::compile(&t, &bad, &[0]).unwrap_err(),
            EngineError::UnknownColumn("nope".into())
        );
    }

    #[test]
    fn compile_rejects_bad_peo() {
        let t = test_table(10);
        assert!(matches!(
            CompiledSelection::compile(&t, &plan(), &[0, 0]).unwrap_err(),
            EngineError::InvalidPeo { .. }
        ));
    }

    #[test]
    fn compile_rejects_i64_column() {
        let mut space = AddressSpace::new();
        let mut t = Table::new("t");
        t.add_column("w", ColumnData::I64(vec![1, 2, 3]), &mut space);
        let p = SelectionPlan::new(vec![Predicate::new("w", CompareOp::Lt, 2)], vec![]).unwrap();
        assert_eq!(
            CompiledSelection::compile(&t, &p, &[0]).unwrap_err(),
            EngineError::UnsupportedColumnType("w".into())
        );
    }

    #[test]
    fn empty_range_is_empty_stats() {
        let t = test_table(100);
        let c = CompiledSelection::compile(&t, &plan(), &[0, 1]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 50, 50);
        assert_eq!(stats.tuples, 0);
        assert_eq!(stats.qualified, 0);
        assert_eq!(stats.counters.branches, 0);
    }

    #[test]
    fn expensive_predicate_costs_more() {
        let t = test_table(1000);
        let cheap = plan();
        let mut expensive = plan();
        expensive.predicates[0].extra_instructions = 100;
        let cc = CompiledSelection::compile(&t, &cheap, &[0, 1]).unwrap();
        let ce = CompiledSelection::compile(&t, &expensive, &[0, 1]).unwrap();
        let mut cpu1 = cpu();
        let mut cpu2 = cpu();
        let s1 = cc.run_range(&mut cpu1, 0, 1000);
        let s2 = ce.run_range(&mut cpu2, 0, 1000);
        assert!(s2.counters.cycles > s1.counters.cycles);
        assert_eq!(s1.qualified, s2.qualified);
    }

    #[test]
    fn count_only_plan_has_zero_sum() {
        let t = test_table(100);
        let p = SelectionPlan::new(vec![Predicate::new("a", CompareOp::Lt, 50)], vec![]).unwrap();
        let c = CompiledSelection::compile(&t, &p, &[0]).unwrap();
        let mut cpu = cpu();
        let stats = c.run_range(&mut cpu, 0, 100);
        assert_eq!(stats.sum, 0);
        assert_eq!(stats.qualified, 50);
    }
}
