//! Generalized filter pipelines: selections mixed with foreign-key join
//! filters.
//!
//! Sections 5.5–5.6 extend progressive optimization beyond predicates to
//! operator ordering: an expensive selection versus a foreign-key join
//! (Figure 14), and two foreign-key joins against differently clustered
//! dimension tables (Figure 15). Both are *filters* over the fact table's
//! tuple stream — the join filter probes the dimension tuple addressed by
//! the foreign key and tests a predicate on its payload — so the same
//! short-circuit loop shape applies and operators can be reordered exactly
//! like predicates.
//!
//! The cache behaviour difference is what matters: a probe into a
//! co-clustered dimension (lineitem→orders) produces a near-sequential
//! access stream, a probe into a randomly keyed dimension (lineitem→part)
//! produces the random pattern Equation 1 prices.
//!
//! **Construction.** Queries are built through the frontend —
//! [`crate::plan::PlanBuilder`] → optimizer passes →
//! [`crate::exec::program::CompiledProgram`] — which lowers to an
//! executor with the exact same per-tuple event sequence (pinned by
//! test) while adding predicate normalization, static passes,
//! structural cache signatures, and cheap permutation re-emission.
//! Hand-chaining [`FilterOp`]s into a [`Pipeline`] is test support:
//! the constructors stay callable (hidden from docs) so targeted
//! executor tests can pin the event stream of a single stage without
//! routing through the planner.

use popt_cost::estimate::{PlanGeometry, ProbeGeometry};
use popt_cost::join_model::JoinGeometry;
use popt_cost::markov::ChainSpec;
use popt_cpu::{BranchSite, CpuConfig, NumaPlacement, SimCpu};
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::scan::{AggColumn, InstrCosts, VectorStats, LOOP_BRANCH_SITE};
use crate::predicate::CompareOp;

/// One pipeline stage: pass/fail per tuple.
///
/// Stages borrow column data immutably, so cloning a stage (or a whole
/// [`Pipeline`]) is cheap — the morsel-driven parallel executor clones
/// one pipeline per worker and runs them over disjoint row ranges.
#[derive(Clone)]
pub enum FilterOp<'t> {
    /// A predicate on a fact-table column.
    Select {
        /// Column values.
        values: &'t [i32],
        /// Simulated base address of the column.
        base: u64,
        /// Access stream id.
        stream: usize,
        /// Branch site of the compare.
        site: BranchSite,
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
        /// Extra instructions per evaluation (expensive predicates).
        extra_instructions: u64,
    },
    /// A foreign-key join filter: probe `dim_values[fk[i]]` and test it.
    JoinFilter {
        /// Foreign-key column on the fact table.
        fk: &'t [i32],
        /// Base address of the FK column.
        fk_base: u64,
        /// Stream id of the FK column.
        fk_stream: usize,
        /// Payload column on the dimension table.
        dim_values: &'t [i32],
        /// Base address of the dimension payload column.
        dim_base: u64,
        /// Stream id of the dimension payload accesses.
        dim_stream: usize,
        /// Branch site of the post-probe test.
        site: BranchSite,
        /// Comparison operator applied to the probed payload.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
        /// Instructions per probe (index arithmetic / hashing).
        probe_instructions: u64,
    },
}

impl std::fmt::Debug for FilterOp<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterOp::Select { op, literal, .. } => {
                write!(f, "Select({op:?} {literal})")
            }
            FilterOp::JoinFilter {
                dim_values,
                op,
                literal,
                ..
            } => {
                write!(f, "JoinFilter({} rows, {op:?} {literal})", dim_values.len())
            }
        }
    }
}

impl<'t> FilterOp<'t> {
    /// Build a [`FilterOp::Select`] from a table column.
    ///
    /// Test support: production code builds stages through the query
    /// frontend (see the module docs); this stays callable for targeted
    /// executor tests.
    #[doc(hidden)]
    pub fn select(
        table: &'t Table,
        column: &str,
        op: CompareOp,
        literal: i64,
        site: u32,
        extra_instructions: u64,
    ) -> Result<Self, EngineError> {
        let idx = table
            .column_index(column)
            .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
        let col = table.column_at(idx);
        let values = col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(column.to_string()))?;
        Ok(FilterOp::Select {
            values,
            base: col.base_addr(),
            stream: idx,
            site: BranchSite(site),
            op,
            literal,
            extra_instructions,
        })
    }

    /// Build a [`FilterOp::JoinFilter`].
    ///
    /// `fk_column` lives on the fact table; `dim_column` on `dim`. Stream
    /// ids must be distinct across the whole pipeline — callers typically
    /// offset dimension streams past the fact table's column count.
    ///
    /// Test support: production code builds stages through the query
    /// frontend (see the module docs); this stays callable for targeted
    /// executor tests.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn join_filter(
        fact: &'t Table,
        fk_column: &str,
        dim: &'t Table,
        dim_column: &str,
        op: CompareOp,
        literal: i64,
        site: u32,
        dim_stream: usize,
    ) -> Result<Self, EngineError> {
        let fk_idx = fact
            .column_index(fk_column)
            .ok_or_else(|| EngineError::UnknownColumn(fk_column.to_string()))?;
        let fk_col = fact.column_at(fk_idx);
        let fk = fk_col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(fk_column.to_string()))?;
        let dim_col = dim
            .column(dim_column)
            .ok_or_else(|| EngineError::UnknownColumn(dim_column.to_string()))?;
        let dim_values = dim_col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(dim_column.to_string()))?;
        // Validate the whole key range up front: a dangling or negative
        // key would otherwise surface as an unhelpful slice-index panic
        // deep inside the hot loop (negative keys wrap via `as usize`).
        if let Some(&bad) = fk
            .iter()
            .find(|&&k| k < 0 || k as usize >= dim_values.len())
        {
            return Err(EngineError::ForeignKeyOutOfRange {
                column: fk_column.to_string(),
                key: i64::from(bad),
                dim_rows: dim_values.len(),
            });
        }
        Ok(FilterOp::JoinFilter {
            fk,
            fk_base: fk_col.base_addr(),
            fk_stream: fk_idx,
            dim_values,
            dim_base: dim_col.base_addr(),
            dim_stream,
            site: BranchSite(site),
            op,
            literal,
            probe_instructions: 6,
        })
    }

    /// Evaluate the stage for row `i`; returns pass/fail and drives the
    /// CPU events.
    #[inline]
    fn eval(&self, cpu: &mut SimCpu, i: usize, costs: &InstrCosts) -> bool {
        match self {
            FilterOp::Select {
                values,
                base,
                stream,
                site,
                op,
                literal,
                extra_instructions,
            } => {
                cpu.load(*stream, base + (i as u64) * 4, 4);
                cpu.instr(costs.per_eval + extra_instructions);
                let ok = op.eval(i64::from(values[i]), *literal);
                cpu.branch(*site, !ok);
                ok
            }
            FilterOp::JoinFilter {
                fk,
                fk_base,
                fk_stream,
                dim_values,
                dim_base,
                dim_stream,
                site,
                op,
                literal,
                probe_instructions,
            } => {
                cpu.load(*fk_stream, fk_base + (i as u64) * 4, 4);
                let key = fk[i] as usize;
                // The full key range was validated at construction.
                debug_assert!(key < dim_values.len(), "dangling foreign key");
                cpu.load(*dim_stream, dim_base + (key as u64) * 4, 4);
                cpu.instr(costs.per_eval + probe_instructions);
                let ok = op.eval(i64::from(dim_values[key]), *literal);
                cpu.branch(*site, !ok);
                ok
            }
        }
    }

    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FilterOp::Select { .. } => "select",
            FilterOp::JoinFilter { .. } => "join",
        }
    }

    /// Whether this stage is a foreign-key join filter.
    pub fn is_join(&self) -> bool {
        matches!(self, FilterOp::JoinFilter { .. })
    }

    /// Comparison operator of the stage's test.
    pub fn compare_op(&self) -> CompareOp {
        match self {
            FilterOp::Select { op, .. } | FilterOp::JoinFilter { op, .. } => *op,
        }
    }

    /// Literal operand of the stage's test.
    pub fn literal(&self) -> i64 {
        match self {
            FilterOp::Select { literal, .. } | FilterOp::JoinFilter { literal, .. } => *literal,
        }
    }

    /// Simulated base address of the fact-table column the stage reads
    /// per tuple (predicate column for selects, FK column for joins) —
    /// the column's identity in a workload signature.
    pub fn column_base(&self) -> u64 {
        match self {
            FilterOp::Select { base, .. } => *base,
            FilterOp::JoinFilter { fk_base, .. } => *fk_base,
        }
    }

    /// Base address of the probed dimension payload, for join filters.
    pub fn dim_base(&self) -> Option<u64> {
        match self {
            FilterOp::Select { .. } => None,
            FilterOp::JoinFilter { dim_base, .. } => Some(*dim_base),
        }
    }

    /// Instructions charged per evaluation (on top of the base per-eval
    /// charge) — UDF work for selects, probe arithmetic for joins.
    pub fn extra_instructions(&self) -> u64 {
        match self {
            FilterOp::Select {
                extra_instructions, ..
            } => *extra_instructions,
            FilterOp::JoinFilter {
                probe_instructions, ..
            } => *probe_instructions,
        }
    }

    /// Stream id of the fact-table column this stage reads per tuple (the
    /// predicate column for selects, the FK column for joins).
    pub fn column_stream(&self) -> usize {
        match self {
            FilterOp::Select { stream, .. } => *stream,
            FilterOp::JoinFilter { fk_stream, .. } => *fk_stream,
        }
    }

    /// Rows of the probed dimension, for join filters.
    pub fn dim_rows(&self) -> Option<usize> {
        match self {
            FilterOp::Select { .. } => None,
            FilterOp::JoinFilter { dim_values, .. } => Some(dim_values.len()),
        }
    }
}

/// A pipeline of filter stages with count/sum semantics identical to the
/// scan executor.
///
/// Stages live in *plan order* (construction order, the analogue of a
/// [`crate::plan::SelectionPlan`]'s predicate list); the evaluation order
/// is a separate permutation of plan indices, adjusted by [`reorder`] and
/// — through the progressive optimizer — at runtime.
///
/// [`reorder`]: Pipeline::reorder
#[derive(Clone)]
pub struct Pipeline<'t> {
    /// Stages in plan (construction) order.
    ops: Vec<FilterOp<'t>>,
    /// Evaluation order: plan indices.
    order: Vec<usize>,
    /// Aggregate columns read for qualifying tuples.
    agg: Vec<AggColumn<'t>>,
    rows: usize,
    costs: InstrCosts,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field(
                "ops",
                &self
                    .order
                    .iter()
                    .map(|&j| self.ops[j].label())
                    .collect::<Vec<_>>(),
            )
            .field("order", &self.order)
            .field("agg_columns", &self.agg.len())
            .field("rows", &self.rows)
            .finish()
    }
}

impl<'t> Pipeline<'t> {
    /// Build a pipeline over `rows` fact tuples; the initial evaluation
    /// order is the plan order.
    ///
    /// Test support: production code builds pipelines through the query
    /// frontend (see the module docs); this stays callable for targeted
    /// executor tests.
    #[doc(hidden)]
    pub fn new(ops: Vec<FilterOp<'t>>, rows: usize) -> Result<Self, EngineError> {
        if ops.is_empty() {
            return Err(EngineError::EmptyPlan);
        }
        let order = (0..ops.len()).collect();
        Ok(Self {
            ops,
            order,
            agg: Vec::new(),
            rows,
            costs: InstrCosts::default(),
        })
    }

    /// Add an aggregate column (on the fact table) summed for qualifying
    /// tuples — the same product-then-sum semantics as the scan executor.
    pub fn with_aggregate(mut self, table: &'t Table, column: &str) -> Result<Self, EngineError> {
        let idx = table
            .column_index(column)
            .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
        let col = table.column_at(idx);
        let values = col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(column.to_string()))?;
        self.agg.push(AggColumn {
            values,
            base: col.base_addr(),
            stream: idx,
        });
        Ok(self)
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the pipeline has no stages (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rows in the underlying fact table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The current evaluation order (plan indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The stage at plan index `j`.
    pub fn op(&self, j: usize) -> &FilterOp<'t> {
        &self.ops[j]
    }

    /// Set the evaluation order (e.g. join-first vs. selection-first).
    /// `order` is a permutation of *plan* indices, so repeated reorders
    /// are absolute, not relative to the current arrangement.
    pub fn reorder(&mut self, order: &[usize]) -> Result<(), EngineError> {
        if !crate::plan::is_valid_peo(order, self.ops.len()) {
            return Err(EngineError::InvalidPeo {
                expected: self.ops.len(),
                got: order.to_vec(),
            });
        }
        self.order.copy_from_slice(order);
        Ok(())
    }

    /// Execute rows `start..end`; same measurement semantics as the scan.
    pub fn run_range(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let before = cpu.counters();
        let mut qualified = 0u64;
        let mut sum = 0i64;
        for i in start..end {
            cpu.instr(self.costs.loop_overhead);
            let mut pass = true;
            for &j in &self.order {
                if !self.ops[j].eval(cpu, i, &self.costs) {
                    pass = false;
                    break;
                }
            }
            if pass {
                qualified += 1;
                let mut product = 1i64;
                for a in &self.agg {
                    cpu.load(a.stream, a.base + (i as u64) * 4, 4);
                    cpu.instr(self.costs.per_agg_column);
                    product *= i64::from(a.values[i]);
                }
                if !self.agg.is_empty() {
                    sum += product;
                }
            }
            cpu.branch(LOOP_BRANCH_SITE, true);
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum,
            counters: after.since(&before),
        }
    }

    /// Counter-model geometry for the current evaluation order, the
    /// pipeline analogue of `CompiledSelection::plan_geometry`.
    ///
    /// `clustering` holds one entry per *plan* stage: the measured
    /// clustering ratio of that stage's dimension probe (ignored for
    /// selects; `1.0` = assume uniform random). Line size, predictor
    /// shape and the private L2 capacity (which gates whether probes
    /// reach L3 at all) come from the CPU the pipeline runs on;
    /// `llc_bytes` is the **effective** last-level capacity the executing
    /// core sees — the full configured LLC on a private socket, the
    /// contention-shrunken share under the shared-socket partition — so
    /// the Equation-1 probe predictions price contended miss rates.
    pub fn plan_geometry(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        clustering: &[f64],
    ) -> PlanGeometry {
        assert_eq!(clustering.len(), self.ops.len(), "one entry per stage");
        let line_bytes = cpu.line_bytes() as u32;
        let llc_lines = (llc_bytes / u64::from(line_bytes)).max(1);
        let upper_cache_bytes = cpu.levels.get(1).map_or(0.0, |l| l.capacity_bytes as f64);
        let chain = ChainSpec {
            states: cpu.predictor.states,
            not_taken_states: cpu.predictor.not_taken_states,
        };
        let column_ids: Vec<usize> = self
            .order
            .iter()
            .map(|&j| self.ops[j].column_stream())
            .collect();
        let probes: Vec<Option<ProbeGeometry>> = self
            .order
            .iter()
            .map(|&j| {
                self.ops[j].dim_rows().map(|rows| ProbeGeometry {
                    relation: JoinGeometry {
                        relation_tuples: rows as u64,
                        tuple_bytes: 4,
                        line_bytes,
                        cache_lines: llc_lines,
                    },
                    upper_cache_bytes,
                    clustering: clustering[j].clamp(0.0, 1.0),
                    remote_fraction: 0.0,
                })
            })
            .collect();
        let mut seen_agg: Vec<usize> = Vec::with_capacity(self.agg.len());
        let agg_bytes: Vec<u32> = self
            .agg
            .iter()
            .filter(|a| {
                let fresh = !column_ids.contains(&a.stream) && !seen_agg.contains(&a.stream);
                seen_agg.push(a.stream);
                fresh
            })
            .map(|_| 4)
            .collect();
        PlanGeometry {
            n_input,
            value_bytes: vec![4; self.ops.len()],
            column_ids,
            agg_bytes,
            line_bytes,
            chain,
            probes,
        }
    }

    /// [`Pipeline::plan_geometry`] with NUMA-aware probe pricing: each
    /// join stage's probe gains the fraction of its dimension homed on a
    /// socket other than `socket` under `placement`, so the per-socket
    /// cost model prices the hop into a remote partition. Both inputs
    /// are static topology — the geometry stays deterministic.
    pub fn plan_geometry_numa(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        clustering: &[f64],
        placement: &NumaPlacement,
        socket: usize,
    ) -> PlanGeometry {
        let mut geom = self.plan_geometry(n_input, cpu, llc_bytes, clustering);
        let line_bytes = cpu.line_bytes();
        for (&j, probe) in self.order.iter().zip(geom.probes.iter_mut()) {
            if let (Some(p), Some(base), Some(rows)) = (
                probe.as_mut(),
                self.ops[j].dim_base(),
                self.ops[j].dim_rows(),
            ) {
                p.remote_fraction =
                    placement.remote_fraction(base, rows as u64 * 4, socket, line_bytes);
            }
        }
        geom
    }

    /// Bytes this pipeline wants resident in the last-level cache while
    /// it runs — the hot-set footprint it declares to a shared-socket
    /// pool's capacity partition: every probed dimension in full (probes
    /// re-reference it across morsels) plus a fixed streaming footprint
    /// per scanned column (streamed lines are touched once; only a small
    /// in-flight window ever competes for capacity).
    pub fn hot_set_bytes(&self) -> u64 {
        let dims: u64 = self
            .ops
            .iter()
            .filter_map(FilterOp::dim_rows)
            .map(|rows| rows as u64 * 4)
            .sum();
        let streams = (self.ops.len() + self.agg.len()) as u64
            * crate::progressive::STREAM_HOT_BYTES_PER_COLUMN;
        dims + streams
    }

    /// Instructions charged per evaluation of each stage, in the current
    /// evaluation order — an input to the cost-per-input-tuple ranking.
    pub fn stage_instructions(&self) -> Vec<f64> {
        self.order
            .iter()
            .map(|&j| (self.costs.per_eval + self.ops[j].extra_instructions()) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    /// Fact with a sequential FK (co-clustered) and a strided pseudo-random
    /// FK; dimension with payload = key parity.
    fn tables(n: usize, dim_n: usize) -> (Table, Table) {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column(
            "fk_seq",
            ColumnData::I32((0..n).map(|i| (i * dim_n / n) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "fk_rand",
            ColumnData::I32((0..n).map(|i| ((i * 7919) % dim_n) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "val",
            ColumnData::I32((0..n).map(|i| (i % 100) as i32).collect()),
            &mut space,
        );
        let mut dim = Table::new("dim");
        let mut dim_space = AddressSpace::new();
        dim.add_column(
            "payload",
            ColumnData::I32((0..dim_n).map(|k| (k % 2) as i32).collect()),
            &mut dim_space,
        );
        (fact, dim)
    }

    fn cpu() -> SimCpu {
        SimCpu::new(CpuConfig::tiny_test())
    }

    #[test]
    fn join_filter_filters() {
        let (fact, dim) = tables(1000, 100);
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 10, 100)
                .unwrap();
        let p = Pipeline::new(vec![join], fact.rows()).unwrap();
        let mut cpu = cpu();
        let stats = p.run_range(&mut cpu, 0, 1000);
        // payload = key % 2; keys distributed evenly => ~half qualify.
        assert!(
            (400..=600).contains(&stats.qualified),
            "{}",
            stats.qualified
        );
    }

    #[test]
    fn result_is_order_invariant() {
        let (fact, dim) = tables(2000, 100);
        let build = |order: [usize; 2]| {
            let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
            let join =
                FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                    .unwrap();
            let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
            p.reorder(&order).unwrap();
            let mut cpu = cpu();
            p.run_range(&mut cpu, 0, 2000).qualified
        };
        assert_eq!(build([0, 1]), build([1, 0]));
    }

    #[test]
    fn coclustered_probe_has_fewer_l3_misses_than_random() {
        let n = 20_000;
        // Dimension much larger than the tiny L3 (16 KiB = 4096 values).
        let (fact, dim) = tables(n, 16_384);
        let run = |fk: &str| {
            let join = FilterOp::join_filter(&fact, fk, &dim, "payload", CompareOp::Eq, 0, 7, 100)
                .unwrap();
            let p = Pipeline::new(vec![join], fact.rows()).unwrap();
            let mut cpu = cpu();
            let s = p.run_range(&mut cpu, 0, n);
            s.counters.l3_misses
        };
        let seq = run("fk_seq");
        let rand = run("fk_rand");
        assert!(seq * 3 < rand, "seq={seq} rand={rand}");
    }

    #[test]
    fn reorder_rejects_non_permutation() {
        let (fact, dim) = tables(100, 10);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
        assert!(p.reorder(&[0, 0]).is_err());
        assert!(p.reorder(&[1]).is_err());
    }

    #[test]
    fn failed_reorder_leaves_the_order_untouched() {
        let (fact, dim) = tables(100, 10);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
        p.reorder(&[1, 0]).unwrap();
        // A rejected permutation must not clobber the current order —
        // reorder validates before it mutates, so a caller can treat a
        // failed reorder as a no-op and keep executing.
        assert!(p.reorder(&[0, 0]).is_err());
        assert_eq!(p.order(), &[1, 0]);
        assert!(p.reorder(&[2, 1, 0]).is_err());
        assert_eq!(p.order(), &[1, 0]);
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert_eq!(
            Pipeline::new(vec![], 10).unwrap_err(),
            EngineError::EmptyPlan
        );
    }

    #[test]
    fn negative_foreign_key_is_rejected_at_construction() {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column("fk", ColumnData::I32(vec![0, 3, -1, 2]), &mut space);
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("payload", ColumnData::I32(vec![1; 10]), &mut dim_space);
        let err = FilterOp::join_filter(&fact, "fk", &dim, "payload", CompareOp::Eq, 1, 0, 100)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::ForeignKeyOutOfRange {
                column: "fk".into(),
                key: -1,
                dim_rows: 10,
            }
        );
    }

    #[test]
    fn dangling_foreign_key_is_rejected_at_construction() {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column("fk", ColumnData::I32(vec![0, 10, 2]), &mut space);
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("payload", ColumnData::I32(vec![1; 10]), &mut dim_space);
        let err = FilterOp::join_filter(&fact, "fk", &dim, "payload", CompareOp::Eq, 1, 0, 100)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::ForeignKeyOutOfRange { key: 10, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn aggregates_match_the_scan_executor() {
        use crate::exec::scan::CompiledSelection;
        use crate::plan::SelectionPlan;
        use crate::predicate::Predicate;

        let (fact, _dim) = tables(3000, 100);
        // Same conjunction on both executors: val < 50 AND fk_rand < 60,
        // summing the val column for qualifying tuples.
        let plan = SelectionPlan::new(
            vec![
                Predicate::new("val", CompareOp::Lt, 50),
                Predicate::new("fk_rand", CompareOp::Lt, 60),
            ],
            vec!["val".into()],
        )
        .unwrap();
        let compiled = CompiledSelection::compile(&fact, &plan, &[0, 1]).unwrap();
        let mut cpu1 = cpu();
        let scan_stats = compiled.run_range(&mut cpu1, 0, 3000);

        let sel_val = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let sel_fk = FilterOp::select(&fact, "fk_rand", CompareOp::Lt, 60, 1, 0).unwrap();
        let p = Pipeline::new(vec![sel_val, sel_fk], fact.rows())
            .unwrap()
            .with_aggregate(&fact, "val")
            .unwrap();
        let mut cpu2 = cpu();
        let pipe_stats = p.run_range(&mut cpu2, 0, 3000);

        assert_eq!(pipe_stats.qualified, scan_stats.qualified);
        assert_eq!(pipe_stats.sum, scan_stats.sum);
        assert!(pipe_stats.sum > 0, "aggregate path must actually sum");
    }

    #[test]
    fn join_pipeline_aggregate_matches_host_evaluation() {
        let (fact, dim) = tables(2000, 100);
        let join =
            FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let p = Pipeline::new(vec![join], fact.rows())
            .unwrap()
            .with_aggregate(&fact, "val")
            .unwrap();
        let mut c = cpu();
        let stats = p.run_range(&mut c, 0, 2000);

        // Host-side ground truth.
        let fk = fact.column("fk_rand").unwrap().data().as_i32().unwrap();
        let val = fact.column("val").unwrap().data().as_i32().unwrap();
        let payload = dim.column("payload").unwrap().data().as_i32().unwrap();
        let expect: i64 = (0..2000)
            .filter(|&i| payload[fk[i] as usize] == 0)
            .map(|i| i64::from(val[i]))
            .sum();
        assert_eq!(stats.sum, expect);
    }

    #[test]
    fn aggregate_on_unknown_column_is_rejected() {
        let (fact, _dim) = tables(100, 10);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let err = Pipeline::new(vec![sel], fact.rows())
            .unwrap()
            .with_aggregate(&fact, "nope")
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownColumn("nope".into()));
    }

    #[test]
    fn reorder_is_absolute_over_plan_indices() {
        let (fact, dim) = tables(1000, 100);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
        assert_eq!(p.order(), &[0, 1]);
        p.reorder(&[1, 0]).unwrap();
        assert_eq!(p.order(), &[1, 0]);
        // Re-applying the same permutation is idempotent (plan-index
        // semantics), not a swap back.
        p.reorder(&[1, 0]).unwrap();
        assert_eq!(p.order(), &[1, 0]);
        assert!(p.op(1).is_join());
    }

    fn probe_lines(geom: &popt_cost::estimate::PlanGeometry) -> u64 {
        geom.probe(0)
            .expect("front stage is a join")
            .relation
            .cache_lines
    }

    #[test]
    fn plan_geometry_carries_probes_in_evaluation_order() {
        let (fact, dim) = tables(1000, 100);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
        p.reorder(&[1, 0]).unwrap();
        let cfg = CpuConfig::tiny_test();
        let geom = p.plan_geometry(1000, &cfg, cfg.llc().capacity_bytes, &[1.0, 0.25]);
        assert_eq!(geom.predicates(), 2);
        assert_eq!(probe_lines(&geom), cfg.llc().lines());
        // A contended share rebinds the probe's Equation-1 capacity.
        let contended = p.plan_geometry(1000, &cfg, cfg.llc().capacity_bytes / 4, &[1.0, 0.25]);
        assert_eq!(probe_lines(&contended), cfg.llc().lines() / 4);
        // Join first: probe at position 0 with the join's clustering.
        let probe = geom.probe(0).expect("join stage has a probe");
        assert_eq!(probe.relation.relation_tuples, 100);
        assert!((probe.clustering - 0.25).abs() < 1e-12);
        assert!(geom.probe(1).is_none());
        let instr = p.stage_instructions();
        assert!(
            instr[0] > instr[1],
            "probe arithmetic costs extra: {instr:?}"
        );
    }

    #[test]
    fn selection_first_cheaper_when_join_is_random_and_selective() {
        let n = 20_000;
        let (fact, dim) = tables(n, 16_384);
        let run = |order: [usize; 2]| {
            // Selective, cheap predicate + random join probe.
            let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 10, 0, 0).unwrap();
            let join =
                FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                    .unwrap();
            let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
            p.reorder(&order).unwrap();
            let mut cpu = cpu();
            p.run_range(&mut cpu, 0, n).counters.cycles
        };
        let sel_first = run([0, 1]);
        let join_first = run([1, 0]);
        assert!(sel_first < join_first, "sel {sel_first} join {join_first}");
    }
}
