//! Generalized filter pipelines: selections mixed with foreign-key join
//! filters.
//!
//! Sections 5.5–5.6 extend progressive optimization beyond predicates to
//! operator ordering: an expensive selection versus a foreign-key join
//! (Figure 14), and two foreign-key joins against differently clustered
//! dimension tables (Figure 15). Both are *filters* over the fact table's
//! tuple stream — the join filter probes the dimension tuple addressed by
//! the foreign key and tests a predicate on its payload — so the same
//! short-circuit loop shape applies and operators can be reordered exactly
//! like predicates.
//!
//! The cache behaviour difference is what matters: a probe into a
//! co-clustered dimension (lineitem→orders) produces a near-sequential
//! access stream, a probe into a randomly keyed dimension (lineitem→part)
//! produces the random pattern Equation 1 prices.

use popt_cpu::{BranchSite, SimCpu};
use popt_storage::Table;

use crate::error::EngineError;
use crate::exec::scan::{InstrCosts, VectorStats, LOOP_BRANCH_SITE};
use crate::predicate::CompareOp;

/// One pipeline stage: pass/fail per tuple.
pub enum FilterOp<'t> {
    /// A predicate on a fact-table column.
    Select {
        /// Column values.
        values: &'t [i32],
        /// Simulated base address of the column.
        base: u64,
        /// Access stream id.
        stream: usize,
        /// Branch site of the compare.
        site: BranchSite,
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
        /// Extra instructions per evaluation (expensive predicates).
        extra_instructions: u64,
    },
    /// A foreign-key join filter: probe `dim_values[fk[i]]` and test it.
    JoinFilter {
        /// Foreign-key column on the fact table.
        fk: &'t [i32],
        /// Base address of the FK column.
        fk_base: u64,
        /// Stream id of the FK column.
        fk_stream: usize,
        /// Payload column on the dimension table.
        dim_values: &'t [i32],
        /// Base address of the dimension payload column.
        dim_base: u64,
        /// Stream id of the dimension payload accesses.
        dim_stream: usize,
        /// Branch site of the post-probe test.
        site: BranchSite,
        /// Comparison operator applied to the probed payload.
        op: CompareOp,
        /// Literal operand.
        literal: i64,
        /// Instructions per probe (index arithmetic / hashing).
        probe_instructions: u64,
    },
}

impl<'t> FilterOp<'t> {
    /// Build a [`FilterOp::Select`] from a table column.
    pub fn select(
        table: &'t Table,
        column: &str,
        op: CompareOp,
        literal: i64,
        site: u32,
        extra_instructions: u64,
    ) -> Result<Self, EngineError> {
        let idx = table
            .column_index(column)
            .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
        let col = table.column_at(idx);
        let values = col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(column.to_string()))?;
        Ok(FilterOp::Select {
            values,
            base: col.base_addr(),
            stream: idx,
            site: BranchSite(site),
            op,
            literal,
            extra_instructions,
        })
    }

    /// Build a [`FilterOp::JoinFilter`].
    ///
    /// `fk_column` lives on the fact table; `dim_column` on `dim`. Stream
    /// ids must be distinct across the whole pipeline — callers typically
    /// offset dimension streams past the fact table's column count.
    #[allow(clippy::too_many_arguments)]
    pub fn join_filter(
        fact: &'t Table,
        fk_column: &str,
        dim: &'t Table,
        dim_column: &str,
        op: CompareOp,
        literal: i64,
        site: u32,
        dim_stream: usize,
    ) -> Result<Self, EngineError> {
        let fk_idx = fact
            .column_index(fk_column)
            .ok_or_else(|| EngineError::UnknownColumn(fk_column.to_string()))?;
        let fk_col = fact.column_at(fk_idx);
        let fk = fk_col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(fk_column.to_string()))?;
        let dim_col = dim
            .column(dim_column)
            .ok_or_else(|| EngineError::UnknownColumn(dim_column.to_string()))?;
        let dim_values = dim_col
            .data()
            .as_i32()
            .ok_or_else(|| EngineError::UnsupportedColumnType(dim_column.to_string()))?;
        Ok(FilterOp::JoinFilter {
            fk,
            fk_base: fk_col.base_addr(),
            fk_stream: fk_idx,
            dim_values,
            dim_base: dim_col.base_addr(),
            dim_stream,
            site: BranchSite(site),
            op,
            literal,
            probe_instructions: 6,
        })
    }

    /// Evaluate the stage for row `i`; returns pass/fail and drives the
    /// CPU events.
    #[inline]
    fn eval(&self, cpu: &mut SimCpu, i: usize, costs: &InstrCosts) -> bool {
        match self {
            FilterOp::Select {
                values,
                base,
                stream,
                site,
                op,
                literal,
                extra_instructions,
            } => {
                cpu.load(*stream, base + (i as u64) * 4, 4);
                cpu.instr(costs.per_eval + extra_instructions);
                let ok = op.eval(i64::from(values[i]), *literal);
                cpu.branch(*site, !ok);
                ok
            }
            FilterOp::JoinFilter {
                fk,
                fk_base,
                fk_stream,
                dim_values,
                dim_base,
                dim_stream,
                site,
                op,
                literal,
                probe_instructions,
            } => {
                cpu.load(*fk_stream, fk_base + (i as u64) * 4, 4);
                let key = fk[i] as usize;
                debug_assert!(key < dim_values.len(), "dangling foreign key");
                cpu.load(*dim_stream, dim_base + (key as u64) * 4, 4);
                cpu.instr(costs.per_eval + probe_instructions);
                let ok = op.eval(i64::from(dim_values[key]), *literal);
                cpu.branch(*site, !ok);
                ok
            }
        }
    }

    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FilterOp::Select { .. } => "select",
            FilterOp::JoinFilter { .. } => "join",
        }
    }
}

/// A pipeline of filter stages with count/sum semantics identical to the
/// scan executor.
pub struct Pipeline<'t> {
    ops: Vec<FilterOp<'t>>,
    rows: usize,
    costs: InstrCosts,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field(
                "ops",
                &self.ops.iter().map(FilterOp::label).collect::<Vec<_>>(),
            )
            .field("rows", &self.rows)
            .finish()
    }
}

impl<'t> Pipeline<'t> {
    /// Build a pipeline over `rows` fact tuples.
    pub fn new(ops: Vec<FilterOp<'t>>, rows: usize) -> Result<Self, EngineError> {
        if ops.is_empty() {
            return Err(EngineError::EmptyPlan);
        }
        Ok(Self {
            ops,
            rows,
            costs: InstrCosts::default(),
        })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the pipeline has no stages (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reorder stages (e.g. join-first vs. selection-first).
    pub fn reorder(&mut self, order: &[usize]) -> Result<(), EngineError> {
        let p = self.ops.len();
        let mut seen = vec![false; p];
        let valid = order.len() == p
            && order
                .iter()
                .all(|&i| i < p && !std::mem::replace(&mut seen[i], true));
        if !valid {
            return Err(EngineError::InvalidPeo {
                expected: p,
                got: order.to_vec(),
            });
        }
        let mut slots: Vec<Option<FilterOp<'t>>> = self.ops.drain(..).map(Some).collect();
        self.ops = order
            .iter()
            .map(|&i| slots[i].take().expect("validated permutation"))
            .collect();
        Ok(())
    }

    /// Execute rows `start..end`; same measurement semantics as the scan.
    pub fn run_range(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let before = cpu.counters();
        let mut qualified = 0u64;
        for i in start..end {
            cpu.instr(self.costs.loop_overhead);
            let mut pass = true;
            for op in &self.ops {
                if !op.eval(cpu, i, &self.costs) {
                    pass = false;
                    break;
                }
            }
            if pass {
                qualified += 1;
            }
            cpu.branch(LOOP_BRANCH_SITE, true);
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum: 0,
            counters: after.since(&before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popt_cpu::CpuConfig;
    use popt_storage::{AddressSpace, ColumnData, Table};

    /// Fact with a sequential FK (co-clustered) and a strided pseudo-random
    /// FK; dimension with payload = key parity.
    fn tables(n: usize, dim_n: usize) -> (Table, Table) {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column(
            "fk_seq",
            ColumnData::I32((0..n).map(|i| (i * dim_n / n) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "fk_rand",
            ColumnData::I32((0..n).map(|i| ((i * 7919) % dim_n) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "val",
            ColumnData::I32((0..n).map(|i| (i % 100) as i32).collect()),
            &mut space,
        );
        let mut dim = Table::new("dim");
        let mut dim_space = AddressSpace::new();
        dim.add_column(
            "payload",
            ColumnData::I32((0..dim_n).map(|k| (k % 2) as i32).collect()),
            &mut dim_space,
        );
        (fact, dim)
    }

    fn cpu() -> SimCpu {
        SimCpu::new(CpuConfig::tiny_test())
    }

    #[test]
    fn join_filter_filters() {
        let (fact, dim) = tables(1000, 100);
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 10, 100)
                .unwrap();
        let p = Pipeline::new(vec![join], fact.rows()).unwrap();
        let mut cpu = cpu();
        let stats = p.run_range(&mut cpu, 0, 1000);
        // payload = key % 2; keys distributed evenly => ~half qualify.
        assert!(
            (400..=600).contains(&stats.qualified),
            "{}",
            stats.qualified
        );
    }

    #[test]
    fn result_is_order_invariant() {
        let (fact, dim) = tables(2000, 100);
        let build = |order: [usize; 2]| {
            let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
            let join =
                FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                    .unwrap();
            let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
            p.reorder(&order).unwrap();
            let mut cpu = cpu();
            p.run_range(&mut cpu, 0, 2000).qualified
        };
        assert_eq!(build([0, 1]), build([1, 0]));
    }

    #[test]
    fn coclustered_probe_has_fewer_l3_misses_than_random() {
        let n = 20_000;
        // Dimension much larger than the tiny L3 (16 KiB = 4096 values).
        let (fact, dim) = tables(n, 16_384);
        let run = |fk: &str| {
            let join = FilterOp::join_filter(&fact, fk, &dim, "payload", CompareOp::Eq, 0, 7, 100)
                .unwrap();
            let p = Pipeline::new(vec![join], fact.rows()).unwrap();
            let mut cpu = cpu();
            let s = p.run_range(&mut cpu, 0, n);
            s.counters.l3_misses
        };
        let seq = run("fk_seq");
        let rand = run("fk_rand");
        assert!(seq * 3 < rand, "seq={seq} rand={rand}");
    }

    #[test]
    fn reorder_rejects_non_permutation() {
        let (fact, dim) = tables(100, 10);
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 0).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk_seq", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                .unwrap();
        let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
        assert!(p.reorder(&[0, 0]).is_err());
        assert!(p.reorder(&[1]).is_err());
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert_eq!(
            Pipeline::new(vec![], 10).unwrap_err(),
            EngineError::EmptyPlan
        );
    }

    #[test]
    fn selection_first_cheaper_when_join_is_random_and_selective() {
        let n = 20_000;
        let (fact, dim) = tables(n, 16_384);
        let run = |order: [usize; 2]| {
            // Selective, cheap predicate + random join probe.
            let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 10, 0, 0).unwrap();
            let join =
                FilterOp::join_filter(&fact, "fk_rand", &dim, "payload", CompareOp::Eq, 0, 1, 100)
                    .unwrap();
            let mut p = Pipeline::new(vec![sel, join], fact.rows()).unwrap();
            p.reorder(&order).unwrap();
            let mut cpu = cpu();
            p.run_range(&mut cpu, 0, n).counters.cycles
        };
        let sel_first = run([0, 1]);
        let join_first = run([1, 0]);
        assert!(sel_first < join_first, "sel {sel_first} join {join_first}");
    }
}
