//! The compiled flat stage form: what a [`crate::plan::LogicalPlan`]
//! lowers to and what the progressive runtime executes.
//!
//! Lowering emits a compact *stage table* — one [`CompiledStage`] per
//! canonical conjunct (column base address, stream id, comparison op,
//! literal, optional probe geometry into a dimension) — plus a separate
//! evaluation-order permutation. A progressive reorder is therefore a
//! cheap re-emit of the permutation ([`CompiledProgram::reorder`]), not
//! a re-chaining of boxed primitives: the stage table never moves.
//!
//! Execution semantics and simulated CPU events are bit-identical to the
//! boxed [`crate::exec::pipeline::Pipeline`] executor on every workload
//! (pinned by `tests/proptest_frontend.rs`): same loads, same
//! instruction charges, same branch sites, same short-circuit order.

use std::hash::{Hash, Hasher};

use popt_cost::estimate::{PlanGeometry, ProbeGeometry};
use popt_cost::join_model::JoinGeometry;
use popt_cost::markov::ChainSpec;
use popt_cpu::{BranchSite, CpuConfig, NumaPlacement, SimCpu};

use crate::error::EngineError;
use crate::exec::scan::{AggColumn, InstrCosts, VectorStats, LOOP_BRANCH_SITE};
use crate::plan::logical::{Expr, LogicalNode, LogicalPlan};
use crate::predicate::CompareOp;

/// Instructions charged per probe over the base per-eval charge — the
/// index arithmetic of a foreign-key probe, identical to the boxed
/// executor's `FilterOp::join_filter`.
const PROBE_INSTRUCTIONS: u64 = 6;

/// The probe half of a join stage: the dimension payload column.
#[derive(Clone)]
struct ProbeSpec<'t> {
    dim_values: &'t [i32],
    dim_base: u64,
    dim_stream: usize,
}

/// One compiled stage: evaluate `op(column[i], literal)` per tuple —
/// directly for selections, through a foreign-key probe for joins (the
/// stage's column is then the FK and the tested value is the probed
/// dimension payload).
#[derive(Clone)]
pub struct CompiledStage<'t> {
    values: &'t [i32],
    base: u64,
    stream: usize,
    site: BranchSite,
    op: CompareOp,
    literal: i64,
    /// Per-eval instructions over the base charge: UDF cost for
    /// selections, probe arithmetic for joins.
    extra_instructions: u64,
    probe: Option<ProbeSpec<'t>>,
}

impl CompiledStage<'_> {
    /// Whether the stage probes a dimension.
    pub fn is_join(&self) -> bool {
        self.probe.is_some()
    }

    /// The stage's comparison operator.
    pub fn compare_op(&self) -> CompareOp {
        self.op
    }

    /// The stage's literal operand.
    pub fn literal(&self) -> i64 {
        self.literal
    }

    /// Base address of the fact column the stage reads per tuple.
    pub fn column_base(&self) -> u64 {
        self.base
    }

    /// Stream id of that fact column.
    pub fn column_stream(&self) -> usize {
        self.stream
    }

    /// Base address of the probed dimension payload, for joins.
    pub fn dim_base(&self) -> Option<u64> {
        self.probe.as_ref().map(|p| p.dim_base)
    }

    /// Rows of the probed dimension, for joins.
    pub fn dim_rows(&self) -> Option<usize> {
        self.probe.as_ref().map(|p| p.dim_values.len())
    }

    /// Instructions charged per evaluation over the base charge.
    pub fn extra_instructions(&self) -> u64 {
        self.extra_instructions
    }

    /// A literal-free structural key for this stage: which column it
    /// reads, how it tests, what it probes — everything *except* the
    /// literal, which is a template parameter, not structure. Keys a
    /// calibration snapshot to the stage shape it was learned on.
    pub fn structural_key(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.base.hash(&mut hasher);
        self.stream.hash(&mut hasher);
        self.op.hash(&mut hasher);
        self.extra_instructions.hash(&mut hasher);
        match &self.probe {
            Some(p) => {
                1u8.hash(&mut hasher);
                p.dim_base.hash(&mut hasher);
                p.dim_stream.hash(&mut hasher);
                p.dim_values.len().hash(&mut hasher);
            }
            None => 0u8.hash(&mut hasher),
        }
        hasher.finish()
    }

    /// Evaluate the stage for row `i`, driving the same CPU events as
    /// the boxed executor.
    #[inline]
    fn eval(&self, cpu: &mut SimCpu, i: usize, costs: &InstrCosts) -> bool {
        match &self.probe {
            None => {
                cpu.load(self.stream, self.base + (i as u64) * 4, 4);
                cpu.instr(costs.per_eval + self.extra_instructions);
                let ok = self.op.eval(i64::from(self.values[i]), self.literal);
                cpu.branch(self.site, !ok);
                ok
            }
            Some(p) => {
                cpu.load(self.stream, self.base + (i as u64) * 4, 4);
                let key = self.values[i] as usize;
                // The full key range was validated at lowering.
                debug_assert!(key < p.dim_values.len(), "dangling foreign key");
                cpu.load(p.dim_stream, p.dim_base + (key as u64) * 4, 4);
                cpu.instr(costs.per_eval + self.extra_instructions);
                let ok = self.op.eval(i64::from(p.dim_values[key]), self.literal);
                cpu.branch(self.site, !ok);
                ok
            }
        }
    }
}

impl std::fmt::Debug for CompiledStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.probe {
            None => write!(f, "Select({:?} {})", self.op, self.literal),
            Some(p) => write!(
                f,
                "Probe({} rows, {:?} {})",
                p.dim_values.len(),
                self.op,
                self.literal
            ),
        }
    }
}

/// A compiled program: the flat stage table, the evaluation-order
/// permutation, and the aggregate columns. Count/sum semantics are
/// identical to the scan and pipeline executors.
#[derive(Clone)]
pub struct CompiledProgram<'t> {
    /// Stages in plan (lowering) order.
    stages: Vec<CompiledStage<'t>>,
    /// Evaluation order: a permutation of plan indices.
    order: Vec<usize>,
    agg: Vec<AggColumn<'t>>,
    /// Projected columns materialized beyond what stages/aggregates
    /// already read — they widen the declared hot set, nothing else.
    extra_hot_columns: usize,
    rows: usize,
    costs: InstrCosts,
    /// When set, `run_range` uses the scalar per-event oracle path.
    scalar_oracle: bool,
}

impl std::fmt::Debug for CompiledProgram<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("stages", &self.stages)
            .field("order", &self.order)
            .field("agg_columns", &self.agg.len())
            .field("rows", &self.rows)
            .finish()
    }
}

impl<'t> CompiledProgram<'t> {
    /// Lower a logical plan to the flat stage form.
    ///
    /// Every filter conjunct and join condition is normalized
    /// ([`Expr::normalize`]) and must reach the canonical
    /// `column OP literal` shape — lowering performs the same rewrites
    /// the static passes do, so the passes are an optimization, never a
    /// prerequisite. Branch sites are numbered by stage emission order;
    /// dimension streams are `100 + join ordinal` (the convention the
    /// figures established). Foreign-key ranges are validated here, like
    /// the boxed constructor.
    pub fn from_plan(plan: &LogicalPlan<'t>) -> Result<Self, EngineError> {
        let fact = plan.fact();
        let mut stages: Vec<CompiledStage<'t>> = Vec::new();
        let mut join_ordinal = 0usize;
        for node in plan.nodes() {
            match node {
                LogicalNode::Filter {
                    predicate,
                    extra_instructions,
                } => {
                    for conjunct in predicate.clone().normalize().conjuncts() {
                        if let Some(stage) = lower_select_conjunct(
                            fact,
                            &conjunct,
                            *extra_instructions,
                            stages.len(),
                        )? {
                            stages.push(stage);
                        }
                    }
                }
                LogicalNode::Join { dim, fk_column, on } => {
                    let (fk, fk_base, fk_stream) = resolve_fact_column(fact, fk_column)?;
                    let dim_stream = 100 + join_ordinal;
                    join_ordinal += 1;
                    for conjunct in on.clone().normalize().conjuncts() {
                        match conjunct.as_comparison() {
                            Some((column, op, literal)) if dim.column_index(column).is_some() => {
                                let dim_col = dim.column(column).expect("index implies presence");
                                let dim_values = dim_col.data().as_i32().ok_or_else(|| {
                                    EngineError::UnsupportedColumnType(column.to_string())
                                })?;
                                validate_fk_range(fk, fk_column, dim_values.len())?;
                                stages.push(CompiledStage {
                                    values: fk,
                                    base: fk_base,
                                    stream: fk_stream,
                                    site: BranchSite(stages.len() as u32),
                                    op,
                                    literal,
                                    extra_instructions: PROBE_INSTRUCTIONS,
                                    probe: Some(ProbeSpec {
                                        dim_values,
                                        dim_base: dim_col.base_addr(),
                                        dim_stream,
                                    }),
                                });
                            }
                            // A conjunct over the fact table inside a join
                            // condition lowers to a plain selection — the
                            // same rewrite the extraction pass performs.
                            Some((column, _, _)) if fact.column_index(column).is_some() => {
                                if let Some(stage) =
                                    lower_select_conjunct(fact, &conjunct, 0, stages.len())?
                                {
                                    stages.push(stage);
                                }
                            }
                            _ => {
                                if let Some(stage) =
                                    lower_select_conjunct(fact, &conjunct, 0, stages.len())?
                                {
                                    stages.push(stage);
                                }
                            }
                        }
                    }
                }
            }
        }
        if stages.is_empty() {
            return Err(EngineError::EmptyPlan);
        }

        let mut agg = Vec::with_capacity(plan.aggregates().len());
        for column in plan.aggregates() {
            let (values, base, stream) = resolve_fact_column(fact, column)?;
            agg.push(AggColumn {
                values,
                base,
                stream,
            });
        }
        let mut extra_hot_columns = 0usize;
        for column in plan.projection() {
            let (_, _, stream) = resolve_fact_column(fact, column)?;
            let covered =
                stages.iter().any(|s| s.stream == stream) || agg.iter().any(|a| a.stream == stream);
            if !covered {
                extra_hot_columns += 1;
            }
        }

        let order = (0..stages.len()).collect();
        Ok(Self {
            stages,
            order,
            agg,
            extra_hot_columns,
            rows: fact.rows(),
            costs: InstrCosts::default(),
            scalar_oracle: false,
        })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the program has no stages (never true post-lowering).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Rows in the scanned fact table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The current evaluation order (plan indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The stage at plan index `j`.
    pub fn stage(&self, j: usize) -> &CompiledStage<'t> {
        &self.stages[j]
    }

    /// Re-emit the evaluation order — the cheap progressive reorder. The
    /// permutation is validated *before* any mutation, so a rejected
    /// order leaves the program exactly as it was.
    pub fn reorder(&mut self, order: &[usize]) -> Result<(), EngineError> {
        if !crate::plan::is_valid_peo(order, self.stages.len()) {
            return Err(EngineError::InvalidPeo {
                expected: self.stages.len(),
                got: order.to_vec(),
            });
        }
        self.order.copy_from_slice(order);
        Ok(())
    }

    /// Force every subsequent [`CompiledProgram::run_range`] call through
    /// the scalar per-event oracle instead of the batched fast path. A
    /// test/verification hook: the two paths are bit-identical (pinned by
    /// `tests/proptest_fastpath.rs`), so flipping this must never change
    /// results — only host speed.
    pub fn set_scalar_oracle(&mut self, on: bool) {
        self.scalar_oracle = on;
    }

    /// Execute rows `start..end`; measurement semantics identical to the
    /// scan and pipeline executors. Dispatches to the batched fast path
    /// (register-held stream states, bulk PMU flush per call) unless the
    /// scalar oracle was requested or the program shape exceeds the fixed
    /// scratch.
    pub fn run_range(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        const MAX_STAGES: usize = 12;
        const MAX_SLOTS: usize = 32;
        if self.scalar_oracle || self.order.len() > MAX_STAGES || self.agg.len() > MAX_STAGES {
            return self.run_range_scalar(cpu, start, end);
        }
        // Deduplicate streams into slots: stages sharing a column must
        // share one adjacency state, exactly like `SimCpu::load` does
        // through its per-stream table.
        fn slot_for(
            slot_streams: &mut [usize],
            n_slots: &mut usize,
            stream: usize,
        ) -> Option<usize> {
            for (k, &s) in slot_streams.iter().enumerate().take(*n_slots) {
                if s == stream {
                    return Some(k);
                }
            }
            if *n_slots == slot_streams.len() {
                return None;
            }
            slot_streams[*n_slots] = stream;
            *n_slots += 1;
            Some(*n_slots - 1)
        }
        let mut slot_streams = [usize::MAX; MAX_SLOTS];
        let mut n_slots = 0usize;
        let mut stage_slot = [0usize; MAX_STAGES];
        let mut probe_slot = [0usize; MAX_STAGES];
        let mut agg_slot = [0usize; MAX_STAGES];
        for (k, &j) in self.order.iter().enumerate() {
            let s = &self.stages[j];
            match slot_for(&mut slot_streams, &mut n_slots, s.stream) {
                Some(t) => stage_slot[k] = t,
                None => return self.run_range_scalar(cpu, start, end),
            }
            if let Some(p) = &s.probe {
                match slot_for(&mut slot_streams, &mut n_slots, p.dim_stream) {
                    Some(t) => probe_slot[k] = t,
                    None => return self.run_range_scalar(cpu, start, end),
                }
            }
        }
        for (k, a) in self.agg.iter().enumerate() {
            match slot_for(&mut slot_streams, &mut n_slots, a.stream) {
                Some(t) => agg_slot[k] = t,
                None => return self.run_range_scalar(cpu, start, end),
            }
        }
        let before = cpu.counters();
        let mut qualified = 0u64;
        let mut sum = 0i64;
        {
            let mut batch = cpu.batch();
            let mut slots = [0u64; MAX_SLOTS];
            for t in 0..n_slots {
                slots[t] = batch.stream_state(slot_streams[t]);
            }
            // Hot counters live in plain locals (registers) and flush in
            // bulk after the row loop; the simulated state machines
            // (predictor table, caches, stream adjacency) still advance
            // per event, in exact program order.
            let mut instrs = 0u64;
            let mut hits = 0u64;
            let mut branches = 0u64;
            let mut taken_n = 0u64;
            let mut mp_taken = 0u64;
            let mut mp_not_taken = 0u64;
            let mut hist = batch.history();
            for i in start..end {
                instrs += self.costs.loop_overhead;
                let mut pass = true;
                for (k, &j) in self.order.iter().enumerate() {
                    let stg = &self.stages[j];
                    let t = stage_slot[k];
                    let mut llpo = slots[t];
                    hits += batch.load_quiet(&mut llpo, stg.base + (i as u64) * 4, 4);
                    slots[t] = llpo;
                    let ok = match &stg.probe {
                        None => {
                            instrs += self.costs.per_eval + stg.extra_instructions;
                            stg.op.eval(i64::from(stg.values[i]), stg.literal)
                        }
                        Some(p) => {
                            let key = stg.values[i] as usize;
                            debug_assert!(key < p.dim_values.len(), "dangling foreign key");
                            let tp = probe_slot[k];
                            let mut pl = slots[tp];
                            hits += batch.load_quiet(&mut pl, p.dim_base + (key as u64) * 4, 4);
                            slots[tp] = pl;
                            instrs += self.costs.per_eval + stg.extra_instructions;
                            stg.op.eval(i64::from(p.dim_values[key]), stg.literal)
                        }
                    };
                    let tk = u64::from(!ok);
                    let w = batch.branch_hist(&mut hist, stg.site, !ok);
                    branches += 1;
                    taken_n += tk;
                    mp_taken += w & tk;
                    mp_not_taken += w & (1 - tk);
                    if !ok {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    qualified += 1;
                    let mut product = 1i64;
                    for (k, a) in self.agg.iter().enumerate() {
                        let t = agg_slot[k];
                        let mut llpo = slots[t];
                        hits += batch.load_quiet(&mut llpo, a.base + (i as u64) * 4, 4);
                        slots[t] = llpo;
                        instrs += self.costs.per_agg_column;
                        product *= i64::from(a.values[i]);
                    }
                    if !self.agg.is_empty() {
                        sum += product;
                    }
                }
                let w = batch.branch_hist(&mut hist, LOOP_BRANCH_SITE, true);
                branches += 1;
                taken_n += 1;
                mp_taken += w;
            }
            batch.set_history(hist);
            batch.instr(instrs);
            batch.add_element_hits(hits);
            batch.add_branch_block(branches, taken_n, mp_taken, mp_not_taken);
            for t in 0..n_slots {
                batch.set_stream_state(slot_streams[t], slots[t]);
            }
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum,
            counters: after.since(&before),
        }
    }

    /// The scalar per-event oracle: one `SimCpu` call per simulated
    /// event. This is the reference semantics the batched
    /// [`CompiledProgram::run_range`] is proptest-pinned against.
    pub fn run_range_scalar(&self, cpu: &mut SimCpu, start: usize, end: usize) -> VectorStats {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let before = cpu.counters();
        let mut qualified = 0u64;
        let mut sum = 0i64;
        for i in start..end {
            cpu.instr(self.costs.loop_overhead);
            let mut pass = true;
            for &j in &self.order {
                if !self.stages[j].eval(cpu, i, &self.costs) {
                    pass = false;
                    break;
                }
            }
            if pass {
                qualified += 1;
                let mut product = 1i64;
                for a in &self.agg {
                    cpu.load(a.stream, a.base + (i as u64) * 4, 4);
                    cpu.instr(self.costs.per_agg_column);
                    product *= i64::from(a.values[i]);
                }
                if !self.agg.is_empty() {
                    sum += product;
                }
            }
            cpu.branch(LOOP_BRANCH_SITE, true);
        }
        let after = cpu.counters();
        VectorStats {
            tuples: (end - start) as u64,
            qualified,
            sum,
            counters: after.since(&before),
        }
    }

    /// Counter-model geometry for the current evaluation order; same
    /// contract as `Pipeline::plan_geometry` (`clustering` is per *plan*
    /// stage, `llc_bytes` the effective last-level capacity).
    pub fn plan_geometry(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        clustering: &[f64],
    ) -> PlanGeometry {
        assert_eq!(clustering.len(), self.stages.len(), "one entry per stage");
        let line_bytes = cpu.line_bytes() as u32;
        let llc_lines = (llc_bytes / u64::from(line_bytes)).max(1);
        let upper_cache_bytes = cpu.levels.get(1).map_or(0.0, |l| l.capacity_bytes as f64);
        let chain = ChainSpec {
            states: cpu.predictor.states,
            not_taken_states: cpu.predictor.not_taken_states,
        };
        let column_ids: Vec<usize> = self.order.iter().map(|&j| self.stages[j].stream).collect();
        let probes: Vec<Option<ProbeGeometry>> = self
            .order
            .iter()
            .map(|&j| {
                self.stages[j].dim_rows().map(|rows| ProbeGeometry {
                    relation: JoinGeometry {
                        relation_tuples: rows as u64,
                        tuple_bytes: 4,
                        line_bytes,
                        cache_lines: llc_lines,
                    },
                    upper_cache_bytes,
                    clustering: clustering[j].clamp(0.0, 1.0),
                    remote_fraction: 0.0,
                })
            })
            .collect();
        let mut seen_agg: Vec<usize> = Vec::with_capacity(self.agg.len());
        let agg_bytes: Vec<u32> = self
            .agg
            .iter()
            .filter(|a| {
                let fresh = !column_ids.contains(&a.stream) && !seen_agg.contains(&a.stream);
                seen_agg.push(a.stream);
                fresh
            })
            .map(|_| 4)
            .collect();
        PlanGeometry {
            n_input,
            value_bytes: vec![4; self.stages.len()],
            column_ids,
            agg_bytes,
            line_bytes,
            chain,
            probes,
        }
    }

    /// [`CompiledProgram::plan_geometry`] with NUMA-aware probe pricing:
    /// each join stage's probe gains the fraction of its dimension homed
    /// on a socket other than `socket` under `placement` (see
    /// `Pipeline::plan_geometry_numa`).
    pub fn plan_geometry_numa(
        &self,
        n_input: u64,
        cpu: &CpuConfig,
        llc_bytes: u64,
        clustering: &[f64],
        placement: &NumaPlacement,
        socket: usize,
    ) -> PlanGeometry {
        let mut geom = self.plan_geometry(n_input, cpu, llc_bytes, clustering);
        let line_bytes = cpu.line_bytes();
        for (&j, probe) in self.order.iter().zip(geom.probes.iter_mut()) {
            if let (Some(p), Some(base), Some(rows)) = (
                probe.as_mut(),
                self.stages[j].dim_base(),
                self.stages[j].dim_rows(),
            ) {
                p.remote_fraction =
                    placement.remote_fraction(base, rows as u64 * 4, socket, line_bytes);
            }
        }
        geom
    }

    /// Hot-set footprint declared to a shared-socket capacity partition:
    /// probed dimensions in full plus the streaming window per touched
    /// column (stages, aggregates, and surviving projected columns).
    pub fn hot_set_bytes(&self) -> u64 {
        let dims: u64 = self
            .stages
            .iter()
            .filter_map(CompiledStage::dim_rows)
            .map(|rows| rows as u64 * 4)
            .sum();
        let streams = (self.stages.len() + self.agg.len() + self.extra_hot_columns) as u64
            * crate::progressive::STREAM_HOT_BYTES_PER_COLUMN;
        dims + streams
    }

    /// Instructions charged per evaluation of each stage, in the current
    /// evaluation order.
    pub fn stage_instructions(&self) -> Vec<f64> {
        self.order
            .iter()
            .map(|&j| (self.costs.per_eval + self.stages[j].extra_instructions) as f64)
            .collect()
    }

    /// Literal-free structural keys, one per plan stage — what a
    /// calibration snapshot is keyed to ([`CompiledStage::structural_key`]).
    pub fn stage_keys(&self) -> Vec<u64> {
        self.stages
            .iter()
            .map(CompiledStage::structural_key)
            .collect()
    }
}

/// Resolve a fact-table i32 column to `(values, base address, stream)`.
fn resolve_fact_column<'t>(
    fact: &'t popt_storage::Table,
    column: &str,
) -> Result<(&'t [i32], u64, usize), EngineError> {
    let idx = fact
        .column_index(column)
        .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
    let col = fact.column_at(idx);
    let values = col
        .data()
        .as_i32()
        .ok_or_else(|| EngineError::UnsupportedColumnType(column.to_string()))?;
    Ok((values, col.base_addr(), idx))
}

/// Validate every foreign key against the probed dimension's row range.
fn validate_fk_range(fk: &[i32], fk_column: &str, dim_rows: usize) -> Result<(), EngineError> {
    if let Some(&bad) = fk.iter().find(|&&k| k < 0 || k as usize >= dim_rows) {
        return Err(EngineError::ForeignKeyOutOfRange {
            column: fk_column.to_string(),
            key: i64::from(bad),
            dim_rows,
        });
    }
    Ok(())
}

/// Lower one normalized filter conjunct over the fact table; `TRUE`
/// vanishes, `FALSE` and non-canonical shapes are unsupported.
fn lower_select_conjunct<'t>(
    fact: &'t popt_storage::Table,
    conjunct: &Expr,
    extra_instructions: u64,
    site: usize,
) -> Result<Option<CompiledStage<'t>>, EngineError> {
    match conjunct {
        Expr::Bool(true) => Ok(None),
        Expr::Bool(false) => Err(EngineError::UnsupportedExpr(
            "predicate is constant FALSE — the plan qualifies nothing".to_string(),
        )),
        _ => match conjunct.as_comparison() {
            Some((column, op, literal)) => {
                let (values, base, stream) = resolve_fact_column(fact, column)?;
                Ok(Some(CompiledStage {
                    values,
                    base,
                    stream,
                    site: BranchSite(site as u32),
                    op,
                    literal,
                    extra_instructions,
                    probe: None,
                }))
            }
            None => Err(EngineError::UnsupportedExpr(format!(
                "conjunct {:?} does not normalize to `column OP literal`",
                conjunct.display()
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Expr, PlanBuilder};
    use popt_storage::{AddressSpace, ColumnData, Table};

    fn tables(n: usize, dim_n: usize) -> (Table, Table) {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column(
            "fk",
            ColumnData::I32((0..n).map(|i| ((i * 7919) % dim_n) as i32).collect()),
            &mut space,
        );
        fact.add_column(
            "val",
            ColumnData::I32((0..n).map(|i| (i % 100) as i32).collect()),
            &mut space,
        );
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column(
            "payload",
            ColumnData::I32((0..dim_n).map(|k| (k % 2) as i32).collect()),
            &mut dim_space,
        );
        (fact, dim)
    }

    fn cpu() -> SimCpu {
        SimCpu::new(popt_cpu::CpuConfig::tiny_test())
    }

    #[test]
    fn lowering_matches_the_boxed_executor_exactly() {
        use crate::exec::pipeline::{FilterOp, Pipeline};
        let (fact, dim) = tables(4000, 128);
        let program = PlanBuilder::scan(&fact)
            .filter_costed(Expr::col("val").less_than(50), 30)
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .aggregate("val")
            .build()
            .compile()
            .unwrap();
        let sel = FilterOp::select(&fact, "val", CompareOp::Lt, 50, 0, 30).unwrap();
        let join =
            FilterOp::join_filter(&fact, "fk", &dim, "payload", CompareOp::Eq, 0, 1, 100).unwrap();
        let pipeline = Pipeline::new(vec![sel, join], fact.rows())
            .unwrap()
            .with_aggregate(&fact, "val")
            .unwrap();

        let mut c1 = cpu();
        let a = program.run_range(&mut c1, 0, 4000);
        let mut c2 = cpu();
        let b = pipeline.run_range(&mut c2, 0, 4000);
        assert_eq!(a.qualified, b.qualified);
        assert_eq!(a.sum, b.sum);
        assert_eq!(a.counters, b.counters, "bit-identical CPU events");
        assert_eq!(c1.counters().cycles, c2.counters().cycles);
    }

    #[test]
    fn reorder_is_cheap_and_result_invariant() {
        let (fact, dim) = tables(2000, 64);
        let mut program = PlanBuilder::scan(&fact)
            .filter(Expr::col("val").less_than(50))
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap();
        let mut c = cpu();
        let forward = program.run_range(&mut c, 0, 2000);
        program.reorder(&[1, 0]).unwrap();
        let mut c = cpu();
        let backward = program.run_range(&mut c, 0, 2000);
        assert_eq!(forward.qualified, backward.qualified);
        assert_eq!(forward.sum, backward.sum);
    }

    #[test]
    fn failed_reorder_leaves_the_order_untouched() {
        let (fact, dim) = tables(500, 32);
        let mut program = PlanBuilder::scan(&fact)
            .filter(Expr::col("val").less_than(50))
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap();
        program.reorder(&[1, 0]).unwrap();
        assert!(program.reorder(&[0, 0]).is_err());
        assert!(program.reorder(&[1]).is_err());
        assert!(program.reorder(&[1, 2]).is_err());
        assert_eq!(program.order(), &[1, 0], "rejected orders must not corrupt");
    }

    #[test]
    fn multi_conjunct_filters_flatten_to_stages_with_sites_in_emission_order() {
        let (fact, dim) = tables(100, 16);
        let program = PlanBuilder::scan(&fact)
            .filter(
                Expr::col("val")
                    .less_than(80)
                    .and(Expr::col("val").at_least(10)),
            )
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap();
        assert_eq!(program.len(), 3);
        assert!(!program.stage(0).is_join());
        assert!(!program.stage(1).is_join());
        assert!(program.stage(2).is_join());
        assert_eq!(program.stage(1).compare_op(), CompareOp::Ge);
    }

    #[test]
    fn true_filters_vanish_and_false_is_rejected() {
        let (fact, _) = tables(100, 16);
        let program = PlanBuilder::scan(&fact)
            .filter(Expr::lit(1).less_than(2))
            .filter(Expr::col("val").less_than(50))
            .build()
            .compile()
            .unwrap();
        assert_eq!(program.len(), 1);

        let err = PlanBuilder::scan(&fact)
            .filter(Expr::lit(2).less_than(1))
            .build()
            .compile()
            .unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedExpr(_)), "{err:?}");

        let err = PlanBuilder::scan(&fact).build().compile().unwrap_err();
        assert_eq!(err, EngineError::EmptyPlan);
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_the_shape() {
        let (fact, _) = tables(100, 16);
        let err = PlanBuilder::scan(&fact)
            .filter(
                Expr::col("val")
                    .less_than(1)
                    .or(Expr::col("val").greater_than(90)),
            )
            .build()
            .compile()
            .unwrap_err();
        match err {
            EngineError::UnsupportedExpr(msg) => assert!(msg.contains("OR"), "{msg}"),
            other => panic!("{other:?}"),
        }
        let err = PlanBuilder::scan(&fact)
            .filter(Expr::col("nope").less_than(1))
            .build()
            .compile()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownColumn("nope".into()));
    }

    #[test]
    fn fact_conjuncts_in_join_conditions_lower_to_selections() {
        let (fact, dim) = tables(1000, 64);
        let program = PlanBuilder::scan(&fact)
            .join(
                &dim,
                "fk",
                Expr::col("payload")
                    .equal_to(0)
                    .and(Expr::col("val").less_than(50)),
            )
            .build()
            .compile()
            .unwrap();
        assert_eq!(program.len(), 2);
        assert!(program.stage(0).is_join());
        assert!(!program.stage(1).is_join());
        // Same result as building the filter separately.
        let split = PlanBuilder::scan(&fact)
            .filter(Expr::col("val").less_than(50))
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap();
        let mut c1 = cpu();
        let mut c2 = cpu();
        assert_eq!(
            program.run_range(&mut c1, 0, 1000).qualified,
            split.run_range(&mut c2, 0, 1000).qualified
        );
    }

    #[test]
    fn dangling_foreign_keys_are_rejected_at_lowering() {
        let mut space = AddressSpace::new();
        let mut fact = Table::new("fact");
        fact.add_column("fk", ColumnData::I32(vec![0, 99, 2]), &mut space);
        let mut dim_space = AddressSpace::new();
        let mut dim = Table::new("dim");
        dim.add_column("payload", ColumnData::I32(vec![1; 10]), &mut dim_space);
        let err = PlanBuilder::scan(&fact)
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap_err();
        assert!(
            matches!(err, EngineError::ForeignKeyOutOfRange { key: 99, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn stage_keys_are_literal_free_and_structure_sensitive() {
        let (fact, dim) = tables(500, 32);
        let build = |lit: i64| {
            PlanBuilder::scan(&fact)
                .filter(Expr::col("val").less_than(lit))
                .join(&dim, "fk", Expr::col("payload").equal_to(0))
                .build()
                .compile()
                .unwrap()
        };
        assert_eq!(build(50).stage_keys(), build(51).stage_keys());
        let other = PlanBuilder::scan(&fact)
            .filter(Expr::col("fk").less_than(50))
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build()
            .compile()
            .unwrap();
        assert_ne!(build(50).stage_keys(), other.stage_keys());
    }

    #[test]
    fn projection_widens_the_hot_set_only_for_uncovered_columns() {
        let (fact, dim) = tables(500, 32);
        let base = PlanBuilder::scan(&fact)
            .filter(Expr::col("val").less_than(50))
            .join(&dim, "fk", Expr::col("payload").equal_to(0))
            .build();
        let plain = base.clone().compile().unwrap();
        // "val" is already a stage column; an unpruned projection of it
        // still adds nothing. A genuinely new column would, but this
        // fact table has only stage columns, so cover the counted path
        // via the covered branch plus geometry equality.
        let projected = {
            let mut b = base.clone();
            b = crate::plan::passes::projection_pruning(b);
            b.compile().unwrap()
        };
        assert_eq!(plain.hot_set_bytes(), projected.hot_set_bytes());
    }
}
