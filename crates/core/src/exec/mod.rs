//! Query executors driving the simulated CPU.
//!
//! * [`scan`] — the vectorized multi-selection scan (the paper's compiled
//!   short-circuit loop, Section 2.1);
//! * [`pipeline`] — a generalized filter pipeline mixing selections and
//!   foreign-key join filters (Sections 5.5–5.6);
//! * [`program`] — the compiled flat stage form logical plans lower to:
//!   one stage table plus an evaluation-order permutation, bit-identical
//!   in execution semantics to [`pipeline`];
//! * [`enumerator`] — the invasive, explicit-counter instrumentation
//!   baseline of the overhead experiment (Section 5.7).

pub mod enumerator;
pub mod pipeline;
pub mod program;
pub mod scan;

pub use pipeline::{FilterOp, Pipeline};
pub use program::{CompiledProgram, CompiledStage};
pub use scan::{CompiledSelection, InstrCosts, VectorStats};
